"""Anytime exploration of a large table (paper Section 5.1).

Atlas must feel instant even on data too large to scan interactively.
The anytime engine runs the pipeline on a growing nested sample and
publishes a result snapshot per tick; this example prints the snapshot
trail — sample size, elapsed time, the top map, and the stability score
— and shows the early answer matching the full-data answer.

Run:  python examples/anytime_exploration.py
"""

from repro import AnytimeExplorer, Atlas
from repro.datagen import census_table
from repro.evaluation import figure2_query
from repro.evaluation.harness import ResultTable

N_ROWS = 300_000
table = census_table(n_rows=N_ROWS, seed=0)
query = figure2_query()

print(f"Exploring {N_ROWS} rows anytime-style "
      "(tick = pipeline re-run on a doubled sample)\n")

explorer = AnytimeExplorer(
    table, query, initial_size=1_000, growth_factor=2.0
)
report = ResultTable(
    ["tick", "sample", "elapsed_s", "top map", "stability"],
    title="anytime trail",
)
final = None
for tick in explorer.ticks():
    final = tick
    report.add_row(
        [
            tick.tick,
            tick.sample_size,
            tick.elapsed,
            tick.map_set.best.label,
            tick.stability,
        ]
    )
report.print()

# Compare against the one-shot full-table run.
full = Atlas(table).explore(query)
print(f"\nFull-table top map: {full.best.label} "
      f"(pipeline {full.timings.total:.2f}s)")
print(f"Anytime final top map: {final.map_set.best.label} "
      f"(total {final.elapsed:.2f}s across all ticks)")
assert set(full.best.attributes) == set(final.map_set.best.attributes)
print("Early and full answers agree on the top map's attributes.")
