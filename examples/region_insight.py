"""Region insight: explanations, exemplars, and anticipation (Section 5).

The paper's "real life users" section sketches three usability features
beyond the core pipeline; all three are implemented and shown here:

* *explain why a region is interesting* — chart its attributes against
  the whole database;
* *describe regions with representative examples* — the most typical
  tuples of each region;
* *anticipative computations* — during idle time, precompute the map
  sets of the regions the user is most likely to drill into, so the
  next click is answered from cache.

Run:  python examples/region_insight.py
"""

import time

from repro import Atlas, parse_query
from repro.core.anticipate import AnticipativeExplorer
from repro.core.exemplars import representative_examples
from repro.core.explain import explain_region
from repro.datagen import sky_survey_table
from repro.frontend import render_examples, render_map

table = sky_survey_table(n_rows=30_000, seed=0)
query = parse_query("redshift: any\nmag_r: any\nclass: any")

result = Atlas(table).explore(query)
top = result.best
print(render_map(top, table))

# --- Explanations: why is each region interesting? ---------------------
print("\n=== Why are these regions interesting? ===")
for region in top.regions:
    skip = tuple(
        p.attribute for p in region.predicates if p.is_restrictive
    )
    explanation = explain_region(table, region, skip)
    print()
    print(explanation.describe(k=3))

# --- Exemplars: the most typical objects of region 0 -------------------
print("\n=== Representative objects of region 0 ===")
reps = representative_examples(table, top.regions[0], k=3)
print(render_examples(reps, title="most typical objects"))

# --- Anticipation: precompute the likely next queries ------------------
print("\n=== Anticipative computation ===")
explorer = AnticipativeExplorer(table, top_maps_to_prefetch=1)
answer = explorer.explore(query)
started = time.perf_counter()
computed = explorer.prefetch(answer)
idle_cost = time.perf_counter() - started
print(f"idle time spent prefetching {computed} drill-downs: "
      f"{idle_cost * 1000:.1f} ms")

started = time.perf_counter()
explorer.explore(answer.best.regions[0])  # the user clicks region 0
click_latency = time.perf_counter() - started
print(f"drill-down answered from cache in {click_latency * 1000:.3f} ms "
      f"(hit rate {explorer.stats.hit_rate * 100:.0f}%)")
