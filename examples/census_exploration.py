"""Interactive-style exploration of the survey: the Figure-1 loop.

Drives an :class:`~repro.core.session.ExplorationSession` through the
two verbs of the paper — drill into a region, request the next map —
and prints the breadcrumb trail, exactly what a user clicking through
the Atlas GUI would experience.

Run:  python examples/census_exploration.py
"""

from repro import AtlasConfig, parse_query
from repro.core.session import ExplorationSession
from repro.datagen import census_table
from repro.frontend import render_breadcrumb, render_map, render_map_set

table = census_table(n_rows=20_000, seed=1)
session = ExplorationSession(table, AtlasConfig())

query = parse_query("""
Sex: any
Salary: any
Age: [17, 90]
Eye color: {'Blue', 'Green', 'Brown'}
Education: {'BSc', 'MSc'}
""")

print(">>> session.start(query)")
maps = session.start(query)
print(render_map_set(maps, table))

print("\n>>> session.next_map()   # 'request a new map'")
shown = session.next_map()
print(render_map(shown, table))

print("\n>>> session.drill(0)     # submit region 0 for further exploration")
maps = session.drill(0)
print(render_map_set(maps, table))

print("\n>>> session.drill(1)     # one level deeper")
maps = session.drill(1)
print(render_map_set(maps, table))

print("\n>>> breadcrumb")
print(render_breadcrumb(session.breadcrumb()))

print("\n>>> session.back()       # retreat one level")
session.back()
print(render_breadcrumb(session.breadcrumb()))
