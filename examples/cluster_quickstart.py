"""Cluster quickstart: shard servers, a coordinator, identical answers.

Spawns two shard-server processes (the same ``python -m repro.cluster``
entry point a real deployment runs per machine), attaches them as the
process's active cluster, and explores the census table three ways —
serial, local scan/merge, and scattered over the cluster — asserting
the answers are bit-identical before and after a streamed append.

This is also the CI smoke test for the cluster subsystem.

Run:  PYTHONPATH=src python examples/cluster_quickstart.py
"""

from repro.cluster import attach_cluster, detach_cluster, spawn_local_cluster
from repro.core.config import Parallelism
from repro.datagen import census_table, split_for_streaming
from repro.engine.facade import explorer
from repro.evaluation import map_set_fingerprint

QUERY = "Age: [17, 90]\nSex: any"

# ---------------------------------------------------------------- #
# 1. Start two shard servers and attach them.
# ---------------------------------------------------------------- #
servers = spawn_local_cluster(2)
try:
    coordinator = attach_cluster([server.url for server in servers])
    print(f"cluster: {', '.join(coordinator.urls)}")

    table = census_table(n_rows=50_000, seed=0)
    initial, batches = split_for_streaming(table, n_batches=3)

    # ------------------------------------------------------------ #
    # 2. One exploration, three venues.  The shard layout — not the
    #    venue — is the statistical recipe, so all three answers are
    #    bit-identical.
    # ------------------------------------------------------------ #
    venues = {
        "serial ": explorer(initial).approximate(10_000).seed(0)
        .configure(parallelism=Parallelism(workers=1, shards=8)),
        "local  ": explorer(initial).approximate(10_000).seed(0)
        .parallel(2),
        "cluster": explorer(initial).approximate(10_000).seed(0)
        .cluster(),
    }
    prints = {}
    for name, session in venues.items():
        maps = session.explore(QUERY)
        prints[name] = map_set_fingerprint(maps)
        print(f"  {name}: {len(maps)} map(s), "
              f"fingerprint {prints[name][:16]}…")
    assert len(set(prints.values())) == 1, prints
    print("all three venues bit-identical ✓")

    # ------------------------------------------------------------ #
    # 3. Stream appends.  The cluster session routes each delta to
    #    the shard server owning the table's tail; answers stay
    #    identical at every version.
    # ------------------------------------------------------------ #
    for batch in batches:
        for session in venues.values():
            session.append(batch)
        versions = {
            name: map_set_fingerprint(session.explore(QUERY))
            for name, session in venues.items()
        }
        assert len(set(versions.values())) == 1, versions
        rows = next(iter(venues.values())).table.n_rows
        print(f"  appended -> {rows} rows, still identical ✓")

    # ------------------------------------------------------------ #
    # 4. What the cluster did.
    # ------------------------------------------------------------ #
    metrics = coordinator.metrics()
    print(f"cluster builds: {metrics['builds']}, "
          f"shard retries: {metrics['shard_retries']}")
    for entry in metrics["shard_servers"]:
        print(f"  {entry['url']}: {entry['scans']} scan(s), "
              f"{entry['rows_owned']} row(s) owned, "
              f"{entry['appends']} append(s)")
finally:
    detach_cluster()
    for server in servers:
        server.terminate()
print("done.")
