"""Exploring an SDSS-like sky survey (Section 5.2's "real life database").

An astronomer who knows only the column semantics asks Atlas for a first
map of the catalog, then zooms into the high-redshift population.  The
example shows (a) whole-table mapping with no query, (b) how correlated
magnitude bands cluster into one map, and (c) a drill-down on redshift.

Run:  python examples/sky_survey_exploration.py
"""

from repro import Atlas, AtlasConfig, parse_query
from repro.datagen import sky_survey_table
from repro.dataset.stats import profile_table
from repro.frontend import render_map_set

table = sky_survey_table(n_rows=30_000, seed=0)

# Step 0: what does the schema look like?  (the §5.2 profile)
profile = profile_table(table)
print("Column profile:")
for summary in profile.summaries:
    extra = ""
    if summary.minimum is not None:
        extra = f"  range [{summary.minimum:.2f}, {summary.maximum:.2f}]"
    print(f"  {summary.name:10s} {summary.kind.value:12s} "
          f"distinct={summary.distinct:6d}{extra}")

# Step 1: a first feel for the data — no query at all.
engine = Atlas(table, AtlasConfig(max_maps=6))
overview = engine.explore()
print("\n=== Overview maps (whole catalog) ===")
print(render_map_set(overview, table))

# Step 2: zoom into the high-redshift objects (quasar territory).
query = parse_query("""
redshift: [0.5, 7]
class: any
mag_r: any
mag_g: any
""")
zoom = engine.explore(query)
print("\n=== Maps of the z > 0.5 population ===")
print(render_map_set(zoom, table))
