"""Figure 5 rendered: product vs composition, visually.

Generates the Figure-5 scenario (weight clusters that shift with size),
merges the size and weight maps both ways, and draws the ASCII heat map
with each map's cut lines — making the paper's point visible: the
product draws one global weight line through both clouds, composition
draws the line where the local clusters actually split.

Run:  python examples/figure5_heatmap.py
"""

from repro import AtlasConfig, NumericCutStrategy, cut
from repro.core.merge import composition, product
from repro.datagen import figure5_dataset
from repro.frontend import render_heatmap
from repro.query import ConjunctiveQuery

data = figure5_dataset(n_rows=12_000, seed=0)
table = data.table
config = AtlasConfig(numeric_strategy=NumericCutStrategy.TWO_MEANS)

size_map = cut(table, ConjunctiveQuery(), "size", config)
weight_map = cut(table, ConjunctiveQuery(), "weight", config)

merged_product = product([size_map, weight_map], table)
merged_composition = composition([size_map, weight_map], table, config)

print("=== Product(M1, M2): one global weight cut ===\n")
print(render_heatmap(table, "size", "weight", merged_product,
                     width=64, height=18))

print("\n\n=== Compose(M1, M2): the weight cut adapts per size region ===")
print("(the horizontal line would split each cloud through its local gap;")
print(" region text shows the two different weight boundaries)\n")
print(render_heatmap(table, "size", "weight", merged_composition,
                     width=64, height=18))

print("\nComposition regions:")
for index, region in enumerate(merged_composition.regions):
    print(f"  ({index}) {region.describe_inline()}")
