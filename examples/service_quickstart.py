"""Service quickstart: one exploration server, two concurrent clients.

Boots the HTTP exploration service in-process, registers a census table
(plus a second, wire-registered one), and drives two client threads at
it — showing shared statistics, the result cache kicking in across
*different* clients, admission-control limits, and the /metrics
snapshot.

This is also the CI smoke test for the service subsystem.

Run:  PYTHONPATH=src python examples/service_quickstart.py
"""

from concurrent.futures import ThreadPoolExecutor

from repro.datagen import census_table
from repro.service import ExplorationService, ServiceClient, serve

# ---------------------------------------------------------------- #
# 1. Boot a service and register a table.
# ---------------------------------------------------------------- #
service = ExplorationService(max_workers=4, max_queue_depth=8)
service.register_table(census_table(n_rows=20_000, seed=0))

with serve(service) as server:
    print(f"service listening at {server.url}")

    # ------------------------------------------------------------ #
    # 2. A client checks in and registers a second table over HTTP.
    # ------------------------------------------------------------ #
    client = ServiceClient(server.url)
    print("health:", client.health())
    client.register_table("census", n_rows=5_000, seed=7, name="census_b")
    print("tables:", ", ".join(client.tables()))

    # ------------------------------------------------------------ #
    # 3. Two clients explore concurrently.  They share the server's
    #    execution context, so statistics memoized for one answer the
    #    other's queries; identical queries hit the result cache.
    # ------------------------------------------------------------ #
    WORKLOAD = [
        ("census", "Age: [17, 90]"),
        ("census", "Age: [17, 45]"),
        ("census", "Age: [17, 60]\nSex: any"),
        ("census", "Age: [17, 90]"),      # repeat → result cache
        ("census_b", None),               # whole-table exploration
        ("census_b", None),               # repeat → result cache
    ]

    def run_client(name: str):
        own = ServiceClient(server.url)
        lines = []
        for table, query in WORKLOAD:
            response = own.explore(table, query, retry_busy=10)
            source = "cache" if response.cached else f"{response.elapsed:.3f}s"
            shown = (query or "(whole table)").replace("\n", " ∧ ")
            lines.append(
                f"  [{name}] {table}: {shown} -> "
                f"{len(response.map_set)} map(s) [{source}]"
            )
        return lines

    with ThreadPoolExecutor(max_workers=2) as pool:
        futures = [pool.submit(run_client, n) for n in ("alice", "bob")]
        for future in futures:
            print("\n".join(future.result()))

    # ------------------------------------------------------------ #
    # 4. What did the service observe?
    # ------------------------------------------------------------ #
    metrics = client.metrics()
    requests = metrics["requests"]
    print(
        f"requests: {requests['received']} received, "
        f"{requests['completed']} computed, "
        f"{requests['cache_hits']} served from cache, "
        f"{requests['rejected']} rejected, {requests['failed']} failed"
    )
    cache = metrics["result_cache"]
    print(f"result cache hit rate: {cache['hit_rate']:.0%} "
          f"({cache['hits']} hits / {cache['misses']} misses)")
    stats = metrics["statistics_cache"]
    print(f"statistics cache hit rate: {stats['hit_rate']:.0%}")
    p99 = metrics["latency"]["total"]["p99"]
    print(f"end-to-end p99: {p99 * 1000:.1f} ms")

    # The smoke-test contract: both clients completed the workload and
    # the repeats were served from the result cache.
    assert requests["failed"] == 0
    assert requests["cache_hits"] >= 2

service.close()
print("OK")
