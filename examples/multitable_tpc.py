"""Exploring a multi-table database (paper Section 5.2, "real life databases").

Real databases are "multiple tables with foreign key relationships".
This example builds a TPC-like order-management catalog, materializes the
star join around the fact table (the paper's "naive way", plus its
"work on subsets only" sampled variant), and maps the result — showing
that key columns are auto-excluded and that dimension attributes joined
in from the customers table participate in the maps.

Run:  python examples/multitable_tpc.py
"""

from repro import Atlas, AtlasConfig
from repro.datagen import tpc_catalog
from repro.dataset.stats import profile_table
from repro.evaluation.harness import Timer
from repro.frontend import render_map_set

catalog = tpc_catalog(scale=0.2, seed=0)
orders = catalog.table("orders")
customers = catalog.table("customers")
print(f"Catalog {catalog.name!r}: orders={orders.n_rows} rows, "
      f"customers={customers.n_rows} rows")
for fk in catalog.foreign_keys:
    print(f"  foreign key: {fk}")

# Naive full materialization vs the sampled subset.
with Timer() as full_timer:
    wide_full = catalog.star_around("orders")
with Timer() as sample_timer:
    wide_sample = catalog.star_around("orders", sample=5_000, rng=0)
print(f"\nStar join: full {wide_full.n_rows} rows in "
      f"{full_timer.elapsed * 1000:.0f} ms; "
      f"sampled {wide_sample.n_rows} rows in "
      f"{sample_timer.elapsed * 1000:.0f} ms")

# The §5.2 cardinality guard: keys are detected and excluded.
profile = profile_table(wide_full)
print("\nExcluded from mapping (cardinality guard):")
for name, reason in profile.excluded.items():
    print(f"  {name}: {reason}")

# Map the sampled star.
result = Atlas(wide_sample, AtlasConfig(max_maps=5)).explore()
print("\n=== Maps over the materialized star ===")
print(render_map_set(result, wide_sample))
