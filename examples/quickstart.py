"""Quickstart: answer a query with queries (paper Figure 1 / Section 1).

Generates the survey dataset of the paper's introductory example, issues
the exact user query of Section 1, and prints the ranked data maps Atlas
answers with — including the two maps of Figure 2 ({Age, Sex} and
{Education, Salary}).

Run:  python examples/quickstart.py
"""

from repro import explorer, parse_query
from repro.datagen import census_table
from repro.frontend import render_map_set

# The survey of the introductory example.
table = census_table(n_rows=20_000, seed=0)
print(f"Dataset: {table.name!r} with {table.n_rows} rows, "
      f"columns {', '.join(table.column_names)}")

# The user query of Section 1, verbatim.
query = parse_query("""
Sex: any
Salary: any
Age: [17, 90]
Eye color: {'Blue', 'Green', 'Brown'}
Education: {'BSc', 'MSc'}
""")
print("\nUser query:")
print(query.describe())

# Instead of tuples, Atlas answers with a ranked list of data maps.
# The fluent facade is the front door: every knob chains, and the
# query may be the parsed object or the raw text itself.
result = explorer(table).cut("median").explore(query)

print("\n" + "=" * 60)
print(render_map_set(result, table))

# The Figure-2 claim: Age groups with Sex, Education with Salary, and
# Eye color with neither.
print("=" * 60)
print("\nAttribute groupings found:")
for entry in result.ranked:
    print(f"  {set(entry.map.attributes)}  (entropy {entry.score:.3f})")
