"""The generic SQL access path (paper Section 4).

A generic Atlas cannot use a native driver: "only SQL may be used".
This example runs the exploration loop's data accesses through the
SQL-text-only connection — every request is emitted as SQL, parsed, and
executed — and prints the statement log, i.e. exactly what would cross
an ODBC/JDBC wire.

Run:  python examples/sql_gateway.py
"""

from repro import Atlas, parse_query
from repro.datagen import census_table
from repro.db import SqlConnection

table = census_table(n_rows=10_000, seed=0)
connection = SqlConnection({table.name: table})

query = parse_query("""
Age: [17, 90]
Sex: any
Salary: any
Education: {'BSc', 'MSc'}
""")

# --- the engine's cover/count requests, through SQL --------------------
n_described = connection.count(query, table.name)
print(f"user query describes {n_described} of {table.n_rows} tuples")

# --- fetch the region a map proposes, through SQL -----------------------
result = Atlas(table).explore(query)
region = result.best.regions[0]
fetched = connection.run_query(region, table.name)
print(f"\ntop map: {result.best.label}")
print(f"region 0 ({region.describe_inline()}) -> {fetched.n_rows} tuples via SQL")

# --- aggregate pushdown: the §5.1 histogram in one statement ------------
histogram = connection.query(
    'SELECT "Education", COUNT(*), AVG("Age") FROM "census" '
    'WHERE "Age" BETWEEN 17 AND 90 GROUP BY "Education"'
)
print("\nGROUP BY pushdown result:")
for row in histogram.head(histogram.n_rows):
    print(f"  {row}")

# --- what crossed the wire ----------------------------------------------
print("\nstatement log:")
for statement in connection.statement_log:
    print(f"  {statement}")
