"""Batch exploration: many queries, one shared execution context.

Models a burst of interactive traffic against one table — a whole-table
survey, drill-downs into the regions of the best maps, and revisits —
and serves it twice: once query-by-query with independent engines, once
through ``explore_many`` over a shared context.  The answers are
identical; the shared context is faster because masks, assignment
vectors, contingency tables, and cut points are memoized once.

Run:  python examples/batch_exploration.py
"""

import time

from repro import Atlas, explorer
from repro.datagen import census_table
from repro.evaluation.workloads import figure2_query

table = census_table(n_rows=30_000, seed=0)
survey = figure2_query()

# Build the workload: survey + the drill-downs a user would click.
first_answer = Atlas(table).explore(survey)
queries = [None, survey]
for entry in first_answer.ranked[:3]:
    queries.extend(entry.map.regions[:2])
queries += [survey, None]  # interactive traffic revisits views
print(f"Workload: {len(queries)} queries over {table.n_rows} census rows")

started = time.perf_counter()
sequential = [Atlas(table).explore(q) for q in queries]
t_sequential = time.perf_counter() - started

started = time.perf_counter()
batch = explorer(table).explore_many(queries)
t_batch = time.perf_counter() - started

assert all(a.maps == b.maps for a, b in zip(sequential, batch))
print(f"per-query Atlas.explore : {t_sequential * 1000:7.1f} ms")
print(f"explore_many (shared ctx): {t_batch * 1000:7.1f} ms")
print(f"speedup                  : {t_sequential / t_batch:7.2f}x")

# The context's cache counters show where the saving comes from.
shared = explorer(table)
shared.explore_many(queries)
counters = shared.context.counters
print(
    f"cache: {counters.hits} hits / {counters.misses} misses "
    f"({counters.hit_rate:.0%} hit rate)"
)
