"""Scriptable exploration driver: the interaction loop of Figure 1.

A tiny command interpreter over :class:`~repro.core.session.
ExplorationSession`.  Input and output streams are injectable, so the
loop is fully testable and the examples can replay canned scripts.

Commands::

    maps            show the current ranked maps
    next            advance to the next map (the "request a new map" verb)
    drill <i>       submit region i of the current map for exploration
    back            pop one drill-down level
    where           show the breadcrumb trail
    fidelity [spec] show or switch execution fidelity (exact / sketch)
    parallel [spec] show or switch multi-core execution (serial / parallel)
    cluster [urls|off] attach shard servers (scatter/gather) or detach
    append <rows>   append rows (streaming): ``Age=30, Sex=F; Age=41, Sex=M``
    tokens <column> top tokens of a text column (match/contains vocabulary)
    refresh         re-explore the breadcrumb against the latest version
    watch           toggle auto-refresh after every append
    serve [async] [port]  expose this table through an exploration service
    connect <url>   attach to a running exploration service
    remote          answer the current query through the service
    quit            leave the loop
"""

from __future__ import annotations

import io
import sys

from repro.core.config import AtlasConfig
from repro.core.exemplars import representative_examples
from repro.core.explain import explain_region
from repro.core.session import ExplorationSession  # noqa: F401 - public type
from repro.dataset.table import Table
from repro.engine.facade import explorer
from repro.errors import AtlasError
from repro.frontend.render import (
    render_breadcrumb,
    render_examples,
    render_map,
    render_map_set,
)
from repro.query.parser import parse_query
from repro.query.query import ConjunctiveQuery

PROMPT = "atlas> "

HELP_TEXT = """commands:
  maps         show the ranked maps for the current query
  next         cycle to the next ranked map
  drill <i>    explore region i of the current map
  explain <i>  why is region i interesting? (subset vs whole, §5.2)
  examples <i> representative tuples of region i (§5.2)
  back         return to the previous query
  where        show the exploration breadcrumb
  fidelity [spec] show or set fidelity: exact, sketch[:rows[:eps]]
  parallel [spec] show or set workers: serial, parallel[:workers[:shards]],
               cluster[:servers[:shards]]
  cluster [urls|off] attach shard-server URLs and explore over them;
               `cluster` alone shows the attached servers, `off` detaches
  append <rows> append rows, e.g. `append Age=30, Sex=F; Age=41, Sex=M`
  tokens <column> top tokens of a text column — the vocabulary
               `column: match '...'` / `contains '...'` predicates hit
  refresh      re-explore the breadcrumb at the latest table version
  watch        toggle auto-refresh after appends
  serve [async] [port] start an HTTP exploration service for this table
               (`async` = the event-loop frontend for many clients)
  connect <url> attach to a running exploration service
  remote       answer the current query via the connected service
  help         this text
  quit         exit"""


class ExplorerRepl:
    """Line-oriented front-end over an exploration session."""

    def __init__(
        self,
        table: Table,
        config: AtlasConfig | None = None,
        stdin: io.TextIOBase | None = None,
        stdout: io.TextIOBase | None = None,
    ):
        # Route through the fluent facade so the REPL shares one engine
        # context: every drill-down reuses the statistics computed for
        # earlier answers.
        self._session = explorer(table, config).session()
        self._stdin = stdin if stdin is not None else sys.stdin
        self._stdout = stdout if stdout is not None else sys.stdout
        self._server = None   # started by the `serve` command
        self._client = None   # attached by the `connect` command
        self._watch = False   # toggled by the `watch` command

    @property
    def session(self) -> ExplorationSession:
        """The underlying session (examples inspect it after a script)."""
        return self._session

    def run(self, initial_query: ConjunctiveQuery | str | None = None) -> None:
        """Start the loop; returns when the input ends or on ``quit``."""
        if isinstance(initial_query, str):
            initial_query = parse_query(initial_query)
        map_set = self._session.start(initial_query)
        self._print(render_map_set(map_set, self._session.atlas.table))
        self._print(HELP_TEXT)
        for raw_line in self._stdin:
            line = raw_line.strip()
            if not line:
                continue
            if line in {"quit", "exit", "q"}:
                break
            try:
                self._dispatch(line)
            except AtlasError as error:
                self._print(f"error: {error}")
        if self._server is not None:
            self._server.close(close_service=True)
            self._server = None
        self._print("bye.")

    def _dispatch(self, line: str) -> None:
        command, _, argument = line.partition(" ")
        table = self._session.atlas.table
        if command == "maps":
            self._print(render_map_set(self._session.current.map_set, table))
        elif command == "next":
            shown = self._session.next_map()
            self._print(render_map(shown, table))
        elif command == "drill":
            index = self._parse_index(argument)
            map_set = self._session.drill(index)
            self._print(render_map_set(map_set, table))
        elif command == "back":
            map_set = self._session.back()
            self._print(render_map_set(map_set, table))
        elif command == "explain":
            index = self._parse_index(argument)
            region = self._region(index)
            skip = tuple(
                p.attribute for p in region.predicates if p.is_restrictive
            )
            explanation = explain_region(table, region, skip)
            self._print(explanation.describe(k=3))
        elif command == "examples":
            index = self._parse_index(argument)
            examples = representative_examples(table, self._region(index), k=3)
            self._print(render_examples(examples, title="representatives"))
        elif command == "where":
            self._print(render_breadcrumb(self._session.breadcrumb()))
        elif command == "fidelity":
            self._fidelity(argument)
        elif command == "parallel":
            self._parallel(argument)
        elif command == "cluster":
            self._cluster(argument)
        elif command == "append":
            self._append(argument)
        elif command == "tokens":
            self._tokens(argument)
        elif command == "refresh":
            self._print(
                render_map_set(
                    self._session.refresh(), self._session.atlas.table
                )
            )
        elif command == "watch":
            self._watch = not self._watch
            self._print(
                "watch on: appends re-explore the breadcrumb automatically"
                if self._watch else "watch off"
            )
        elif command == "serve":
            self._serve(argument)
        elif command == "connect":
            self._connect(argument)
        elif command == "remote":
            self._remote()
        elif command == "help":
            self._print(HELP_TEXT)
        else:
            self._print(f"unknown command {command!r}; try 'help'")

    # ------------------------------------------------------------------ #
    # Fidelity
    # ------------------------------------------------------------------ #

    def _fidelity(self, argument: str) -> None:
        """Show or switch the session's execution fidelity.

        ``fidelity`` alone reports the current setting;
        ``fidelity sketch:20000`` (or ``exact``) re-answers the whole
        breadcrumb at the new fidelity, so the drill-down position and
        history survive the switch.
        """
        argument = argument.strip()
        if not argument:
            fidelity = self._session.atlas.config.fidelity
            self._print(f"fidelity: {fidelity.spec()}")
            return
        map_set = self._session.reconfigure(fidelity=argument)
        fidelity = self._session.atlas.config.fidelity
        self._print(f"fidelity set to {fidelity.spec()}")
        self._print(render_map_set(map_set, self._session.atlas.table))

    def _parallel(self, argument: str) -> None:
        """Show or switch the session's multi-core execution.

        ``parallel`` alone reports the current setting; ``parallel 4``
        (or a full spec like ``parallel:4:8``, or ``serial``)
        re-answers the whole breadcrumb under the new setting, so the
        drill-down position and history survive the switch.  Workers
        only change wall-clock; answers stay bit-identical for a given
        shard layout.
        """
        argument = argument.strip()
        if not argument:
            parallelism = self._session.atlas.config.parallelism
            self._print(f"parallel: {parallelism.spec()}")
            return
        setting: object = (
            int(argument) if argument.isdigit() else argument
        )
        map_set = self._session.reconfigure(parallelism=setting)
        parallelism = self._session.atlas.config.parallelism
        self._print(f"parallel set to {parallelism.spec()}")
        self._print(render_map_set(map_set, self._session.atlas.table))

    def _cluster(self, argument: str) -> None:
        """Attach shard servers, show the attached cluster, or detach.

        ``cluster http://host:8801 http://host:8802`` attaches a
        coordinator over the URLs and re-answers the breadcrumb with a
        ``cluster`` parallelism; ``cluster`` alone reports the attached
        servers; ``cluster off`` detaches (cluster configs then degrade
        to the local scan/merge split — same answers, one machine).
        """
        from repro.cluster import (
            active_cluster,
            attach_cluster,
            detach_cluster,
        )

        argument = argument.strip()
        if not argument:
            coordinator = active_cluster()
            if coordinator is None:
                self._print("no cluster attached")
            else:
                self._print(
                    "cluster: " + " ".join(coordinator.urls)
                )
            return
        if argument.lower() == "off":
            detached = detach_cluster()
            self._print(
                "cluster detached"
                if detached is not None else "no cluster attached"
            )
            return
        from repro.core.config import Parallelism

        coordinator = attach_cluster(argument.split())
        self._print(
            f"cluster attached: {coordinator.n_servers} shard server(s)"
        )
        map_set = self._session.reconfigure(
            parallelism=Parallelism.cluster()
        )
        parallelism = self._session.atlas.config.parallelism
        self._print(f"parallel set to {parallelism.spec()}")
        self._print(render_map_set(map_set, self._session.atlas.table))

    # ------------------------------------------------------------------ #
    # Streaming (`append` / `refresh` / `watch`)
    # ------------------------------------------------------------------ #

    def _append(self, argument: str) -> None:
        """Append literal rows: ``col=value, ...`` with ``;`` between rows.

        Columns omitted from a row get a missing value.  With ``watch``
        on, the breadcrumb is re-explored and the refreshed maps are
        printed; otherwise the current maps stay as-is (snapshots of
        the pre-append version) until ``refresh``.
        """
        rows = self._parse_rows(argument)
        table = self._session.append(rows)
        self._print(
            f"appended {len(next(iter(rows.values())))} row(s); "
            f"{table.name!r} is now version {table.version} "
            f"({table.n_rows} rows)"
        )
        if self._watch:
            self._print(
                render_map_set(self._session.refresh(), table)
            )

    def _parse_rows(self, argument: str) -> dict[str, list[object]]:
        """``Age=30, Sex=F; Age=41, Sex=M`` → columnar ``{name: values}``."""
        argument = argument.strip()
        if not argument:
            raise AtlasError(
                "append needs rows, e.g. `append Age=30, Sex=F`"
            )
        table = self._session.atlas.table
        parsed: list[dict[str, object]] = []
        for row_text in argument.split(";"):
            row: dict[str, object] = {}
            for pair in row_text.split(","):
                pair = pair.strip()
                if not pair:
                    continue
                column, eq, value = pair.partition("=")
                if not eq:
                    raise AtlasError(
                        f"append expects col=value pairs, got {pair!r}"
                    )
                row[column.strip()] = self._parse_value(value.strip())
            if row:
                parsed.append(row)
        if not parsed:
            raise AtlasError("append found no col=value pairs")
        unknown = {name for row in parsed for name in row} - set(
            table.column_names
        )
        if unknown:
            raise AtlasError(
                f"unknown column(s): {', '.join(sorted(unknown))}; "
                f"table has: {', '.join(table.column_names)}"
            )
        return {
            name: [row.get(name) for row in parsed]
            for name in table.column_names
        }

    @staticmethod
    def _parse_value(text: str) -> object:
        if not text:
            return None
        try:
            return float(text)
        except ValueError:
            return text

    def _tokens(self, argument: str) -> None:
        """Show a text column's heavy-hitter tokens.

        Under a sketch fidelity the counts come from the backend's
        Misra–Gries token summary (the same state the persistent store
        round-trips); under exact fidelity they are counted directly.
        Either way this is the vocabulary ``column: match '...'`` and
        ``contains '...'`` predicates select on.
        """
        from repro.dataset.column import CategoricalColumn
        from repro.query.predicate import tokenize_text

        name = argument.strip()
        if not name:
            raise AtlasError("tokens needs a column name, e.g. `tokens title`")
        table = self._session.atlas.table
        try:
            column = table.column(name)
        except AtlasError:
            raise AtlasError(
                f"unknown column {name!r}; table has: "
                f"{', '.join(table.column_names)}"
            ) from None
        if not isinstance(column, CategoricalColumn):
            raise AtlasError(f"column {name!r} is numeric; tokens need text")
        backend = self._session.atlas.context.stats()
        token_sketch = getattr(backend, "token_sketch", None)
        if token_sketch is not None:
            counts = token_sketch(name).heavy_hitters()
            provenance = "sketched from the statistics reservoir"
        else:
            import numpy as np

            label_counts = np.bincount(
                column.codes[column.codes >= 0],
                minlength=len(column.categories),
            )
            counts = {}
            for label, occurrences in zip(column.categories, label_counts):
                if not occurrences:
                    continue
                for token in tokenize_text(str(label)):
                    counts[token] = counts.get(token, 0) + int(occurrences)
            provenance = "exact"
        top = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:12]
        if not top:
            self._print(f"no tokens in {name!r}")
            return
        width = max(len(token) for token, _ in top)
        lines = [f"top tokens of {name!r} ({provenance}):"]
        lines += [f"  {token.ljust(width)}  {count}" for token, count in top]
        self._print("\n".join(lines))

    # ------------------------------------------------------------------ #
    # Service bridge (`serve` / `connect` / `remote`)
    # ------------------------------------------------------------------ #

    def _serve(self, argument: str) -> None:
        """Expose this REPL's table through an exploration service.

        ``serve [port]`` starts the threaded frontend; ``serve async
        [port]`` starts the event-loop frontend (same routes, scales to
        hundreds of clients).
        """
        from repro.service import (
            ExplorationService,
            ServiceError,
            serve,
            serve_async,
        )

        if self._server is not None:
            self._print(f"already serving at {self._server.url}")
            return
        words = argument.split()
        use_async = bool(words) and words[0] == "async"
        if use_async:
            words = words[1:]
        if len(words) > 1 or (words and not words[0].isdigit()):
            raise AtlasError(
                f"serve takes [async] and a port number, got {argument!r}"
            )
        port = int(words[0]) if words else 0
        table = self._session.atlas.table
        # Share the session's configuration so `remote` answers match
        # what the local loop shows for the same query.
        service = ExplorationService(config=self._session.atlas.config)
        service.register(table)
        start = serve_async if use_async else serve
        try:
            self._server = start(service, port=port)
        except (OSError, ServiceError) as error:
            service.close()
            raise AtlasError(f"cannot serve on port {port}: {error}") from error
        frontend = "async" if use_async else "threaded"
        self._print(
            f"serving {table.name!r} at {self._server.url} ({frontend})"
        )

    def _connect(self, argument: str) -> None:
        """Attach a client to a running exploration service."""
        from repro.service import ServiceClient

        url = argument.strip()
        if not url:
            raise AtlasError("connect needs a service URL")
        client = ServiceClient(url)
        client.health()
        tables = client.tables()
        self._client = client
        listing = ", ".join(tables) if tables else "(none)"
        self._print(f"connected to {url}; tables: {listing}")

    def _remote(self) -> None:
        """Answer the session's current query through the service."""
        if self._client is None:
            raise AtlasError("not connected; use 'connect <url>' first")
        table = self._session.atlas.table
        query = self._session.current.query
        # Ship the session's fidelity so the remote answer matches what
        # the local loop would show for the same query.
        fidelity = self._session.atlas.config.fidelity.spec()
        response = self._client.explore(table.name, query, fidelity=fidelity)
        provenance = "result cache" if response.cached else (
            f"computed in {response.elapsed:.3f}s"
        )
        self._print(f"remote answer ({provenance}):")
        self._print(render_map_set(response.map_set, table))

    def _region(self, index: int):
        regions = self._session.current_map.regions
        if not 0 <= index < len(regions):
            raise AtlasError(
                f"region index {index} out of range "
                f"(map has {len(regions)} regions)"
            )
        return regions[index]

    @staticmethod
    def _parse_index(argument: str) -> int:
        argument = argument.strip()
        if not argument.isdigit():
            raise AtlasError(f"drill needs a region number, got {argument!r}")
        return int(argument)

    def _print(self, text: str) -> None:
        self._stdout.write(text + "\n")


def run_script(
    table: Table,
    commands: list[str],
    initial_query: ConjunctiveQuery | str | None = None,
    config: AtlasConfig | None = None,
) -> str:
    """Run a canned command script and return the transcript."""
    stdin = io.StringIO("\n".join(commands) + "\n")
    stdout = io.StringIO()
    repl = ExplorerRepl(table, config=config, stdin=stdin, stdout=stdout)
    repl.run(initial_query)
    return stdout.getvalue()


def main(argv: list[str] | None = None) -> int:
    """Console entry point: ``atlas-explore data.csv [--query q.txt]``.

    Loads a CSV into the columnar substrate and starts the interactive
    exploration loop on it — the closest a terminal gets to Figure 6.
    """
    import argparse

    from repro.dataset.io_csv import read_csv

    parser = argparse.ArgumentParser(
        prog="atlas-explore",
        description="Explore a CSV file with Atlas data maps.",
    )
    parser.add_argument("csv", help="path to a CSV file with a header row")
    parser.add_argument(
        "--query",
        help="path to a query file in the paper's syntax "
             "(e.g. \"Age: [17, 90]\"); defaults to the whole table",
    )
    parser.add_argument(
        "--max-maps", type=int, default=None,
        help="cap on the number of maps per answer",
    )
    parser.add_argument(
        "--fidelity", default=None,
        help="execution fidelity: 'exact' (default) or "
             "'sketch[:rows[:epsilon]]' for bounded approximate answers",
    )
    parser.add_argument(
        "--parallel", default=None,
        help="multi-core execution: 'serial' (default), "
             "'parallel[:workers[:shards]]' (workers may be 'auto'), or "
             "'cluster[:servers[:shards]]' over --cluster shard servers; "
             "applies at sketch fidelity",
    )
    parser.add_argument(
        "--cluster", default=None, metavar="URLS",
        help="comma-separated shard-server URLs to attach "
             "(see `python -m repro.cluster`); combine with "
             "--parallel cluster",
    )
    arguments = parser.parse_args(argv)

    table = read_csv(arguments.csv)
    config = AtlasConfig()
    if arguments.max_maps is not None:
        config = config.replace(max_maps=arguments.max_maps)
    if arguments.fidelity is not None:
        config = config.replace(fidelity=arguments.fidelity)
    if arguments.parallel is not None:
        config = config.replace(parallelism=arguments.parallel)
    if arguments.cluster is not None:
        from repro.cluster import attach_cluster

        attach_cluster(
            [url for url in arguments.cluster.split(",") if url]
        )
        if arguments.parallel is None:
            config = config.replace(parallelism="cluster")

    initial_query: ConjunctiveQuery | None = None
    if arguments.query:
        with open(arguments.query) as handle:
            initial_query = parse_query(handle.read())

    ExplorerRepl(table, config=config).run(initial_query)
    return 0


if __name__ == "__main__":  # pragma: no cover - manual entry point
    raise SystemExit(main())
