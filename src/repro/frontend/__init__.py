"""Text front-end: ASCII map rendering and the scriptable exploration REPL."""

from repro.frontend.heatmap import render_heatmap
from repro.frontend.render import (
    cover_bar,
    render_breadcrumb,
    render_examples,
    render_map,
    render_map_set,
    render_profile,
)
from repro.frontend.repl import ExplorerRepl, run_script

__all__ = [
    "ExplorerRepl",
    "cover_bar",
    "render_breadcrumb",
    "render_examples",
    "render_heatmap",
    "render_map",
    "render_map_set",
    "render_profile",
    "run_script",
]
