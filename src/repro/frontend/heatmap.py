"""2-D ASCII heat maps: the terminal analogue of the Figure-6 map view.

The Atlas GUI displays a map as shaded 2-D regions.  In a terminal the
same information renders as a character density plot — one cell per
(x-bin, y-bin), shaded by tuple count — with the map's cut lines drawn
through the grid so the user sees *where* the regions split the cloud.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.datamap import DataMap
from repro.dataset.table import Table
from repro.errors import MapError
from repro.query.predicate import RangePredicate

#: Density ramp from empty to dense.
SHADES = " .:-=+*#%@"


def render_heatmap(
    table: Table,
    attr_x: str,
    attr_y: str,
    data_map: DataMap | None = None,
    width: int = 60,
    height: int = 20,
) -> str:
    """Render a density plot of two numeric attributes.

    When ``data_map`` is given, the finite range boundaries its regions
    place on ``attr_x`` / ``attr_y`` are drawn as ``|`` columns and
    ``-`` rows (crossings as ``+``), visualizing the map's partition.
    """
    if width < 4 or height < 2:
        raise MapError("heat map needs width >= 4 and height >= 2")
    x = table.numeric(attr_x).data
    y = table.numeric(attr_y).data
    keep = ~(np.isnan(x) | np.isnan(y))
    x, y = x[keep], y[keep]
    if x.size == 0:
        raise MapError("no complete (x, y) pairs to plot")
    x_low, x_high = float(x.min()), float(x.max())
    y_low, y_high = float(y.min()), float(y.max())
    if x_low == x_high or y_low == y_high:
        raise MapError("degenerate axis: constant attribute")

    cols = np.clip(
        ((x - x_low) / (x_high - x_low) * width).astype(int), 0, width - 1
    )
    rows = np.clip(
        ((y - y_low) / (y_high - y_low) * height).astype(int), 0, height - 1
    )
    grid = np.zeros((height, width), dtype=np.int64)
    np.add.at(grid, (rows, cols), 1)

    peak = grid.max()
    canvas = [
        [
            SHADES[min(len(SHADES) - 1, int(count / peak * (len(SHADES) - 1)))]
            if peak
            else " "
            for count in row
        ]
        for row in grid
    ]

    if data_map is not None:
        _draw_cuts(
            canvas, data_map, attr_x, attr_y,
            x_low, x_high, y_low, y_high, width, height,
        )

    # y grows upward: print top row last-binned first
    lines = [f"{attr_y} ^"]
    for row_index in range(height - 1, -1, -1):
        lines.append("  |" + "".join(canvas[row_index]))
    lines.append("  +" + "-" * width + f"> {attr_x}")
    lines.append(
        f"   x: [{x_low:g}, {x_high:g}]   y: [{y_low:g}, {y_high:g}]"
    )
    return "\n".join(lines)


def _map_bounds(data_map: DataMap, attribute: str) -> list[float]:
    bounds: set[float] = set()
    for region in data_map.regions:
        predicate = region.predicate_on(attribute)
        if isinstance(predicate, RangePredicate):
            for bound in (predicate.low, predicate.high):
                if math.isfinite(bound):
                    bounds.add(float(bound))
    return sorted(bounds)


def _draw_cuts(
    canvas: list[list[str]],
    data_map: DataMap,
    attr_x: str,
    attr_y: str,
    x_low: float,
    x_high: float,
    y_low: float,
    y_high: float,
    width: int,
    height: int,
) -> None:
    x_cut_cols = {
        int((bound - x_low) / (x_high - x_low) * width)
        for bound in _map_bounds(data_map, attr_x)
        if x_low < bound < x_high
    }
    y_cut_rows = {
        int((bound - y_low) / (y_high - y_low) * height)
        for bound in _map_bounds(data_map, attr_y)
        if y_low < bound < y_high
    }
    for row_index in range(height):
        for col_index in range(width):
            on_x = col_index in x_cut_cols
            on_y = row_index in y_cut_rows
            if on_x and on_y:
                canvas[row_index][col_index] = "+"
            elif on_x:
                canvas[row_index][col_index] = "|"
            elif on_y:
                canvas[row_index][col_index] = "-"
