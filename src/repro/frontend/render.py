"""ASCII rendering of maps and map sets: the Figure-6 GUI analogue.

The paper's prototype shows maps in a web GUI; the reproduction renders
the same information — region descriptions, covers as bars, ranking
scores — as terminal text, which keeps the interaction loop scriptable
and testable.
"""

from __future__ import annotations

from repro.core.atlas import MapSet
from repro.core.datamap import DataMap
from repro.dataset.table import Table

#: Width of the cover bar in characters.
BAR_WIDTH = 30


def cover_bar(cover: float, width: int = BAR_WIDTH) -> str:
    """Proportional bar, e.g. ``[#####.....] 48.2%``."""
    cover = min(max(cover, 0.0), 1.0)
    filled = round(cover * width)
    return f"[{'#' * filled}{'.' * (width - filled)}] {cover * 100:5.1f}%"


def render_map(data_map: DataMap, table: Table | None = None) -> str:
    """One map as a block of text; covers included when a table is given."""
    lines = [f"Map: {data_map.label}  ({data_map.n_regions} regions)"]
    covers = data_map.covers(table) if table is not None else None
    for index, region in enumerate(data_map.regions):
        description = " ∧ ".join(
            p.describe() for p in region.predicates if p.is_restrictive
        ) or "(everything)"
        lines.append(f"  ({index}) {description}")
        if covers is not None:
            lines.append(f"      {cover_bar(float(covers[index]))}")
    return "\n".join(lines)


def render_map_set(map_set: MapSet, table: Table | None = None) -> str:
    """A whole ranked answer, best map first."""
    if not map_set.ranked:
        return "No maps could be generated for this query."
    lines = [
        f"{len(map_set.ranked)} map(s) for query: "
        f"{map_set.query.describe_inline()}",
        f"(pipeline: {map_set.timings.total * 1000:.1f} ms over "
        f"{map_set.n_rows_used} rows)",
        "",
    ]
    for rank, entry in enumerate(map_set.ranked, start=1):
        lines.append(f"--- #{rank}  entropy={entry.score:.3f} ---")
        lines.append(render_map(entry.map, table))
        lines.append("")
    return "\n".join(lines).rstrip()


def render_examples(examples: Table, title: str = "examples") -> str:
    """A small table of example tuples, one row per line."""
    lines = [f"{title} ({examples.n_rows} rows):"]
    for row in examples.head(examples.n_rows):
        cells = ", ".join(
            f"{name}={_cell(value)}" for name, value in row.items()
        )
        lines.append(f"  {cells}")
    return "\n".join(lines)


def _cell(value: object) -> str:
    if value is None:
        return "∅"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def render_profile(profile) -> str:
    """Render a :class:`~repro.dataset.stats.TableProfile` as text.

    Shows each column's kind, distinct count, and — for excluded columns
    — the §5.2 guard's reason, which is the feedback a user needs when a
    column they expected is absent from the maps.
    """
    lines = [f"Profile of table {profile.table_name!r}:"]
    excluded = profile.excluded
    for summary in profile.summaries:
        marker = "  " if summary.name not in excluded else "✗ "
        detail = f"{summary.kind.value}, {summary.distinct} distinct"
        if summary.minimum is not None:
            detail += f", range [{summary.minimum:g}, {summary.maximum:g}]"
        if summary.n_missing:
            detail += f", {summary.missing_ratio * 100:.1f}% missing"
        lines.append(f"  {marker}{summary.name}: {detail}")
        if summary.name in excluded:
            lines.append(f"      excluded: {excluded[summary.name]}")
    return "\n".join(lines)


def render_breadcrumb(trail: list[str]) -> str:
    """The drill-down trail, root first."""
    if not trail:
        return "(root)"
    return "\n".join(
        f"{'  ' * depth}> {step}" for depth, step in enumerate(trail)
    )
