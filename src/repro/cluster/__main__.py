"""``python -m repro.cluster`` — run one shard server.

Binds, prints ``SHARD_SERVER_URL=http://host:port`` on stdout (the
:mod:`repro.cluster.launch` helpers read it to learn an ephemeral
port), and serves until terminated.
"""

from __future__ import annotations

import argparse
import sys

from repro.cluster.launch import URL_PREFIX
from repro.cluster.shard import ShardServer


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster",
        description="Run one repro shard server.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="0 picks an ephemeral port"
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log every request"
    )
    options = parser.parse_args(argv)
    server = ShardServer(
        host=options.host, port=options.port, quiet=not options.verbose
    )
    print(f"{URL_PREFIX}{server.url}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - manual runs
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
