"""The shard-server wire protocol: JSON shapes for own/scan/append.

The cluster speaks the same dialect as the PR-2 service protocol —
symmetric ``to_dict``/``from_dict`` dataclasses, typed errors with an
HTTP face — over three POST routes a :class:`~repro.cluster.shard.ShardServer`
exposes:

====== ========== =====================================================
Method Path       Meaning
====== ========== =====================================================
POST   /own       take ownership of one shard's column values
POST   /scan      scan an owned shard (sample + full-scan sketches)
POST   /append    extend an owned shard with appended rows
GET    /health    liveness + protocol version
GET    /shards    owned shards (table, shard, row range, version)
GET    /metrics   scans/appends served, rows owned, per-scan seconds
====== ========== =====================================================

Ownership is **lazy and versioned**: a scan or append naming shard
state the server does not hold answers a typed 409
(:class:`~repro.service.protocol.StaleShardError`), and the
coordinator re-pushes ``/own`` and retries.  Two things fall out for
free: a freshly started coordinator *re-attaches* to running servers
(its first scan simply succeeds against state a previous coordinator
pushed), and repeated appends are idempotent (a delta the server has
already applied — ``to_version`` matching the stored version — is a
no-op).

Column values travel raw: numeric attributes as float lists with
``NaN`` for missing (the Python ``json`` module round-trips the token
losslessly), categoricals as present-value label lists in row order
with the Misra–Gries capacity computed once by the coordinator from
the full dictionary.  These are exactly the streams
:func:`repro.engine.parallel.scan_shard_values` consumes, so a scan on
a server is bit-identical to one in a local worker.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.service.protocol import ProtocolError

#: Bumped on incompatible shard-wire changes; ``/health`` reports it.
CLUSTER_PROTOCOL_VERSION = 1


def _require(data: dict, key: str) -> object:
    if key not in data:
        raise ProtocolError(f"shard payload is missing {key!r}")
    return data[key]


@dataclasses.dataclass(frozen=True)
class OwnShardRequest:
    """Push one shard's column values to the server that owns it."""

    table: str
    shard: int
    #: Half-open global row range ``[low, high)`` this shard covers.
    low: int
    high: int
    #: The table's streaming version these values reflect.
    version: int
    #: Attribute → raw numeric values (``NaN`` for missing).
    numeric: dict[str, list[float]]
    #: ``(attribute, mg_capacity, labels)`` triples; labels are the
    #: present values in row order (missing dropped).
    categorical: list[tuple[str, int, list[str]]]

    def to_dict(self) -> dict:
        return {
            "table": self.table,
            "shard": self.shard,
            "low": self.low,
            "high": self.high,
            "version": self.version,
            "numeric": self.numeric,
            "categorical": [
                [name, capacity, labels]
                for name, capacity, labels in self.categorical
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "OwnShardRequest":
        return cls(
            table=str(_require(data, "table")),
            shard=int(_require(data, "shard")),
            low=int(_require(data, "low")),
            high=int(_require(data, "high")),
            version=int(_require(data, "version")),
            numeric={
                str(name): [float(v) for v in values]
                for name, values in dict(_require(data, "numeric")).items()
            },
            categorical=[
                (str(name), int(capacity), [str(v) for v in labels])
                for name, capacity, labels in _require(data, "categorical")
            ],
        )


@dataclasses.dataclass(frozen=True)
class ScanRequest:
    """Scan one owned shard into per-shard statistics.

    Carries everything :func:`repro.engine.parallel.scan_shard_values`
    needs beyond the owned values: the deterministic RNG inputs
    (``seed``, ``fingerprint``) and the sketch recipe.  ``low``,
    ``high``, and ``version`` double as the ownership check — a
    mismatch is a stale shard, not a different answer.
    """

    table: str
    shard: int
    low: int
    high: int
    version: int
    #: ``table_fingerprint`` of the coordinator's table; keys the
    #: ``"shard:<i>:<fingerprint>"`` RNG stream.
    fingerprint: int
    seed: int
    budget_rows: int
    sample_rows: bool
    epsilon: float

    def to_dict(self) -> dict:
        return {
            "table": self.table,
            "shard": self.shard,
            "low": self.low,
            "high": self.high,
            "version": self.version,
            "fingerprint": self.fingerprint,
            "seed": self.seed,
            "budget_rows": self.budget_rows,
            "sample_rows": self.sample_rows,
            "epsilon": self.epsilon,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScanRequest":
        return cls(
            table=str(_require(data, "table")),
            shard=int(_require(data, "shard")),
            low=int(_require(data, "low")),
            high=int(_require(data, "high")),
            version=int(_require(data, "version")),
            fingerprint=int(_require(data, "fingerprint")),
            seed=int(_require(data, "seed")),
            budget_rows=int(_require(data, "budget_rows")),
            sample_rows=bool(_require(data, "sample_rows")),
            epsilon=float(_require(data, "epsilon")),
        )


@dataclasses.dataclass(frozen=True)
class ShardAppendRequest:
    """Extend an owned shard with appended rows (streaming).

    Appended rows land past every shard boundary, so they always route
    to the shard owning the table's tail
    (:meth:`repro.engine.parallel.ShardedTable.owning_shard`).  The
    version pair makes the route idempotent: a server already at
    ``to_version`` answers OK without re-applying, any other mismatch
    is a 409 and the coordinator re-pushes the whole shard.
    """

    table: str
    shard: int
    from_version: int
    to_version: int
    #: New global ``high`` bound after the append.
    high: int
    #: Attribute → appended numeric values (``NaN`` for missing).
    numeric: dict[str, list[float]]
    #: Attribute → appended present-value labels, in row order.
    categorical: dict[str, list[str]]
    #: Attribute → Misra–Gries capacity at ``to_version``.  Appends can
    #: grow a categorical dictionary, and the capacity is derived from
    #: the full dictionary — the server must sketch future scans with
    #: the post-append capacity or its sketches would diverge from a
    #: local build at the same version.
    capacities: dict[str, int]

    def to_dict(self) -> dict:
        return {
            "table": self.table,
            "shard": self.shard,
            "from_version": self.from_version,
            "to_version": self.to_version,
            "high": self.high,
            "numeric": self.numeric,
            "categorical": self.categorical,
            "capacities": self.capacities,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShardAppendRequest":
        return cls(
            table=str(_require(data, "table")),
            shard=int(_require(data, "shard")),
            from_version=int(_require(data, "from_version")),
            to_version=int(_require(data, "to_version")),
            high=int(_require(data, "high")),
            numeric={
                str(name): [float(v) for v in values]
                for name, values in dict(_require(data, "numeric")).items()
            },
            categorical={
                str(name): [str(v) for v in labels]
                for name, labels in dict(_require(data, "categorical")).items()
            },
            capacities={
                str(name): int(capacity)
                for name, capacity in dict(
                    _require(data, "capacities")
                ).items()
            },
        )


def numeric_to_wire(values: "dict[str, np.ndarray]") -> dict[str, list[float]]:
    """Numpy numeric slices → wire lists (``NaN`` kept, exact floats)."""
    return {
        name: [float(v) for v in array.tolist()]
        for name, array in values.items()
    }


def numeric_from_wire(values: dict[str, list[float]]) -> "dict[str, np.ndarray]":
    """Wire lists → the float64 arrays the scan core consumes."""
    return {
        name: np.asarray(raw, dtype=np.float64)
        for name, raw in values.items()
    }
