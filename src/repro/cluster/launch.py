"""Spawning local shard-server processes (benchmarks, CI, quickstarts).

Real deployments start shard servers with ``python -m repro.cluster``
on each machine and hand the URLs to a
:class:`~repro.cluster.coordinator.ClusterCoordinator`.  For the E21
benchmark, the CI smoke step, and the tutorial quickstart, the servers
all live on localhost — :func:`spawn_local_cluster` starts N of them as
subprocesses (real processes, so multi-core hosts genuinely scan in
parallel) and tears them down afterwards.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time

from repro.errors import MapError

#: Line prefix ``python -m repro.cluster`` prints once bound; the
#: launcher reads it to learn the ephemeral port.
URL_PREFIX = "SHARD_SERVER_URL="


class ShardProcess:
    """One shard-server subprocess and the URL it serves on."""

    def __init__(self, process: subprocess.Popen, url: str):
        self._process = process
        self._url = url

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return self._url

    @property
    def pid(self) -> int:
        """The subprocess PID (tests kill it to simulate failures)."""
        return self._process.pid

    def alive(self) -> bool:
        """True while the subprocess is running."""
        return self._process.poll() is None

    def terminate(self, timeout: float = 5.0) -> None:
        """Stop the subprocess (SIGTERM, then SIGKILL on timeout)."""
        if self._process.poll() is not None:
            return
        self._process.terminate()
        try:
            self._process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:  # pragma: no cover - stuck server
            self._process.kill()
            self._process.wait(timeout=timeout)

    def kill(self) -> None:
        """Kill the subprocess immediately (failure-mode tests)."""
        if self._process.poll() is None:
            self._process.kill()
            self._process.wait(timeout=5)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ShardProcess pid={self.pid} url={self._url}>"


def _repro_pythonpath() -> str:
    """A PYTHONPATH under which ``import repro`` resolves to this tree."""
    import repro

    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = os.environ.get("PYTHONPATH", "")
    return f"{src}{os.pathsep}{existing}" if existing else src


def spawn_shard_server(
    *, host: str = "127.0.0.1", startup_timeout: float = 20.0
) -> ShardProcess:
    """Start one ``python -m repro.cluster`` subprocess on an ephemeral port."""
    env = dict(os.environ)
    env["PYTHONPATH"] = _repro_pythonpath()
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cluster", "--host", host, "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + startup_timeout
    assert process.stdout is not None
    while True:
        line = process.stdout.readline()
        if line.startswith(URL_PREFIX):
            return ShardProcess(process, line[len(URL_PREFIX):].strip())
        if not line and process.poll() is not None:
            raise MapError(
                "shard server exited before binding "
                f"(exit code {process.returncode})"
            )
        if time.monotonic() > deadline:  # pragma: no cover - hung server
            process.kill()
            raise MapError("shard server did not bind in time")


def spawn_local_cluster(
    n_servers: int, *, host: str = "127.0.0.1"
) -> list[ShardProcess]:
    """Start ``n_servers`` local shard-server subprocesses.

    Callers own the teardown::

        servers = spawn_local_cluster(2)
        try:
            coordinator = ClusterCoordinator([s.url for s in servers])
            ...
        finally:
            for server in servers:
                server.terminate()
    """
    if n_servers < 1:
        raise MapError(f"n_servers must be >= 1, got {n_servers}")
    servers: list[ShardProcess] = []
    try:
        for _ in range(n_servers):
            servers.append(spawn_shard_server(host=host))
    except Exception:
        for server in servers:
            server.terminate()
        raise
    return servers
