"""The shard server: owns row-range shards and scans them on demand.

One :class:`ShardStore` holds the column values of every shard pushed
to this process (``POST /own``), scans them into
:class:`~repro.engine.parallel.ShardStatistics` (``POST /scan``) with
the *same* :func:`~repro.engine.parallel.scan_shard_values` core the
local workers run, and extends them with routed appends
(``POST /append``).  The :class:`ShardServer` HTTP frontend mirrors the
PR-2 service server: ``ThreadingHTTPServer``, JSON bodies, typed error
payloads.

A shard server is deliberately dumb: it never sees queries, configs, or
other shards — only raw column values and a scan recipe.  All layout
decisions (boundaries, server assignment, merge order) live in the
coordinator, which is what keeps the statistical recipe in exactly one
place.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from repro.cluster.protocol import (
    CLUSTER_PROTOCOL_VERSION,
    OwnShardRequest,
    ScanRequest,
    ShardAppendRequest,
    numeric_from_wire,
)
from repro.engine.parallel import ShardStatistics, scan_shard_values
from repro.service.protocol import (
    ProtocolError,
    ServiceError,
    StaleShardError,
    error_to_dict,
)

#: Shard payloads carry whole column slices; allow far more than the
#: service's 1 MiB exploration bodies.
_MAX_BODY_BYTES = 1 << 28


class _OwnedShard:
    """One shard's mutable state (columns grow under routed appends)."""

    def __init__(self, request: OwnShardRequest):
        self.low = request.low
        self.high = request.high
        self.version = request.version
        self.numeric = numeric_from_wire(request.numeric)
        #: ``(attribute, capacity, labels)`` — labels grow on append.
        self.categorical = [
            (name, capacity, list(labels))
            for name, capacity, labels in request.categorical
        ]

    def matches(self, low: int, high: int, version: int) -> bool:
        """True when a request names exactly this owned state."""
        return (
            self.low == low and self.high == high and self.version == version
        )

    def describe(self) -> dict:
        return {
            "low": self.low,
            "high": self.high,
            "version": self.version,
            "rows": self.high - self.low,
        }


class ShardStore:
    """Owned shards of one server process, keyed ``(table, shard)``.

    Thread-safe: the HTTP frontend is a ``ThreadingHTTPServer``, so
    own/scan/append can race.  Scans copy the references they need out
    under the lock and run the (read-only) scan core outside it.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._shards: dict[tuple[str, int], _OwnedShard] = {}  # guarded-by: _lock
        self._scans = 0  # guarded-by: _lock
        self._appends = 0  # guarded-by: _lock
        self._scan_seconds: list[float] = []  # guarded-by: _lock

    def own(self, request: OwnShardRequest) -> dict:
        """Take (or replace) ownership of one shard's values."""
        if request.high < request.low:
            raise ProtocolError(
                f"shard range [{request.low}, {request.high}) is negative"
            )
        owned = _OwnedShard(request)
        with self._lock:
            self._shards[(request.table, request.shard)] = owned
        return {"owned": owned.describe()}

    def _owned(self, table: str, shard: int) -> _OwnedShard:  # holds-lock: _lock
        owned = self._shards.get((table, shard))
        if owned is None:
            raise StaleShardError(
                f"shard {shard} of table {table!r} is not owned by this "
                "server; push /own first"
            )
        return owned

    def scan(self, request: ScanRequest) -> ShardStatistics:
        """Scan one owned shard with the shared deterministic core."""
        started = time.perf_counter()
        with self._lock:
            owned = self._owned(request.table, request.shard)
            if not owned.matches(request.low, request.high, request.version):
                raise StaleShardError(
                    f"shard {request.shard} of table {request.table!r} is "
                    f"owned at rows [{owned.low}, {owned.high}) version "
                    f"{owned.version}, but the scan names "
                    f"[{request.low}, {request.high}) version "
                    f"{request.version}; re-push /own"
                )
            numeric = dict(owned.numeric)
            categorical = tuple(
                (name, capacity, list(labels))
                for name, capacity, labels in owned.categorical
            )
        statistics = scan_shard_values(
            index=request.shard,
            low=request.low,
            n_rows=request.high - request.low,
            seed=request.seed,
            fingerprint=request.fingerprint,
            budget_rows=request.budget_rows,
            sample_rows=request.sample_rows,
            epsilon=request.epsilon,
            numeric=numeric,
            categorical=categorical,
        )
        with self._lock:
            self._scans += 1
            self._scan_seconds.append(time.perf_counter() - started)
        return statistics

    def append(self, request: ShardAppendRequest) -> dict:
        """Extend an owned shard with appended rows (idempotently)."""
        with self._lock:
            owned = self._owned(request.table, request.shard)
            if owned.version == request.to_version:
                # Another context already routed this delta.
                return {"owned": owned.describe(), "applied": False}
            if owned.version != request.from_version:
                raise StaleShardError(
                    f"shard {request.shard} of table {request.table!r} is "
                    f"at version {owned.version}, but the append moves "
                    f"{request.from_version} -> {request.to_version}; "
                    "re-push /own"
                )
            for name, values in request.numeric.items():
                if name not in owned.numeric:
                    raise ProtocolError(
                        f"append names unknown numeric attribute {name!r}"
                    )
                owned.numeric[name] = np.concatenate(
                    [owned.numeric[name], np.asarray(values, dtype=np.float64)]
                )
            labelled = {
                name: index
                for index, (name, _, _) in enumerate(owned.categorical)
            }
            for name, labels in request.categorical.items():
                if name not in labelled:
                    raise ProtocolError(
                        f"append names unknown categorical attribute {name!r}"
                    )
                index = labelled[name]
                stored_name, capacity, stored = owned.categorical[index]
                stored.extend(labels)
                # A grown dictionary can raise the MG capacity; future
                # scans must sketch at the post-append capacity to stay
                # bit-identical with a local build at this version.
                capacity = request.capacities.get(name, capacity)
                owned.categorical[index] = (stored_name, capacity, stored)
            owned.high = request.high
            owned.version = request.to_version
            self._appends += 1
            return {"owned": owned.describe(), "applied": True}

    def describe(self) -> dict:
        """Owned shards, for ``GET /shards`` and re-attach checks."""
        with self._lock:
            return {
                "shards": [
                    {"table": table, "shard": shard, **owned.describe()}
                    for (table, shard), owned in sorted(self._shards.items())
                ]
            }

    def metrics(self) -> dict:
        """Counters for ``GET /metrics``."""
        with self._lock:
            return {
                "shards_owned": len(self._shards),
                "rows_owned": sum(
                    owned.high - owned.low
                    for owned in self._shards.values()
                ),
                "scans": self._scans,
                "appends": self._appends,
                "scan_seconds": list(self._scan_seconds),
            }


class _ShardHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the store reference."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, store: ShardStore, quiet: bool):
        super().__init__(address, _Handler)
        self.store = store
        self.quiet = quiet


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-shard/1"
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        store: ShardStore = self.server.store
        try:
            if self.path == "/health":
                self._send(200, {
                    "status": "ok",
                    "protocol": CLUSTER_PROTOCOL_VERSION,
                })
            elif self.path == "/shards":
                self._send(200, store.describe())
            elif self.path == "/metrics":
                self._send(200, store.metrics())
            else:
                raise ProtocolError(f"no route {self.path!r}")
        except Exception as error:
            self._send_error_payload(error)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        store: ShardStore = self.server.store
        try:
            payload = self._read_json()
            if self.path == "/own":
                self._send(200, store.own(OwnShardRequest.from_dict(payload)))
            elif self.path == "/scan":
                statistics = store.scan(ScanRequest.from_dict(payload))
                self._send(200, {"statistics": statistics.to_dict()})
            elif self.path == "/append":
                self._send(
                    200,
                    store.append(ShardAppendRequest.from_dict(payload)),
                )
            else:
                raise ProtocolError(f"no route {self.path!r}")
        except Exception as error:
            self._send_error_payload(error)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length <= 0:
            raise ProtocolError("request body required")
        if length > _MAX_BODY_BYTES:
            self.close_connection = True
            raise ProtocolError(
                f"request body of {length} bytes exceeds the "
                f"{_MAX_BODY_BYTES}-byte limit"
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ProtocolError(
                f"request body is not valid JSON: {exc}"
            ) from exc

    def _send(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_error_payload(self, error: Exception) -> None:
        payload = error_to_dict(error)
        status = payload["error"]["status"]
        if not self.server.quiet and not isinstance(error, ServiceError):
            self.log_error("unhandled error: %r", error)
        self._send(status, payload)

    def log_message(self, format: str, *args: object) -> None:
        if not self.server.quiet:  # pragma: no cover - manual servers only
            super().log_message(format, *args)


class ShardServer:
    """A running shard-server HTTP frontend.

    Usually created through :func:`serve_shard` (in-process, for tests
    and the coordinator's local fallback) or ``python -m repro.cluster``
    (a standalone process, for real deployments and the E21 bench)::

        with serve_shard() as server:
            coordinator = ClusterCoordinator([server.url])
    """

    def __init__(
        self,
        store: ShardStore | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        quiet: bool = True,
    ):
        self._store = store if store is not None else ShardStore()
        self._http = _ShardHTTPServer((host, port), self._store, quiet)
        self._thread: threading.Thread | None = None

    @property
    def store(self) -> ShardStore:
        """The shard store being exposed."""
        return self._store

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (port 0 resolves here)."""
        return self._http.server_address[:2]

    @property
    def url(self) -> str:
        """Base URL the coordinator should use."""
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ShardServer":
        """Start serving on a daemon thread; returns self for chaining."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._http.serve_forever,
            name="repro-shard-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the ``__main__`` entry point)."""
        self._http.serve_forever()

    def close(self) -> None:
        """Stop the listener."""
        if self._thread is not None:
            self._http.shutdown()
            self._thread.join(timeout=5)
            self._thread = None
        self._http.server_close()

    def __enter__(self) -> "ShardServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def serve_shard(
    host: str = "127.0.0.1", port: int = 0, *, quiet: bool = True
) -> ShardServer:
    """Start an in-process shard server (port 0 = ephemeral)."""
    return ShardServer(host=host, port=port, quiet=quiet).start()
