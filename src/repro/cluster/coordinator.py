"""The cluster coordinator: scatter/gather over shard servers.

:class:`ClusterCoordinator` turns N running
:class:`~repro.cluster.shard.ShardServer` processes into a drop-in
statistics backend.  A build fans the shard scans out over HTTP —
shards assigned to servers in contiguous blocks — then folds the
per-shard results **in shard order** with exactly the local fold
(:func:`repro.engine.parallel.fold_shard_statistics`), so a cluster
answer is bit-identical to a serial or local-parallel answer over the
same shard layout: "workers are wall-clock, shards are statistics"
survives the network hop unchanged.

Data placement is lazy and versioned: the first scan of a shard a
server does not own answers 409, the coordinator pushes the shard's
column values (``POST /own``) and retries.  A coordinator restart
therefore *re-attaches* to running servers without a handshake — its
first scan simply succeeds against previously pushed state.

Failure handling: each shard call runs under the transport's
per-request timeout; a failed scan is retried once, and a second
failure raises :class:`~repro.service.protocol.ShardUnavailableError`
(HTTP 503 through the service) naming the shard's index, row range,
and server URL.  There is no cross-server failover — re-pushing a
shard elsewhere mid-query would answer correctly (the statistics only
depend on the shard layout) but hide the operational fact an operator
needs to see.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.cluster.protocol import (
    OwnShardRequest,
    ScanRequest,
    ShardAppendRequest,
    numeric_to_wire,
)
from repro.core.config import Fidelity, Parallelism
from repro.dataset.table import Table
from repro.engine.backends import CacheCounters, table_fingerprint
from repro.engine.parallel import (
    ShardedSketchBackend,
    ShardedTable,
    ShardStatistics,
    _sketch_attributes,
    fold_shard_statistics,
    shard_column_values,
)
from repro.errors import MapError
from repro.service.protocol import (
    RemoteServiceError,
    ShardUnavailableError,
    StaleShardError,
)
from repro.service.transport import HttpTransport


def server_for_shard(shard: int, n_shards: int, n_servers: int) -> int:
    """Which server owns a shard: contiguous blocks, layout-only math.

    Depends on nothing but ``(shard, n_shards, n_servers)`` — the same
    deterministic spirit as shard boundaries — and assigns each server
    a contiguous run of shards, so each server owns one contiguous row
    range of the table.
    """
    if not 0 <= shard < n_shards:
        raise MapError(f"shard {shard} outside [0, {n_shards})")
    return shard * n_servers // n_shards


class ClusterCoordinator:
    """Scatter/gather access to a set of shard servers."""

    def __init__(self, urls: "list[str] | tuple[str, ...]", *,
                 timeout: float = 30.0):
        if not urls:
            raise MapError("a cluster needs at least one shard server URL")
        self._transports = tuple(
            HttpTransport(url, timeout=timeout) for url in urls
        )
        self._urls = tuple(t.base_url for t in self._transports)
        self._timeout = timeout
        self._lock = threading.Lock()
        self._builds = 0  # guarded-by: _lock
        self._shard_retries = 0  # guarded-by: _lock
        self._append_route_failures = 0  # guarded-by: _lock

    @property
    def urls(self) -> tuple[str, ...]:
        """Shard-server base URLs, in server order."""
        return self._urls

    @property
    def n_servers(self) -> int:
        """Attached shard servers."""
        return len(self._urls)

    def resolved_servers(self, parallelism: Parallelism) -> int:
        """Servers a ``cluster[:n]`` spec uses: ``auto`` = all attached."""
        if parallelism.workers == "auto":
            return self.n_servers
        return max(1, min(int(parallelism.workers), self.n_servers))

    # ------------------------------------------------------------------ #
    # Health / metrics
    # ------------------------------------------------------------------ #

    def health(self) -> list[dict]:
        """Per-server ``/health`` payloads, in server order."""
        return [t.request("GET", "/health") for t in self._transports]

    def metrics(self) -> dict:
        """Coordinator counters plus per-server ``/metrics`` payloads."""
        with self._lock:
            out: dict = {
                "servers": self.n_servers,
                "builds": self._builds,
                "shard_retries": self._shard_retries,
                "append_route_failures": self._append_route_failures,
            }
        per_server = []
        for url, transport in zip(self._urls, self._transports):
            try:
                payload = transport.request("GET", "/metrics")
            except RemoteServiceError as exc:
                payload = {"error": str(exc)}
            per_server.append({"url": url, **payload})
        out["shard_servers"] = per_server
        return out

    def close(self) -> None:
        """Close the calling thread's server connections."""
        for transport in self._transports:
            transport.close()

    # ------------------------------------------------------------------ #
    # The scatter/gather build
    # ------------------------------------------------------------------ #

    def build_backend(
        self,
        table: Table,
        fidelity: Fidelity,
        parallelism: Parallelism,
        *,
        seed: int = 0,
        kernels: str = "auto",
        counters: CacheCounters | None = None,
        lock: threading.Lock | None = None,
    ) -> "ClusterSketchBackend":
        """Build sketch statistics for ``table`` over the cluster.

        The distributed twin of
        :func:`repro.engine.parallel.build_sharded_backend`: same shard
        layout, same scan core (on the servers), same in-order fold —
        different wall-clock.  ``kernels`` names the *local* kernel
        path (delta maintenance, fallback scans); servers resolve
        their own — kernel choice is bit-identical by contract, so it
        never travels on the wire.
        """
        if not fidelity.is_sketch:
            raise MapError(
                "cluster statistics need a sketch fidelity, got "
                f"{fidelity.spec()!r} (exact masks are row-backed and "
                "cannot be shard-merged)"
            )
        started = time.perf_counter()
        with self._lock:
            retries_before = self._shard_retries
        sharded = ShardedTable(table, parallelism.shards)
        n_servers = self.resolved_servers(parallelism)
        numeric, categorical = _sketch_attributes(table)
        sample_rows = fidelity.budget_rows < table.n_rows
        fingerprint = table_fingerprint(table)
        assignment = tuple(
            server_for_shard(index, sharded.n_shards, n_servers)
            for index in range(sharded.n_shards)
        )

        def scan_block(server: int) -> list[ShardStatistics]:
            out = []
            for index in range(sharded.n_shards):
                if assignment[index] != server:
                    continue
                low, high = sharded.bounds[index]
                request = ScanRequest(
                    table=table.name,
                    shard=index,
                    low=low,
                    high=high,
                    version=table.version,
                    fingerprint=fingerprint,
                    seed=seed,
                    budget_rows=fidelity.budget_rows,
                    sample_rows=sample_rows,
                    epsilon=fidelity.epsilon,
                )
                out.append(self._scan_shard(
                    server, table, sharded, numeric, categorical, request
                ))
            return out

        servers_used = sorted(set(assignment))
        if len(servers_used) == 1:
            blocks = [scan_block(servers_used[0])]
        else:
            with ThreadPoolExecutor(
                max_workers=len(servers_used),
                thread_name_prefix="repro-cluster-scan",
            ) as pool:
                blocks = list(pool.map(scan_block, servers_used))
        results = sorted(
            (stat for block in blocks for stat in block),
            key=lambda stat: stat.index,
        )

        sample, quantiles, frequencies = fold_shard_statistics(
            results,
            seed=seed,
            fingerprint=fingerprint,
            budget_rows=fidelity.budget_rows,
            sample_rows=sample_rows,
        )
        if not sample_rows:
            sample_table = table  # the budget covers everything
        else:
            sample_table = table.take(
                np.sort(sample),
                name=f"{table.name}_shardsketch{fidelity.budget_rows}",
            )
        with self._lock:
            self._builds += 1
            build_retries = self._shard_retries - retries_before
        scan_kernel_nanos: dict[str, int] = {}
        for stat in results:
            for kernel, nanos in stat.kernel_nanos.items():
                scan_kernel_nanos[kernel] = (
                    scan_kernel_nanos.get(kernel, 0) + int(nanos)
                )
        return ClusterSketchBackend(
            sharded,
            fidelity,
            parallelism,
            sample=sample_table,
            quantiles=quantiles,
            frequencies=frequencies,
            shard_seconds=tuple(stat.seconds for stat in results),
            build_seconds=time.perf_counter() - started,
            kernels=kernels,
            kernel_nanos=scan_kernel_nanos,
            counters=counters,
            lock=lock,
            coordinator=self,
            shard_servers=assignment,
            n_servers=n_servers,
            build_retries=build_retries,
        )

    # ------------------------------------------------------------------ #
    # Per-shard calls (push-on-409, retry-once, typed 503)
    # ------------------------------------------------------------------ #

    def _scan_shard(
        self,
        server: int,
        table: Table,
        sharded: ShardedTable,
        numeric: tuple,
        categorical: tuple,
        request: ScanRequest,
    ) -> ShardStatistics:
        transport = self._transports[server]
        attempts = 0
        while True:
            try:
                try:
                    payload = transport.request(
                        "POST", "/scan", request.to_dict()
                    )
                except StaleShardError:
                    # The server does not own this shard state (fresh
                    # server, or a version behind after a missed
                    # append): push the columns and rescan.
                    self._push_shard(
                        server, table, sharded, request.shard,
                        numeric, categorical,
                    )
                    payload = transport.request(
                        "POST", "/scan", request.to_dict()
                    )
                return ShardStatistics.from_dict(payload["statistics"])
            except RemoteServiceError as exc:
                attempts += 1
                if attempts > 1:
                    low, high = sharded.bounds[request.shard]
                    raise ShardUnavailableError(
                        f"shard {request.shard} of table "
                        f"{table.name!r} (rows [{low}, {high})) is "
                        f"unavailable: server {self._urls[server]} "
                        f"failed twice ({exc})"
                    ) from exc
                with self._lock:
                    self._shard_retries += 1

    def _push_shard(
        self,
        server: int,
        table: Table,
        sharded: ShardedTable,
        shard: int,
        numeric: tuple,
        categorical: tuple,
    ) -> None:
        low, high = sharded.bounds[shard]
        numeric_values, categorical_values = shard_column_values(
            table, low, high, numeric, categorical
        )
        request = OwnShardRequest(
            table=table.name,
            shard=shard,
            low=low,
            high=high,
            version=table.version,
            numeric=numeric_to_wire(numeric_values),
            categorical=[
                (name, capacity, labels)
                for name, capacity, labels in categorical_values
            ],
        )
        self._transports[server].request("POST", "/own", request.to_dict())

    # ------------------------------------------------------------------ #
    # Catalog prewarm
    # ------------------------------------------------------------------ #

    def prewarm(
        self,
        catalog,
        parallelism: Parallelism,
        *,
        persisted_only: bool = True,
    ) -> dict[str, int]:
        """Push a catalog's tables to their owning servers up front.

        The lazy push-on-409 protocol means a restarted coordinator's
        first build of each table pays one full data push inside the
        query's critical path.  ``prewarm`` moves that cost to attach
        time: every (by default persisted) table in the
        :class:`~repro.service.catalog.Catalog` is resolved — a
        store-backed catalog replays it from disk — sharded with the
        given ``parallelism`` layout, and pushed shard by shard to the
        server the layout assigns.  Returns shards pushed per table.

        The push is idempotent server-side (``/own`` replaces shard
        state at the table's version), so prewarming twice, or racing
        a query's own push, is safe.
        """
        pushed: dict[str, int] = {}
        n_servers = self.resolved_servers(parallelism)
        for name in catalog.names():
            if persisted_only and not catalog.is_persisted(name):
                continue
            table = catalog.resolve(name)
            sharded = ShardedTable(table, parallelism.shards)
            numeric, categorical = _sketch_attributes(table)
            for index in range(sharded.n_shards):
                server = server_for_shard(
                    index, sharded.n_shards, n_servers
                )
                self._push_shard(
                    server, table, sharded, index, numeric, categorical
                )
            pushed[name] = sharded.n_shards
        return pushed

    # ------------------------------------------------------------------ #
    # Streaming (append routing)
    # ------------------------------------------------------------------ #

    def route_append(
        self,
        new_table: Table,
        old_sharded: ShardedTable,
        shard_servers: tuple[int, ...],
    ) -> bool:
        """Route appended rows to the server owning the table's tail.

        Appended rows live past every shard boundary, so they extend
        the owning (last) shard — the same routing
        :meth:`ShardedTable.advanced` applies locally.  Connection
        failures are tolerated (counted, not raised): server-side
        shard state is lazily versioned, so the next scan of a stale
        shard answers 409 and gets a fresh push — the cluster heals
        without coupling local streaming to server liveness.  Returns
        True when the delta was applied (or already present) remotely.
        """
        old_table = old_sharded.table
        owning = old_sharded.owning_shard(old_table.n_rows)
        server = shard_servers[owning]
        low = old_sharded.bounds[owning][0]
        numeric, categorical = _sketch_attributes(new_table)
        numeric_values, categorical_values = shard_column_values(
            new_table, old_table.n_rows, new_table.n_rows,
            numeric, categorical,
        )
        request = ShardAppendRequest(
            table=new_table.name,
            shard=owning,
            from_version=old_table.version,
            to_version=new_table.version,
            high=new_table.n_rows,
            numeric=numeric_to_wire(numeric_values),
            categorical={
                name: labels for name, _, labels in categorical_values
            },
            capacities={name: capacity for name, capacity in categorical},
        )
        transport = self._transports[server]
        try:
            try:
                transport.request("POST", "/append", request.to_dict())
                return True
            except StaleShardError:
                # The server missed an earlier delta (or restarted):
                # re-push the whole shard at the new version.
                advanced = old_sharded.advanced(new_table)
                new_high = advanced.bounds[owning][1]
                numeric_full, categorical_full = shard_column_values(
                    new_table, low, new_high, numeric, categorical
                )
                push = OwnShardRequest(
                    table=new_table.name,
                    shard=owning,
                    low=low,
                    high=new_high,
                    version=new_table.version,
                    numeric=numeric_to_wire(numeric_full),
                    categorical=[
                        (name, capacity, labels)
                        for name, capacity, labels in categorical_full
                    ],
                )
                transport.request("POST", "/own", push.to_dict())
                return True
        except RemoteServiceError:
            with self._lock:
                self._append_route_failures += 1
            return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ClusterCoordinator servers={len(self._urls)}>"


class ClusterSketchBackend(ShardedSketchBackend):
    """A :class:`ShardedSketchBackend` whose scans ran on a cluster.

    Statistically indistinguishable from its parent — same shard
    layout, same fold — with two additions:

    * streaming appends are **routed**: after the local incremental
      maintenance, the delta rows are pushed to the shard server
      owning the table's tail, so a fresh cluster build at the new
      version scans current state;
    * :meth:`snapshot`'s ``parallel`` block carries cluster provenance
      (server count, per-shard server assignment, retries), which
      :func:`repro.engine.parallel.merge_shard_info` folds through to
      the service ``/metrics``.
    """

    def __init__(
        self,
        sharded: ShardedTable,
        fidelity: Fidelity,
        parallelism: Parallelism,
        *,
        coordinator: ClusterCoordinator,
        shard_servers: tuple[int, ...],
        n_servers: int,
        build_retries: int = 0,
        **kwargs: object,
    ):
        super().__init__(sharded, fidelity, parallelism, **kwargs)
        self._coordinator = coordinator
        self._shard_servers = tuple(shard_servers)
        self._n_servers = int(n_servers)
        self._build_retries = int(build_retries)

    @property
    def coordinator(self) -> ClusterCoordinator:
        """The coordinator that built (and maintains) this backend."""
        return self._coordinator

    @property
    def shard_servers(self) -> tuple[int, ...]:
        """Server index per shard, in shard order."""
        return self._shard_servers

    def advance(
        self,
        new_table: Table,
        rng: "np.random.Generator | int | None" = None,
    ) -> None:
        """Maintain locally, then route the delta to the owning server."""
        old_sharded = self.sharded_table
        super().advance(new_table, rng=rng)
        self._coordinator.route_append(
            new_table, old_sharded, self._shard_servers
        )

    def snapshot(self) -> dict:
        """Parent provenance plus the cluster's."""
        out = super().snapshot()
        out["parallel"].update({
            "servers": self._n_servers,
            "shard_servers": list(self._shard_servers),
            "cluster_builds": 1,
            "shard_retries": self._build_retries,
        })
        return out
