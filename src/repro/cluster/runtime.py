"""The process-wide active cluster: where ``cluster`` configs resolve.

A ``Parallelism`` with ``mode="cluster"`` is pure configuration — it
names *that* the scan should fan out, not *where*.  The where lives
here: one module-global :class:`~repro.cluster.coordinator.ClusterCoordinator`
the facade, REPL, and :class:`~repro.engine.context.ExecutionContext`
dispatch consult (the same module-global precedent as the staged
``_WORK`` recipe of :mod:`repro.engine.parallel`).

With no cluster attached, a ``cluster`` config **degrades to the local
scan/merge split** — same shard layout, same answers, single machine —
so configs can travel between clustered and unclustered deployments
without changing results, and ``ParallelExecutor`` is literally the
degenerate local case of the cluster path.
"""

from __future__ import annotations

import threading

from repro.cluster.coordinator import ClusterCoordinator

_ACTIVE: ClusterCoordinator | None = None
_LOCK = threading.Lock()


def attach_cluster(
    cluster: "ClusterCoordinator | list[str] | tuple[str, ...]",
    *,
    timeout: float = 30.0,
) -> ClusterCoordinator:
    """Make a coordinator the process's active cluster.

    Accepts a built coordinator or a list of shard-server URLs (a
    coordinator is constructed).  Returns the active coordinator.
    """
    global _ACTIVE
    if not isinstance(cluster, ClusterCoordinator):
        cluster = ClusterCoordinator(cluster, timeout=timeout)
    with _LOCK:
        _ACTIVE = cluster
    return cluster


def active_cluster() -> ClusterCoordinator | None:
    """The attached coordinator, or ``None`` (= run cluster configs locally)."""
    with _LOCK:
        return _ACTIVE


def detach_cluster() -> ClusterCoordinator | None:
    """Detach (and return) the active coordinator, if any."""
    global _ACTIVE
    with _LOCK:
        previous = _ACTIVE
        _ACTIVE = None
    return previous
