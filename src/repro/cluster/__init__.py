"""Distributed scatter/gather serving: shard servers + a coordinator.

The multi-machine tier of the scan/merge split
(:mod:`repro.engine.parallel`).  N :class:`ShardServer` processes each
own one contiguous row range of a table; a :class:`ClusterCoordinator`
fans scans out over HTTP, collects per-shard row samples and full-scan
GK/Misra–Gries summaries, and folds them in shard order with the same
merge rules the local path uses — so cluster answers are bit-identical
to serial and local-parallel answers over the same shard layout.

Quickstart (one machine, two server processes)::

    from repro.cluster import spawn_local_cluster, attach_cluster

    servers = spawn_local_cluster(2)
    attach_cluster([s.url for s in servers])
    import repro
    maps = (repro.explorer(table).approximate().cluster(2).explore())

See docs/TUTORIAL.md chapter 12.
"""

from repro.cluster.coordinator import (
    ClusterCoordinator,
    ClusterSketchBackend,
    server_for_shard,
)
from repro.cluster.launch import (
    ShardProcess,
    spawn_local_cluster,
    spawn_shard_server,
)
from repro.cluster.protocol import (
    CLUSTER_PROTOCOL_VERSION,
    OwnShardRequest,
    ScanRequest,
    ShardAppendRequest,
)
from repro.cluster.runtime import (
    active_cluster,
    attach_cluster,
    detach_cluster,
)
from repro.cluster.shard import ShardServer, ShardStore, serve_shard

__all__ = [
    "CLUSTER_PROTOCOL_VERSION",
    "ClusterCoordinator",
    "ClusterSketchBackend",
    "OwnShardRequest",
    "ScanRequest",
    "ShardAppendRequest",
    "ShardProcess",
    "ShardServer",
    "ShardStore",
    "active_cluster",
    "attach_cluster",
    "detach_cluster",
    "serve_shard",
    "server_for_shard",
    "spawn_local_cluster",
    "spawn_shard_server",
]
