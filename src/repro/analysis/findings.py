"""Structured findings: what a rule reports and how it travels.

A :class:`Finding` is the analyzer's unit of output — one violated
invariant at one ``file:line`` span, attributed to the rule that
detected it and the enclosing symbol it was found in.  Findings are
frozen dataclasses with a symmetric ``to_dict``/``from_dict`` pair
(the analyzer eats its own dog food: rule R2 enforces exactly this
shape on every serde type in the repo), so the JSON reporter, the
baseline file, and any CI tooling all share one schema.

The *identity* of a finding for suppression purposes is deliberately
line-free (:meth:`Finding.fingerprint`): baselines must survive
unrelated edits above the finding, so they match on
``(rule, path, symbol, message)`` rather than on line numbers.
"""

from __future__ import annotations

import dataclasses
import enum


class Severity(enum.Enum):
    """How a finding affects the analyzer's exit status.

    ``ERROR`` findings fail the run (exit 1) unless baselined or
    suppressed; ``WARNING`` findings are reported but never fail the
    build — the adoption ramp for a new rule mirrors the coverage
    ratchet: land as warning, burn the backlog down, promote to error.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclasses.dataclass(frozen=True)
class Finding:
    """One violated invariant at one source span."""

    #: Registry id of the rule that produced this finding (``"R1"``…).
    rule: str
    #: Severity the rule assigned (usually the rule's own default).
    severity: Severity
    #: Path of the offending file, as given to the analyzer
    #: (normalized to ``/`` separators for portable baselines).
    path: str
    #: 1-based line of the offending node.
    line: int
    #: 1-based column of the offending node (0 when unknown).
    column: int
    #: Human-readable statement of the violated invariant.
    message: str
    #: Dotted enclosing symbol (``Class.method``, ``function``, or
    #: ``"<module>"``) — the stable anchor baselines match on.
    symbol: str = "<module>"

    def fingerprint(self) -> tuple[str, str, str, str]:
        """Line-free identity used by baseline matching."""
        return (self.rule, self.path, self.symbol, self.message)

    def location(self) -> str:
        """``path:line:column`` as editors expect it."""
        return f"{self.path}:{self.line}:{self.column}"

    def to_dict(self) -> dict:
        """Plain-JSON form; the inverse of :meth:`from_dict`."""
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "symbol": self.symbol,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        """Rebuild a finding from :meth:`to_dict` output."""
        return cls(
            rule=str(data["rule"]),
            severity=Severity(data["severity"]),
            path=str(data["path"]),
            line=int(data["line"]),
            column=int(data["column"]),
            message=str(data["message"]),
            symbol=str(data.get("symbol", "<module>")),
        )
