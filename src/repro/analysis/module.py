"""Parsed-module substrate shared by every rule.

Rules consume a :class:`ModuleInfo`: the raw source, the parsed
``ast`` tree, and a line → comment map extracted with :mod:`tokenize`.
The comment map is what powers the analyzer's annotation conventions —
``# guarded-by: _lock`` field declarations, ``# holds-lock: _lock``
caller-contract markers, ``# cache-key-of: Class`` key-builder
markers, and ``# atlas-lint: ignore[R?]`` inline suppressions — none
of which survive into the AST on their own.
"""

from __future__ import annotations

import ast
import dataclasses
import io
import re
import tokenize
from pathlib import Path

#: ``# atlas-lint: ignore[R1]`` / ``# atlas-lint: ignore[R1, R3] why``
_IGNORE_RE = re.compile(r"atlas-lint:\s*ignore\[([A-Za-z0-9_,\s]+)\]")


def _comment_map(source: str) -> dict[int, str]:
    """1-based line → comment text (without the leading ``#``).

    Tokenized rather than regexed so a ``#`` inside a string literal
    is never mistaken for a comment.  A file whose tail is not
    tokenizable returns the comments seen so far — the parse error is
    reported separately by the runner.
    """
    comments: dict[int, str] = {}
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string.lstrip("#").strip()
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return comments


@dataclasses.dataclass
class ModuleInfo:
    """One analyzed file: source, AST, and comment annotations."""

    #: Path as reported in findings (posix separators, analyzer-relative).
    rel_path: str
    #: Absolute filesystem path the source was read from.
    path: Path
    source: str
    tree: ast.Module
    comments: dict[int, str]

    @classmethod
    def load(cls, path: Path, rel_path: str) -> "ModuleInfo":
        """Read and parse one file (raises ``SyntaxError`` on bad source)."""
        source = path.read_text(encoding="utf-8")
        return cls.from_source(source, rel_path=rel_path, path=path)

    @classmethod
    def from_source(
        cls, source: str, rel_path: str = "<string>",
        path: Path | None = None,
    ) -> "ModuleInfo":
        """Parse in-memory source (what the fixture tests use)."""
        tree = ast.parse(source, filename=rel_path)
        return cls(
            rel_path=rel_path,
            path=path if path is not None else Path(rel_path),
            source=source,
            tree=tree,
            comments=_comment_map(source),
        )

    # ------------------------------------------------------------------ #
    # Annotation helpers
    # ------------------------------------------------------------------ #

    def comment_on(self, line: int) -> str:
        """The comment on a 1-based line ('' when there is none)."""
        return self.comments.get(line, "")

    def def_comment(self, node: ast.AST) -> str:
        """The marker comment attached to a ``def``/``class`` statement.

        Looked up on the statement's own first line — decorators don't
        shift it because ``lineno`` of a decorated function points at
        the ``def`` keyword on Python 3.8+.
        """
        return self.comment_on(getattr(node, "lineno", 0))

    def suppressed_rules(self, line: int) -> frozenset[str]:
        """Rule ids an ``atlas-lint: ignore[...]`` comment names.

        Checked on the finding's own line; an empty set means the
        finding stands.
        """
        match = _IGNORE_RE.search(self.comment_on(line))
        if not match:
            return frozenset()
        return frozenset(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )


def enclosing_symbol(stack: list[str]) -> str:
    """Dotted symbol name for a class/function nesting stack."""
    return ".".join(stack) if stack else "<module>"
