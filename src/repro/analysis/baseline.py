"""Committed baselines: adopt the analyzer green, ratchet from there.

A baseline file records findings the repo has *decided to live with* —
each with a mandatory human reason — so turning a new rule on does not
require fixing the whole backlog in the same commit.  The contract
mirrors the coverage ratchet: the committed file only ever shrinks;
new findings are never baselined silently (``--write-baseline`` is an
explicit, reviewed act).

Entries match findings on their line-free fingerprint
``(rule, path, symbol, message)`` (see
:meth:`repro.analysis.findings.Finding.fingerprint`) so edits above a
baselined finding do not invalidate the suppression.  ``message`` may
be omitted from an entry to suppress every finding of one rule on one
symbol — useful when a message embeds a field list that legitimately
evolves.

Stale entries (matching nothing in the current run) are reported as
warnings: a fixed finding should take its baseline entry with it.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.analysis.findings import Finding
from repro.errors import ConfigError

#: Default committed baseline filename, looked up in the working
#: directory by the CLI when ``--baseline`` is not given.
DEFAULT_BASELINE = "atlas-lint.baseline.json"

_FORMAT_VERSION = 1


@dataclasses.dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding, with the reason it is accepted."""

    rule: str
    path: str
    symbol: str
    reason: str
    #: Optional exact-message match; ``None`` matches any message of
    #: ``rule`` on ``(path, symbol)``.
    message: str | None = None

    def matches(self, finding: Finding) -> bool:
        """True when this entry suppresses ``finding``."""
        return (
            self.rule == finding.rule
            and self.path == finding.path
            and self.symbol == finding.symbol
            and (self.message is None or self.message == finding.message)
        )

    def to_dict(self) -> dict:
        """Plain-JSON form; the inverse of :meth:`from_dict`."""
        out: dict = {
            "rule": self.rule,
            "path": self.path,
            "symbol": self.symbol,
            "reason": self.reason,
        }
        if self.message is not None:
            out["message"] = self.message
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "BaselineEntry":
        """Rebuild an entry from :meth:`to_dict` output."""
        try:
            return cls(
                rule=str(data["rule"]),
                path=str(data["path"]),
                symbol=str(data["symbol"]),
                reason=str(data["reason"]),
                message=(
                    str(data["message"]) if "message" in data else None
                ),
            )
        except KeyError as exc:
            raise ConfigError(
                f"baseline entry missing field {exc}: {data!r}"
            ) from None


class Baseline:
    """The committed set of accepted findings."""

    def __init__(self, entries: tuple[BaselineEntry, ...] = ()):
        self._entries = entries
        self._matched: set[BaselineEntry] = set()

    @property
    def entries(self) -> tuple[BaselineEntry, ...]:
        """Every accepted finding, file order."""
        return self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file (a missing file is an empty baseline)."""
        if not path.exists():
            return cls()
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ConfigError(f"malformed baseline {path}: {exc}") from exc
        if not isinstance(data, dict) or "entries" not in data:
            raise ConfigError(
                f"baseline {path} must be an object with an 'entries' list"
            )
        return cls(
            tuple(BaselineEntry.from_dict(e) for e in data["entries"])
        )

    @classmethod
    def from_findings(
        cls, findings: list[Finding], reason: str
    ) -> "Baseline":
        """A baseline accepting every given finding (``--write-baseline``)."""
        seen: dict[tuple, BaselineEntry] = {}
        for finding in findings:
            key = finding.fingerprint()
            seen.setdefault(
                key,
                BaselineEntry(
                    rule=finding.rule,
                    path=finding.path,
                    symbol=finding.symbol,
                    message=finding.message,
                    reason=reason,
                ),
            )
        return cls(tuple(seen.values()))

    def save(self, path: Path) -> None:
        """Write the committed JSON form (stable key order, trailing NL)."""
        payload = {
            "version": _FORMAT_VERSION,
            "entries": [entry.to_dict() for entry in self._entries],
        }
        path.write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )

    def accepts(self, finding: Finding) -> bool:
        """True when a baseline entry suppresses ``finding``.

        Matches are remembered so :meth:`stale_entries` can report the
        leftovers after a run.
        """
        for entry in self._entries:
            if entry.matches(finding):
                self._matched.add(entry)
                return True
        return False

    def stale_entries(self) -> tuple[BaselineEntry, ...]:
        """Entries that matched nothing in the findings seen so far."""
        return tuple(
            entry for entry in self._entries if entry not in self._matched
        )
