"""The analyzer driver: collect files, run rules, apply suppressions.

One :class:`Analyzer` run is two passes over the analyzed file set —
per-module rule hooks while parsing, then the cross-module hooks once
every module is in hand (rule R4 needs dataclass definitions and key
builders that live in different files).  Findings then pass through
two suppression layers:

* inline ``# atlas-lint: ignore[R?] reason`` comments on the
  offending line, and
* the committed baseline file (:mod:`repro.analysis.baseline`).

What survives is the run's verdict: any remaining error-severity
finding makes :meth:`Report.ok` false (CLI exit 1).

File set: the analyzer owns the same universe the repo's style gate
(ruff) checks — ``__pycache__`` and ``benchmarks/results`` are always
excluded, and ``examples/`` is opt-in (pass the directory explicitly),
so the two tools never disagree about which files are in scope.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.findings import Finding, Severity
from repro.analysis.module import ModuleInfo
from repro.analysis.registry import Rule, default_rules
from repro.errors import ConfigError

#: Directory names never analyzed, wherever they appear.
EXCLUDED_DIRS = frozenset({"__pycache__", ".git", "results"})
#: Directories skipped during recursive collection unless named
#: explicitly on the command line (opt-in, matching the lint job which
#: lists ``examples`` by hand).
OPT_IN_DIRS = frozenset({"examples"})


def collect_files(paths: Sequence[str | Path]) -> list[Path]:
    """The ``.py`` files a run analyzes, sorted and de-duplicated.

    Files are taken verbatim; directories are walked recursively with
    the exclusion policy above.  Unknown paths raise — a typoed path
    silently analyzing nothing would report a false green.
    """
    seen: dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise ConfigError(f"no such file or directory: {path}")
        if path.is_file():
            seen.setdefault(path, None)
            continue
        for candidate in sorted(path.rglob("*.py")):
            parts = set(candidate.relative_to(path).parts[:-1])
            if parts & EXCLUDED_DIRS:
                continue
            if parts & OPT_IN_DIRS and path.name not in OPT_IN_DIRS:
                continue
            seen.setdefault(candidate, None)
    return list(seen)


def _rel_path(path: Path) -> str:
    """Finding path: cwd-relative when possible, posix separators."""
    try:
        rel = path.resolve().relative_to(Path.cwd().resolve())
    except ValueError:
        rel = path
    return rel.as_posix()


@dataclasses.dataclass
class Report:
    """Everything one analyzer run produced."""

    #: Findings that survived both suppression layers, location order.
    findings: list[Finding]
    #: Findings an inline ``atlas-lint: ignore`` comment suppressed.
    suppressed: list[Finding]
    #: Findings the committed baseline accepted.
    baselined: list[Finding]
    #: Baseline entries that matched nothing (candidates for removal).
    stale_baseline: tuple[BaselineEntry, ...]
    #: Files analyzed.
    n_files: int
    #: Rule ids that ran.
    rule_ids: tuple[str, ...]

    @property
    def ok(self) -> bool:
        """True when no error-severity finding survived."""
        return not any(
            f.severity is Severity.ERROR for f in self.findings
        )


class Analyzer:
    """Run a rule set over a file set and reconcile the baseline."""

    def __init__(
        self,
        rules: Sequence[Rule] | None = None,
        baseline: Baseline | None = None,
    ):
        self._rules = tuple(rules) if rules is not None else default_rules()
        self._baseline = baseline if baseline is not None else Baseline()

    @property
    def rules(self) -> tuple[Rule, ...]:
        """The rule instances this analyzer runs."""
        return self._rules

    def run(self, paths: Sequence[str | Path]) -> Report:
        """Analyze ``paths`` (files or directories) end to end."""
        files = collect_files(paths)
        modules: list[ModuleInfo] = []
        raw: list[Finding] = []
        for path in files:
            rel = _rel_path(path)
            try:
                module = ModuleInfo.load(path, rel)
            except SyntaxError as exc:
                raw.append(
                    Finding(
                        rule="parse",
                        severity=Severity.ERROR,
                        path=rel,
                        line=exc.lineno or 1,
                        column=(exc.offset or 1),
                        message=f"file does not parse: {exc.msg}",
                    )
                )
                continue
            modules.append(module)
            for rule in self._rules:
                raw.extend(rule.check_module(module))
        for rule in self._rules:
            raw.extend(rule.check_project(modules))
        return self._reconcile(raw, modules, len(files))

    def run_modules(self, modules: Iterable[ModuleInfo]) -> Report:
        """Analyze pre-parsed modules (what the fixture tests use)."""
        module_list = list(modules)
        raw: list[Finding] = []
        for module in module_list:
            for rule in self._rules:
                raw.extend(rule.check_module(module))
        for rule in self._rules:
            raw.extend(rule.check_project(module_list))
        return self._reconcile(raw, module_list, len(module_list))

    def _reconcile(
        self,
        raw: list[Finding],
        modules: Sequence[ModuleInfo],
        n_files: int,
    ) -> Report:
        by_path = {module.rel_path: module for module in modules}
        active: list[Finding] = []
        suppressed: list[Finding] = []
        baselined: list[Finding] = []
        for finding in sorted(
            raw, key=lambda f: (f.path, f.line, f.column, f.rule)
        ):
            module = by_path.get(finding.path)
            if (
                module is not None
                and finding.rule in module.suppressed_rules(finding.line)
            ):
                suppressed.append(finding)
            elif self._baseline.accepts(finding):
                baselined.append(finding)
            else:
                active.append(finding)
        return Report(
            findings=active,
            suppressed=suppressed,
            baselined=baselined,
            stale_baseline=self._baseline.stale_entries(),
            n_files=n_files,
            rule_ids=tuple(rule.id for rule in self._rules),
        )
