"""Command-line entry point: ``python -m repro.analysis`` (atlas-lint).

Usage::

    python -m repro.analysis src/repro                 # text report
    python -m repro.analysis src/repro --format json   # machine report
    python -m repro.analysis src/repro --rules R1,R3   # a rule subset
    python -m repro.analysis src/repro --write-baseline --reason "..."

Exit status: 0 when no non-baselined error-severity finding remains,
1 when findings stand, 2 on usage or configuration errors — the
contract the CI ``analyze`` job and the self-check test both rely on.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.baseline import DEFAULT_BASELINE, Baseline
from repro.analysis.registry import default_rules
from repro.analysis.reporters import render_json, render_text
from repro.analysis.runner import Analyzer
from repro.errors import AtlasError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "atlas-lint: AST-based checker for the repo's determinism, "
            "serde, lock-discipline, and cache-key invariants"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=(
            "baseline file of accepted findings "
            f"(default: ./{DEFAULT_BASELINE} when present)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=(
            "accept every current finding into the baseline file and "
            "exit 0 (an explicit, reviewed act — pair with --reason)"
        ),
    )
    parser.add_argument(
        "--reason",
        default="accepted at baseline creation",
        help="reason string recorded for --write-baseline entries",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also list suppressed and baselined findings (text format)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Run the analyzer; returns the process exit status."""
    args = _build_parser().parse_args(argv)
    try:
        if args.list_rules:
            for rule in default_rules():
                print(f"{rule.id}  {rule.name}: {rule.description}")
            return 0
        only = (
            [r.strip() for r in args.rules.split(",") if r.strip()]
            if args.rules
            else None
        )
        rules = default_rules(only)
        baseline_path = Path(
            args.baseline if args.baseline else DEFAULT_BASELINE
        )
        baseline = Baseline.load(baseline_path)
        report = Analyzer(rules=rules, baseline=baseline).run(args.paths)
        if args.write_baseline:
            merged = list(report.findings) + list(report.baselined)
            Baseline.from_findings(merged, args.reason).save(baseline_path)
            print(
                f"atlas-lint: wrote {len(merged)} accepted finding(s) "
                f"to {baseline_path}"
            )
            return 0
        if args.format == "json":
            print(render_json(report))
        else:
            print(render_text(report, verbose=args.verbose))
        return 0 if report.ok else 1
    except AtlasError as exc:
        print(f"atlas-lint: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
