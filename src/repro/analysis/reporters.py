"""Report renderers: human text and machine JSON.

The JSON shape is a versioned schema built from
:meth:`Finding.to_dict` — the same dict the baseline and the tests
round-trip — so CI annotations, editor integrations, and the
self-check test all parse one format.
"""

from __future__ import annotations

import json

from repro.analysis.findings import Finding, Severity
from repro.analysis.runner import Report

#: Bumped when the JSON report shape changes incompatibly.
JSON_SCHEMA_VERSION = 1


def render_text(report: Report, verbose: bool = False) -> str:
    """The human-facing run summary (one ``path:line:col`` per finding)."""
    lines: list[str] = []
    for finding in report.findings:
        lines.append(
            f"{finding.location()}: {finding.severity.value} "
            f"[{finding.rule}] {finding.message} (in {finding.symbol})"
        )
    if verbose:
        for finding in report.suppressed:
            lines.append(
                f"{finding.location()}: suppressed [{finding.rule}] "
                f"{finding.message}"
            )
        for finding in report.baselined:
            lines.append(
                f"{finding.location()}: baselined [{finding.rule}] "
                f"{finding.message}"
            )
    for entry in report.stale_baseline:
        lines.append(
            f"{entry.path}: warning [baseline] stale entry for "
            f"{entry.rule} on {entry.symbol!r} matches nothing; remove it"
        )
    errors = sum(
        1 for f in report.findings if f.severity is Severity.ERROR
    )
    warnings = len(report.findings) - errors
    lines.append(
        f"atlas-lint: {report.n_files} files, "
        f"rules {', '.join(report.rule_ids)}: "
        f"{errors} error(s), {warnings} warning(s), "
        f"{len(report.baselined)} baselined, "
        f"{len(report.suppressed)} suppressed"
    )
    return "\n".join(lines)


def report_to_dict(report: Report) -> dict:
    """The versioned JSON-ready form of a run."""
    return {
        "schema_version": JSON_SCHEMA_VERSION,
        "ok": report.ok,
        "files": report.n_files,
        "rules": list(report.rule_ids),
        "findings": [f.to_dict() for f in report.findings],
        "suppressed": [f.to_dict() for f in report.suppressed],
        "baselined": [f.to_dict() for f in report.baselined],
        "stale_baseline": [e.to_dict() for e in report.stale_baseline],
        "summary": {
            "errors": sum(
                1
                for f in report.findings
                if f.severity is Severity.ERROR
            ),
            "warnings": sum(
                1
                for f in report.findings
                if f.severity is Severity.WARNING
            ),
            "baselined": len(report.baselined),
            "suppressed": len(report.suppressed),
        },
    }


def render_json(report: Report) -> str:
    """Serialized :func:`report_to_dict` (stable two-space indent)."""
    return json.dumps(report_to_dict(report), indent=2)


def findings_from_report_dict(data: dict) -> list[Finding]:
    """Parse the ``findings`` of a JSON report back into objects.

    The round-trip half the reporter schema test pins: a consumer can
    always rebuild the typed findings a report serialized.
    """
    return [Finding.from_dict(item) for item in data.get("findings", [])]
