"""atlas-lint: AST-based static enforcement of the repo's invariants.

PRs 1–5 built the system's correctness story on three hand-maintained
contracts: all randomness derives from ``child_rng``/``tag_rng``
(bit-identical answers everywhere), every wire type keeps a symmetric
``to_dict``/``from_dict`` pair, and shared mutable state only moves
under its declared lock.  Tests catch regressions after the fact; this
package catches them at parse time, before a regression ships.

Run it as a module::

    python -m repro.analysis src/repro
    python -m repro.analysis src/repro --format json

Four built-in rules (see :mod:`repro.analysis.rules`):

* **R1 determinism** — no ambient randomness or wall-clock inside
  ``repro.engine`` / ``repro.sketch`` / ``repro.core``.
* **R2 serde symmetry** — ``to_dict`` ⇔ ``from_dict`` pairing, plus
  dataclass-field drift detection in literal ``to_dict`` bodies.
* **R3 lock discipline** — ``# guarded-by: <lock>`` fields may only
  be touched inside ``with self.<lock>:`` (the PR-5 lost-update class).
* **R4 cache-key completeness** — every field of a dataclass named by
  ``# cache-key-of:`` must reach its key builder (the PR-4 staleness
  class).

The framework mirrors the engine's extension idioms: a string-keyed
rule registry (:data:`~repro.analysis.registry.RULES`), structured
:class:`~repro.analysis.findings.Finding` objects with their own serde
pair, text/JSON reporters, inline suppressions, and a committed
baseline so adoption starts green and ratchets like coverage.
"""

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.findings import Finding, Severity
from repro.analysis.module import ModuleInfo
from repro.analysis.registry import (
    RULES,
    Rule,
    default_rules,
    register_rule,
)
from repro.analysis.reporters import (
    findings_from_report_dict,
    render_json,
    render_text,
    report_to_dict,
)
from repro.analysis.runner import Analyzer, Report, collect_files

__all__ = [
    "Analyzer",
    "Baseline",
    "BaselineEntry",
    "Finding",
    "ModuleInfo",
    "Report",
    "RULES",
    "Rule",
    "Severity",
    "collect_files",
    "default_rules",
    "findings_from_report_dict",
    "register_rule",
    "render_json",
    "render_text",
    "report_to_dict",
]
