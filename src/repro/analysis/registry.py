"""The rule registry: string-keyed, open, duplicate-safe.

Mirrors :class:`repro.engine.registry.StrategyRegistry` — the same
register-by-decorator idiom, the same "typos never silently shadow a
built-in" duplicate policy, the same lazy built-in loading — so adding
a rule is one decorated class away::

    @register_rule
    class NoSleepRule(Rule):
        id = "X1"
        name = "no-sleep"
        description = "time.sleep() in library code"

        def check_module(self, module):
            ...

Rules are *classes*; the registry stores them and
:func:`default_rules` instantiates one of each, so tests can also
construct a rule directly with non-default parameters (e.g. a
determinism scope covering fixture paths).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.analysis.findings import Finding, Severity
from repro.analysis.module import ModuleInfo
from repro.errors import ConfigError

_builtins_loaded = False


def _ensure_builtins() -> None:
    """Import the modules that register the built-in rules.

    Lookup may happen before :mod:`repro.analysis.rules` has been
    imported (e.g. ``python -m repro.analysis``); the defining modules
    self-register on import, exactly like the engine's strategy
    registries.
    """
    global _builtins_loaded
    if _builtins_loaded:
        return
    import repro.analysis.rules  # noqa: F401

    _builtins_loaded = True


class Rule:
    """Base class every analyzer rule extends.

    Sub-classes set the class attributes and override one (or both)
    hooks:

    * :meth:`check_module` — per-file findings; called once per
      analyzed module.
    * :meth:`check_project` — cross-module findings; called once after
      every module has been parsed (rule R4 compares dataclass field
      sets in one module against key builders in another).
    """

    #: Short stable id used in findings, suppressions, and baselines.
    id: str = "R0"
    #: Human-oriented slug (``"determinism"``).
    name: str = "unnamed"
    #: One-line statement of the enforced invariant.
    description: str = ""
    #: Default severity of this rule's findings.
    severity: Severity = Severity.ERROR

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        """Findings local to one module (default: none)."""
        return ()

    def check_project(
        self, modules: Sequence[ModuleInfo]
    ) -> Iterable[Finding]:
        """Findings needing the whole module set (default: none)."""
        return ()

    def finding(
        self,
        module: ModuleInfo,
        line: int,
        column: int,
        message: str,
        symbol: str = "<module>",
    ) -> Finding:
        """Build a finding attributed to this rule."""
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=module.rel_path,
            line=line,
            column=column,
            message=message,
            symbol=symbol,
        )


class RuleRegistry:
    """A named mapping from rule ids to :class:`Rule` classes."""

    def __init__(self) -> None:
        self._entries: dict[str, type[Rule]] = {}

    def register(
        self, rule_cls: type[Rule] | None = None, *, overwrite: bool = False
    ):
        """Register a rule class under its ``id``; usable as a decorator.

        Raises :class:`ConfigError` on duplicate ids unless
        ``overwrite`` is set.
        """

        def _store(entry: type[Rule]) -> type[Rule]:
            key = entry.id
            if not overwrite and key in self._entries:
                raise ConfigError(
                    f"analysis rule {key!r} is already registered; "
                    "pass overwrite=True to replace it"
                )
            self._entries[key] = entry
            return entry

        if rule_cls is None:
            return _store
        return _store(rule_cls)

    def get(self, rule_id: str) -> type[Rule]:
        """Look up a rule class; unknown ids raise :class:`ConfigError`."""
        _ensure_builtins()
        try:
            return self._entries[rule_id]
        except KeyError:
            known = ", ".join(sorted(self._entries)) or "(none)"
            raise ConfigError(
                f"unknown analysis rule {rule_id!r}; registered: {known}"
            ) from None

    def ids(self) -> tuple[str, ...]:
        """All registered rule ids, sorted."""
        _ensure_builtins()
        return tuple(sorted(self._entries))

    def __contains__(self, rule_id: object) -> bool:
        _ensure_builtins()
        return rule_id in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.ids())

    def __len__(self) -> int:
        _ensure_builtins()
        return len(self._entries)


#: The process-wide registry the built-in rules register into.
RULES = RuleRegistry()


def register_rule(rule_cls: type[Rule] | None = None, **kw):
    """Register an analyzer rule (see :data:`RULES`)."""
    return RULES.register(rule_cls, **kw)


def default_rules(only: Iterable[str] | None = None) -> tuple[Rule, ...]:
    """One instance of each registered rule, id order.

    ``only`` restricts the selection to the named ids (unknown names
    raise, so a typoed ``--rules`` flag fails loudly).
    """
    _ensure_builtins()
    selected = tuple(only) if only is not None else RULES.ids()
    return tuple(RULES.get(rule_id)() for rule_id in selected)
