"""Rule R3 — lock discipline: guarded state only moves under its lock.

PR 5 fixed a lost-update bug in exactly this class: aggregate counter
reads in ``ExecutionContext`` ran outside the shared lock and could
interleave with locked writers.  The fix was mechanical — wrap the
read — but nothing *kept* it fixed.  This rule does, at parse time.

Convention (annotations live next to the code they protect):

* Declaring a guarded field — a trailing comment on its ``__init__``
  assignment::

      self._pending = 0  # guarded-by: _admission

* Every later ``self._pending`` read or write must sit lexically
  inside a ``with self._admission:`` block (any ``with`` whose
  context expression is that attribute of ``self``).
* A helper that *requires* its caller to hold the lock declares the
  contract on its ``def`` line and is checked at its call sites'
  discipline instead::

      def _use(self, name):  # holds-lock: _lock

``__init__`` itself is exempt (the object is not yet shared during
construction).  The check is lexical, not aliasing-aware: it sees
``self.<field>`` on the declaring class only — cross-object accesses
(``other._field``) and re-bound locals are out of scope, which keeps
the rule free of false positives at the cost of known blind spots
(documented in DESIGN).
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.analysis.findings import Finding
from repro.analysis.module import ModuleInfo
from repro.analysis.registry import Rule, register_rule

_GUARDED_RE = re.compile(r"guarded-by:\s*(_?\w+)")
_HOLDS_RE = re.compile(r"holds-lock:\s*(_?\w+)")


def _self_attr(node: ast.AST) -> str | None:
    """``name`` when ``node`` is ``self.<name>``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _guarded_fields(
    module: ModuleInfo, cls: ast.ClassDef
) -> dict[str, str]:
    """Field name → lock name, from ``guarded-by`` declarations.

    Declarations are ``self.<field> = ...`` statements anywhere in the
    class body (conventionally ``__init__``) whose line carries the
    marker comment.
    """
    guarded: dict[str, str] = {}
    for node in ast.walk(cls):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        # A formatter may wrap the declaration; the marker counts on
        # any line the assignment statement spans.
        match = None
        for line in range(
            node.lineno, (node.end_lineno or node.lineno) + 1
        ):
            match = _GUARDED_RE.search(module.comment_on(line))
            if match:
                break
        if not match:
            continue
        for target in targets:
            field = _self_attr(target)
            if field is not None:
                guarded[field] = match.group(1)
    return guarded


@register_rule
class LockDisciplineRule(Rule):
    """R3: guarded-by fields are only touched under their lock."""

    id = "R3"
    name = "lock-discipline"
    description = (
        "fields declared '# guarded-by: <lock>' may only be accessed "
        "inside 'with self.<lock>:' (or a '# holds-lock' helper)"
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(
        self, module: ModuleInfo, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        guarded = _guarded_fields(module, cls)
        if not guarded:
            return
        for statement in cls.body:
            if not isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if statement.name == "__init__":
                continue  # construction precedes sharing
            held: set[str] = set()
            marker = _HOLDS_RE.search(module.def_comment(statement))
            if marker:
                held.add(marker.group(1))
            yield from self._check_body(
                module, cls.name, statement.name, statement.body,
                guarded, held,
            )

    def _check_body(
        self,
        module: ModuleInfo,
        class_name: str,
        method_name: str,
        body: list[ast.stmt],
        guarded: dict[str, str],
        held: set[str],
    ) -> Iterator[Finding]:
        for statement in body:
            yield from self._check_statement(
                module, class_name, method_name, statement, guarded, held
            )

    def _check_statement(
        self,
        module: ModuleInfo,
        class_name: str,
        method_name: str,
        statement: ast.stmt,
        guarded: dict[str, str],
        held: set[str],
    ) -> Iterator[Finding]:
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            acquired: set[str] = set()
            for item in statement.items:
                lock = _self_attr(item.context_expr)
                if lock is not None:
                    acquired.add(lock)
            # The context expressions themselves evaluate unlocked.
            for item in statement.items:
                yield from self._check_expression(
                    module, class_name, method_name, item.context_expr,
                    guarded, held,
                )
            inner = held | acquired
            yield from self._check_body(
                module, class_name, method_name, statement.body,
                guarded, inner,
            )
            return
        for child_body_field in ("body", "orelse", "finalbody"):
            child_body = getattr(statement, child_body_field, None)
            if isinstance(child_body, list) and child_body and isinstance(
                child_body[0], ast.stmt
            ):
                yield from self._check_body(
                    module, class_name, method_name, child_body,
                    guarded, held,
                )
        for handler in getattr(statement, "handlers", []) or []:
            yield from self._check_body(
                module, class_name, method_name, handler.body,
                guarded, held,
            )
        yield from self._check_expression(
            module, class_name, method_name, statement, guarded, held,
            skip_blocks=True,
        )

    def _check_expression(
        self,
        module: ModuleInfo,
        class_name: str,
        method_name: str,
        root: ast.AST,
        guarded: dict[str, str],
        held: set[str],
        skip_blocks: bool = False,
    ) -> Iterator[Finding]:
        for node in self._iter(root, skip_blocks):
            field = _self_attr(node)
            if field is None:
                continue
            lock = guarded.get(field)
            if lock is None or lock in held:
                continue
            yield self.finding(
                module,
                node.lineno,
                node.col_offset + 1,
                f"{class_name}.{field} is guarded by self.{lock} but "
                f"accessed outside 'with self.{lock}:'",
                symbol=f"{class_name}.{method_name}",
            )

    @staticmethod
    def _iter(root: ast.AST, skip_blocks: bool):
        """Attribute nodes of ``root``, not descending into statement
        blocks (those are walked by :meth:`_check_statement` with the
        correct lock set)."""
        stack = [root]
        block_fields = (
            {"body", "orelse", "finalbody", "handlers"}
            if skip_blocks
            else set()
        )
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Attribute):
                yield node
            for field_name, value in ast.iter_fields(node):
                if field_name in block_fields:
                    continue
                if isinstance(value, ast.AST):
                    stack.append(value)
                elif isinstance(value, list):
                    stack.extend(
                        v for v in value if isinstance(v, ast.AST)
                    )
