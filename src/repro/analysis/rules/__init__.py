"""Built-in atlas-lint rules; importing this package registers them.

Each rule module self-registers into :data:`repro.analysis.registry.RULES`
via the :func:`~repro.analysis.registry.register_rule` decorator —
the same import-time self-registration the engine's strategy modules
use (:mod:`repro.core.cut` → :data:`repro.engine.registry.NUMERIC_CUTS`).
"""

from repro.analysis.rules.cachekey import CacheKeyRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.locks import LockDisciplineRule
from repro.analysis.rules.serde import SerdeSymmetryRule

__all__ = [
    "CacheKeyRule",
    "DeterminismRule",
    "LockDisciplineRule",
    "SerdeSymmetryRule",
]
