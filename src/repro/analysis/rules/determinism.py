"""Rule R1 — determinism: all randomness derives from sanctioned sites.

The repo's reproducibility story (bit-identical answers across worker
counts, processes, and call orders) rests on one discipline: every
random draw flows from ``ExecutionContext.child_rng`` or
``repro.engine.parallel.tag_rng``, both of which derive a generator
from ``(config.seed, fingerprint)``.  A single stray ``time.time()``
tie-breaker or OS-entropy ``default_rng()`` anywhere in the engine,
sketch, or core-scoring layers silently breaks that contract — and no
test notices until two hosts disagree.

This rule bans, inside the determinism-scoped packages:

* wall-clock reads — ``time.time``/``time.time_ns``,
  ``datetime.now``/``utcnow``, ``date.today`` (monotonic and
  ``perf_counter`` clocks stay legal: they feed timings, which are
  provenance, not results);
* the stdlib ``random`` module in any form (its global state is
  process- and order-dependent);
* the legacy ``numpy.random.*`` API (global state again), and
  ``numpy.random.default_rng()`` *with no arguments* (OS entropy).
  ``default_rng(seed_or_rng)`` with an argument is the sanctioned
  coercion idiom and stays legal.

Functions named as *derivation sites* (``child_rng``, ``tag_rng``)
are exempt in full: they are where the sanctioned seeds are turned
into generators.

Some modules are held to a stricter, **RNG-free** contract
(``RNG_FREE_SCOPES``): the columnar kernels of
``repro/engine/kernels.py`` are deterministic functions of their input
buffers — every random draw of a scan belongs to the *caller* on its
sanctioned stream — so inside them even the seeded
``default_rng(seed)`` idiom and the derivation-site exemption are
banned.  A kernel that wants randomness must take a ``Generator``
argument, which keeps the draw attributable to a sanctioned site.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.findings import Finding
from repro.analysis.module import ModuleInfo, enclosing_symbol
from repro.analysis.registry import Rule, register_rule

#: Package path fragments rule R1 polices by default.  Matching is on
#: the finding path, so any file under these trees is in scope.
DEFAULT_SCOPES = (
    "repro/engine/",
    "repro/sketch/",
    "repro/core/",
)

#: Function names allowed to construct generators from scratch.
DERIVATION_SITES = frozenset({"child_rng", "tag_rng"})

#: Path fragments held to the stricter RNG-free contract: no generator
#: may be *constructed* here, seeded or not, and the derivation-site
#: exemption does not apply.  The columnar kernels are deterministic
#: functions of their input buffers (DESIGN decision 9).
RNG_FREE_SCOPES = ("repro/engine/kernels.py",)

#: Fully-resolved dotted names that are banned outright.
_BANNED_EXACT = {
    "time.time": "wall-clock time.time() is call-time-dependent",
    "time.time_ns": "wall-clock time.time_ns() is call-time-dependent",
    "datetime.datetime.now": "datetime.now() is call-time-dependent",
    "datetime.datetime.utcnow": "datetime.utcnow() is call-time-dependent",
    "datetime.date.today": "date.today() is call-time-dependent",
}

#: Names legal under the ``numpy.random`` prefix.
_NUMPY_RANDOM_ALLOWED = frozenset({
    "numpy.random.Generator",
    "numpy.random.BitGenerator",
    "numpy.random.SeedSequence",
})


def _import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name → dotted origin, for every import in the module.

    Handles ``import numpy as np`` (``np`` → ``numpy``), ``import
    time`` (``time`` → ``time``), ``from time import time`` (``time``
    → ``time.time``), and ``from numpy import random as npr`` (``npr``
    → ``numpy.random``).  Function-local imports are collected too —
    the repo imports lazily in hot paths.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                origin = alias.name if alias.asname else local
                aliases[local] = origin
        elif isinstance(node, ast.ImportFrom) and node.module:
            if node.level:
                continue  # relative imports never name stdlib/numpy
            for alias in node.names:
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def _dotted(node: ast.AST, aliases: dict[str, str]) -> str | None:
    """Resolve an attribute chain to its imported dotted origin."""
    parts: list[str] = []
    cursor = node
    while isinstance(cursor, ast.Attribute):
        parts.append(cursor.attr)
        cursor = cursor.value
    if not isinstance(cursor, ast.Name):
        return None
    origin = aliases.get(cursor.id)
    if origin is None:
        return None
    return ".".join([origin, *reversed(parts)])


@register_rule
class DeterminismRule(Rule):
    """R1: no ambient randomness or wall-clock inside the engine core."""

    id = "R1"
    name = "determinism"
    description = (
        "randomness/wall-clock in engine, sketch, and core layers must "
        "derive from child_rng/tag_rng"
    )

    def __init__(
        self,
        scopes: tuple[str, ...] | None = DEFAULT_SCOPES,
        rng_free: tuple[str, ...] = RNG_FREE_SCOPES,
    ):
        #: ``None`` disables scoping (fixture tests analyze bare
        #: files); an empty tuple would scope *nothing*, so tests can
        #: also narrow to a single package.
        self._scopes = scopes
        self._rng_free = rng_free

    def _in_scope(self, module: ModuleInfo) -> bool:
        if self._scopes is None:
            return True
        return any(scope in module.rel_path for scope in self._scopes)

    def _is_rng_free(self, module: ModuleInfo) -> bool:
        return any(scope in module.rel_path for scope in self._rng_free)

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if not self._in_scope(module):
            return
        aliases = _import_aliases(module.tree)
        strict = self._is_rng_free(module)
        yield from self._walk(module, module.tree.body, aliases, [], strict)

    def _walk(
        self,
        module: ModuleInfo,
        body: list[ast.stmt],
        aliases: dict[str, str],
        stack: list[str],
        strict: bool,
    ) -> Iterator[Finding]:
        for statement in body:
            if isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                if statement.name in DERIVATION_SITES and not strict:
                    continue  # the sanctioned derivation site itself
                stack.append(statement.name)
                yield from self._walk(
                    module, statement.body, aliases, stack, strict
                )
                stack.pop()
            elif isinstance(statement, ast.ClassDef):
                stack.append(statement.name)
                yield from self._walk(
                    module, statement.body, aliases, stack, strict
                )
                stack.pop()
            else:
                yield from self._check_statement(
                    module, statement, aliases, stack, strict
                )

    def _check_statement(
        self,
        module: ModuleInfo,
        statement: ast.stmt,
        aliases: dict[str, str],
        stack: list[str],
        strict: bool,
    ) -> Iterator[Finding]:
        symbol = enclosing_symbol(stack)
        #: An attribute chain and its base name share a start position;
        #: reporting once per position keeps ``random.random()`` from
        #: firing twice (once for the chain, once for the base).
        seen: set[tuple[int, int]] = set()
        for node in ast.walk(statement):
            message: str | None = None
            report_node: ast.expr | None = None
            if isinstance(node, ast.Call):
                message = self._default_rng_violation(node, aliases, strict)
                if message is not None:
                    report_node = node.func
            if message is None and isinstance(
                node, (ast.Attribute, ast.Name)
            ):
                message = self._violation(node, aliases, strict)
                if message is not None:
                    report_node = node
            if message is None or report_node is None:
                continue
            position = (report_node.lineno, report_node.col_offset)
            if position in seen:
                continue
            seen.add(position)
            yield self.finding(
                module,
                report_node.lineno,
                report_node.col_offset + 1,
                message,
                symbol,
            )

    @staticmethod
    def _resolve(node: ast.AST, aliases: dict[str, str]) -> str | None:
        if isinstance(node, ast.Attribute):
            return _dotted(node, aliases)
        if isinstance(node, ast.Name):
            return aliases.get(node.id)
        return None

    def _violation(
        self, node: ast.AST, aliases: dict[str, str], strict: bool
    ) -> str | None:
        """The invariant this reference breaks, or ``None``."""
        dotted = self._resolve(node, aliases)
        if dotted is None:
            return None
        if dotted in _BANNED_EXACT:
            return _BANNED_EXACT[dotted]
        if dotted == "random" or dotted.startswith("random."):
            return (
                f"stdlib '{dotted}' uses process-global state; derive "
                "randomness via ExecutionContext.child_rng/tag_rng"
            )
        if strict and (
            dotted == "numpy.random"
            or (
                dotted.startswith("numpy.random.")
                and dotted not in _NUMPY_RANDOM_ALLOWED
            )
        ):
            # The type names stay legal: accepting a Generator argument
            # is exactly how an RNG-free kernel defers draws to callers.
            return (
                f"'{dotted}' in an RNG-free module: kernels are "
                "deterministic functions of their input buffers; take a "
                "Generator argument and keep the draw in the caller"
            )
        if (
            dotted.startswith("numpy.random.")
            and dotted not in _NUMPY_RANDOM_ALLOWED
            and dotted != "numpy.random.default_rng"
        ):
            return (
                f"legacy '{dotted}' uses numpy's process-global state; "
                "derive a Generator via child_rng/tag_rng"
            )
        return None

    def _default_rng_violation(
        self, node: ast.Call, aliases: dict[str, str], strict: bool
    ) -> str | None:
        """Zero-argument ``default_rng()`` draws OS entropy — flag it.

        Seeded/coercing calls (``default_rng(rng)``,
        ``default_rng([seed, fingerprint])``) are the sanctioned idiom
        and pass — except in RNG-free modules, where constructing any
        generator at all is a contract violation."""
        if self._resolve(node.func, aliases) != "numpy.random.default_rng":
            return None
        if strict:
            return (
                "default_rng(...) in an RNG-free module: kernels may not "
                "construct generators, seeded or not; take a Generator "
                "argument instead"
            )
        if not node.args and not node.keywords:
            return (
                "default_rng() with no seed draws OS entropy; pass a "
                "seed derived from child_rng/tag_rng"
            )
        return None
