"""Rule R1 — determinism: all randomness derives from sanctioned sites.

The repo's reproducibility story (bit-identical answers across worker
counts, processes, and call orders) rests on one discipline: every
random draw flows from ``ExecutionContext.child_rng`` or
``repro.engine.parallel.tag_rng``, both of which derive a generator
from ``(config.seed, fingerprint)``.  A single stray ``time.time()``
tie-breaker or OS-entropy ``default_rng()`` anywhere in the engine,
sketch, or core-scoring layers silently breaks that contract — and no
test notices until two hosts disagree.

This rule bans, inside the determinism-scoped packages:

* wall-clock reads — ``time.time``/``time.time_ns``,
  ``datetime.now``/``utcnow``, ``date.today`` (monotonic and
  ``perf_counter`` clocks stay legal: they feed timings, which are
  provenance, not results);
* the stdlib ``random`` module in any form (its global state is
  process- and order-dependent);
* the legacy ``numpy.random.*`` API (global state again), and
  ``numpy.random.default_rng()`` *with no arguments* (OS entropy).
  ``default_rng(seed_or_rng)`` with an argument is the sanctioned
  coercion idiom and stays legal.

Functions named as *derivation sites* (``child_rng``, ``tag_rng``)
are exempt in full: they are where the sanctioned seeds are turned
into generators.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.findings import Finding
from repro.analysis.module import ModuleInfo, enclosing_symbol
from repro.analysis.registry import Rule, register_rule

#: Package path fragments rule R1 polices by default.  Matching is on
#: the finding path, so any file under these trees is in scope.
DEFAULT_SCOPES = (
    "repro/engine/",
    "repro/sketch/",
    "repro/core/",
)

#: Function names allowed to construct generators from scratch.
DERIVATION_SITES = frozenset({"child_rng", "tag_rng"})

#: Fully-resolved dotted names that are banned outright.
_BANNED_EXACT = {
    "time.time": "wall-clock time.time() is call-time-dependent",
    "time.time_ns": "wall-clock time.time_ns() is call-time-dependent",
    "datetime.datetime.now": "datetime.now() is call-time-dependent",
    "datetime.datetime.utcnow": "datetime.utcnow() is call-time-dependent",
    "datetime.date.today": "date.today() is call-time-dependent",
}

#: Names legal under the ``numpy.random`` prefix.
_NUMPY_RANDOM_ALLOWED = frozenset({
    "numpy.random.Generator",
    "numpy.random.BitGenerator",
    "numpy.random.SeedSequence",
})


def _import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name → dotted origin, for every import in the module.

    Handles ``import numpy as np`` (``np`` → ``numpy``), ``import
    time`` (``time`` → ``time``), ``from time import time`` (``time``
    → ``time.time``), and ``from numpy import random as npr`` (``npr``
    → ``numpy.random``).  Function-local imports are collected too —
    the repo imports lazily in hot paths.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                origin = alias.name if alias.asname else local
                aliases[local] = origin
        elif isinstance(node, ast.ImportFrom) and node.module:
            if node.level:
                continue  # relative imports never name stdlib/numpy
            for alias in node.names:
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def _dotted(node: ast.AST, aliases: dict[str, str]) -> str | None:
    """Resolve an attribute chain to its imported dotted origin."""
    parts: list[str] = []
    cursor = node
    while isinstance(cursor, ast.Attribute):
        parts.append(cursor.attr)
        cursor = cursor.value
    if not isinstance(cursor, ast.Name):
        return None
    origin = aliases.get(cursor.id)
    if origin is None:
        return None
    return ".".join([origin, *reversed(parts)])


@register_rule
class DeterminismRule(Rule):
    """R1: no ambient randomness or wall-clock inside the engine core."""

    id = "R1"
    name = "determinism"
    description = (
        "randomness/wall-clock in engine, sketch, and core layers must "
        "derive from child_rng/tag_rng"
    )

    def __init__(self, scopes: tuple[str, ...] | None = DEFAULT_SCOPES):
        #: ``None`` disables scoping (fixture tests analyze bare
        #: files); an empty tuple would scope *nothing*, so tests can
        #: also narrow to a single package.
        self._scopes = scopes

    def _in_scope(self, module: ModuleInfo) -> bool:
        if self._scopes is None:
            return True
        return any(scope in module.rel_path for scope in self._scopes)

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if not self._in_scope(module):
            return
        aliases = _import_aliases(module.tree)
        yield from self._walk(module, module.tree.body, aliases, [])

    def _walk(
        self,
        module: ModuleInfo,
        body: list[ast.stmt],
        aliases: dict[str, str],
        stack: list[str],
    ) -> Iterator[Finding]:
        for statement in body:
            if isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                if statement.name in DERIVATION_SITES:
                    continue  # the sanctioned derivation site itself
                stack.append(statement.name)
                yield from self._walk(
                    module, statement.body, aliases, stack
                )
                stack.pop()
            elif isinstance(statement, ast.ClassDef):
                stack.append(statement.name)
                yield from self._walk(
                    module, statement.body, aliases, stack
                )
                stack.pop()
            else:
                yield from self._check_statement(
                    module, statement, aliases, stack
                )

    def _check_statement(
        self,
        module: ModuleInfo,
        statement: ast.stmt,
        aliases: dict[str, str],
        stack: list[str],
    ) -> Iterator[Finding]:
        symbol = enclosing_symbol(stack)
        #: An attribute chain and its base name share a start position;
        #: reporting once per position keeps ``random.random()`` from
        #: firing twice (once for the chain, once for the base).
        seen: set[tuple[int, int]] = set()
        for node in ast.walk(statement):
            message: str | None = None
            report_node: ast.expr | None = None
            if isinstance(node, ast.Call):
                message = self._default_rng_violation(node, aliases)
                if message is not None:
                    report_node = node.func
            if message is None and isinstance(
                node, (ast.Attribute, ast.Name)
            ):
                message = self._violation(node, aliases)
                if message is not None:
                    report_node = node
            if message is None or report_node is None:
                continue
            position = (report_node.lineno, report_node.col_offset)
            if position in seen:
                continue
            seen.add(position)
            yield self.finding(
                module,
                report_node.lineno,
                report_node.col_offset + 1,
                message,
                symbol,
            )

    @staticmethod
    def _resolve(node: ast.AST, aliases: dict[str, str]) -> str | None:
        if isinstance(node, ast.Attribute):
            return _dotted(node, aliases)
        if isinstance(node, ast.Name):
            return aliases.get(node.id)
        return None

    def _violation(
        self, node: ast.AST, aliases: dict[str, str]
    ) -> str | None:
        """The invariant this reference breaks, or ``None``."""
        dotted = self._resolve(node, aliases)
        if dotted is None:
            return None
        if dotted in _BANNED_EXACT:
            return _BANNED_EXACT[dotted]
        if dotted == "random" or dotted.startswith("random."):
            return (
                f"stdlib '{dotted}' uses process-global state; derive "
                "randomness via ExecutionContext.child_rng/tag_rng"
            )
        if (
            dotted.startswith("numpy.random.")
            and dotted not in _NUMPY_RANDOM_ALLOWED
            and dotted != "numpy.random.default_rng"
        ):
            return (
                f"legacy '{dotted}' uses numpy's process-global state; "
                "derive a Generator via child_rng/tag_rng"
            )
        return None

    def _default_rng_violation(
        self, node: ast.Call, aliases: dict[str, str]
    ) -> str | None:
        """Zero-argument ``default_rng()`` draws OS entropy — flag it.

        Seeded/coercing calls (``default_rng(rng)``,
        ``default_rng([seed, fingerprint])``) are the sanctioned idiom
        and pass."""
        if self._resolve(node.func, aliases) != "numpy.random.default_rng":
            return None
        if not node.args and not node.keywords:
            return (
                "default_rng() with no seed draws OS entropy; pass a "
                "seed derived from child_rng/tag_rng"
            )
        return None
