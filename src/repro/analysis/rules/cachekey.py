"""Rule R4 — cache-key completeness: result-affecting fields reach keys.

PR 4's latent staleness bug was exactly this shape: the service result
cache keyed answers without the table's streaming version, so an
append could leave a pre-append answer reachable at a post-append
version.  The field existed; the key builder just never looked at it.

Convention — a function that builds a cache key (or fingerprint) for
a dataclass declares it on its ``def`` line::

    def _config_key(config):  # cache-key-of: AtlasConfig
        ...

    # exemptions carry their rationale in the marker itself:
    def result_cache_key(...):  # cache-key-of: ExploreRequest (exempt: use_cache)

The rule then requires every field of the named dataclass to be
*visible* in the builder: mentioned as an identifier (attribute access
or parameter name), as a string literal (dict keys, spec strings), or
covered wholesale by a ``.to_dict()`` / ``dataclasses.fields`` call.
Identifier visibility extends one hop into same-module helpers the
builder calls, so a builder that delegates part of the key (the
service's parallelism canonicalization) is not forced to re-name every
field locally.

Cross-module by design: the dataclass and its key builder usually live
in different files (``AtlasConfig`` in ``repro.core.config``, its key
in ``repro.service.service``), so this rule runs in the project-wide
pass.  A marker naming a class the analyzed file set never defines is
itself a finding — a typo would otherwise disable the check silently.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator, Sequence

from repro.analysis.findings import Finding
from repro.analysis.module import ModuleInfo
from repro.analysis.registry import Rule, register_rule
from repro.analysis.rules.serde import _dataclass_fields, _is_dataclass

_MARKER_RE = re.compile(
    r"cache-key-of:\s*(\w+)(?:\s*\(exempt:\s*([^)]*)\))?"
)


def _identifier_surface(fn: ast.AST) -> tuple[set[str], bool, set[str]]:
    """(visible names, dynamic flag, locally-called function names).

    Visible names are attribute names, bare identifiers, and string
    constants; the dynamic flag is set by ``.to_dict()`` calls or
    ``dataclasses.fields`` references (full coverage by construction).
    """
    names: set[str] = set()
    dynamic = False
    calls: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Attribute):
            names.add(node.attr)
            if node.attr in ("to_dict", "fields"):
                dynamic = True
        elif isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.arg):
            names.add(node.arg)
        elif isinstance(node, ast.Constant) and isinstance(
            node.value, str
        ):
            names.add(node.value)
        if isinstance(node, ast.Call):
            # Callee resolution is by bare name against this module's
            # functions — enough to follow ``self._helper(...)``,
            # ``Class._helper(...)``, and plain ``helper(...)`` hops.
            target = node.func
            if isinstance(target, ast.Name):
                calls.add(target.id)
            elif isinstance(target, ast.Attribute):
                calls.add(target.attr)
    return names, dynamic, calls


def _functions(
    tree: ast.Module,
) -> "dict[str, ast.FunctionDef | ast.AsyncFunctionDef]":
    """Every function in a module by bare name (methods included)."""
    return {
        node.name: node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


@register_rule
class CacheKeyRule(Rule):
    """R4: every dataclass field reaches its declared key builder."""

    id = "R4"
    name = "cache-key-completeness"
    description = (
        "fields of a dataclass named by '# cache-key-of: Class' must "
        "be visible in the key-builder function"
    )

    def check_project(
        self, modules: Sequence[ModuleInfo]
    ) -> Iterator[Finding]:
        fields_by_class: dict[str, list[str]] = {}
        for module in modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef) and _is_dataclass(node):
                    fields_by_class[node.name] = _dataclass_fields(node)
        for module in modules:
            yield from self._check_module_builders(
                module, fields_by_class
            )

    def _check_module_builders(
        self,
        module: ModuleInfo,
        fields_by_class: dict[str, list[str]],
    ) -> Iterator[Finding]:
        local_functions = _functions(module.tree)
        for name, fn in local_functions.items():
            marker = _MARKER_RE.search(module.def_comment(fn))
            if not marker:
                continue
            class_name = marker.group(1)
            exempt = frozenset(
                part.strip()
                for part in (marker.group(2) or "").split(",")
                if part.strip()
            )
            fields = fields_by_class.get(class_name)
            if fields is None:
                yield self.finding(
                    module,
                    fn.lineno,
                    fn.col_offset + 1,
                    f"cache-key-of names {class_name!r}, which is not a "
                    "dataclass in the analyzed files; fix the marker or "
                    "widen the file set",
                    symbol=name,
                )
                continue
            visible, dynamic, calls = _identifier_surface(fn)
            if not dynamic:
                # One hop into same-module helpers the builder calls:
                # a delegated key component still counts as covered.
                for callee_name in calls:
                    callee = local_functions.get(callee_name)
                    if callee is None or callee is fn:
                        continue
                    callee_names, callee_dynamic, _ = (
                        _identifier_surface(callee)
                    )
                    visible |= callee_names
                    dynamic = dynamic or callee_dynamic
            for field in fields:
                if field.startswith("_") or field in exempt:
                    continue
                if dynamic or field in visible:
                    continue
                yield self.finding(
                    module,
                    fn.lineno,
                    fn.col_offset + 1,
                    f"{class_name}.{field} never reaches cache-key "
                    f"builder {name}(); a value differing only in "
                    f"{field!r} would collide in the cache",
                    symbol=name,
                )
