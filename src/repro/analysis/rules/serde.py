"""Rule R2 — serde symmetry: ``to_dict`` and ``from_dict`` travel in pairs.

Every wire/serde type in the repo keeps a symmetric
``to_dict``/``from_dict`` pair — the contract PR 1 established for
``AtlasConfig`` and PR 2 extended across the whole service protocol.
An asymmetric type is a latent wire bug: a value that serializes but
cannot be rebuilt (or the reverse) fails only when the *other* side of
the service boundary is exercised.

Two checks:

* **Pairing** — a class defining one of ``to_dict``/``from_dict``
  must define (or inherit, within the same module) the other.
* **Field drift** — a ``@dataclass`` whose ``to_dict`` emits a
  literal dict must cover every dataclass field in its emitted keys.
  A field added to the dataclass but forgotten in ``to_dict`` silently
  drops state on the wire — exactly the drift class the version field
  of PR 4 would have hit had serde not been updated in lockstep.
  ``to_dict`` bodies that iterate ``dataclasses.fields(...)`` are
  dynamically complete and skip the check; *extra* emitted keys are
  legal (derived values are fine, missing state is not).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.findings import Finding
from repro.analysis.module import ModuleInfo
from repro.analysis.registry import Rule, register_rule

_PAIR = ("to_dict", "from_dict")


def _is_dataclass(node: ast.ClassDef) -> bool:
    """True when the class is decorated with ``dataclass(...)``."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(
            decorator, ast.Call
        ) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if (
            isinstance(target, ast.Attribute)
            and target.attr == "dataclass"
        ):
            return True
    return False


def _dataclass_fields(node: ast.ClassDef) -> list[str]:
    """Field names of a dataclass body (annotated assignments)."""
    fields: list[str] = []
    for statement in node.body:
        if isinstance(statement, ast.AnnAssign) and isinstance(
            statement.target, ast.Name
        ):
            if isinstance(statement.annotation, ast.Name) and (
                statement.annotation.id == "ClassVar"
            ):
                continue
            if isinstance(statement.annotation, ast.Subscript):
                base = statement.annotation.value
                if isinstance(base, ast.Name) and base.id == "ClassVar":
                    continue
                if (
                    isinstance(base, ast.Attribute)
                    and base.attr == "ClassVar"
                ):
                    continue
            fields.append(statement.target.id)
    return fields


def _methods(
    node: ast.ClassDef,
) -> "dict[str, ast.FunctionDef | ast.AsyncFunctionDef]":
    return {
        statement.name: statement
        for statement in node.body
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _emitted_keys(
    fn: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> tuple[set[str], bool]:
    """(string keys ``to_dict`` emits, body-is-dynamic flag).

    Keys are collected from dict literals and ``out["key"] = ...``
    subscript stores anywhere in the body.  A reference to
    ``dataclasses.fields`` (or bare ``fields``) marks the body dynamic
    — it serializes whatever the dataclass declares, so drift cannot
    happen and the check is skipped.
    """
    keys: set[str] = set()
    dynamic = False
    for node in ast.walk(fn):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(
                    key.value, str
                ):
                    keys.add(key.value)
        elif isinstance(node, ast.Subscript) and isinstance(
            node.ctx, ast.Store
        ):
            index = node.slice
            if isinstance(index, ast.Constant) and isinstance(
                index.value, str
            ):
                keys.add(index.value)
        elif isinstance(node, ast.Attribute) and node.attr == "fields":
            dynamic = True
        elif isinstance(node, ast.Name) and node.id == "fields":
            dynamic = True
    return keys, dynamic


@register_rule
class SerdeSymmetryRule(Rule):
    """R2: to_dict/from_dict pairing and dataclass field coverage."""

    id = "R2"
    name = "serde-symmetry"
    description = (
        "classes defining to_dict must define from_dict (and vice "
        "versa); dataclass to_dict must cover every field"
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        classes = {
            node.name: node
            for node in ast.walk(module.tree)
            if isinstance(node, ast.ClassDef)
        }
        for name, node in classes.items():
            yield from self._check_class(module, name, node, classes)

    def _inherited(
        self,
        cls: ast.ClassDef,
        method: str,
        classes: dict[str, ast.ClassDef],
        seen: set[str],
    ) -> bool:
        """True when a same-module ancestor defines ``method``.

        Cross-module bases are treated as *providing* the method —
        without imports resolved, the honest default is to trust them
        (``Predicate`` subclasses inherit the base dispatcher; a
        false negative here is recoverable by the pairing check on the
        base's own module).
        """
        for base in cls.bases:
            if isinstance(base, ast.Attribute):
                return True  # imported base: assume it provides it
            if not isinstance(base, ast.Name) or base.id in seen:
                continue
            seen.add(base.id)
            ancestor = classes.get(base.id)
            if ancestor is None:
                return True  # imported base: assume it provides it
            if method in _methods(ancestor):
                return True
            if self._inherited(ancestor, method, classes, seen):
                return True
        return False

    def _check_class(
        self,
        module: ModuleInfo,
        name: str,
        node: ast.ClassDef,
        classes: dict[str, ast.ClassDef],
    ) -> Iterator[Finding]:
        methods = _methods(node)
        for present, missing in (_PAIR, tuple(reversed(_PAIR))):
            if present in methods and missing not in methods:
                if self._inherited(node, missing, classes, set()):
                    continue
                fn = methods[present]
                yield self.finding(
                    module,
                    fn.lineno,
                    fn.col_offset + 1,
                    f"class {name} defines {present} but no matching "
                    f"{missing}; serde types must round-trip",
                    symbol=name,
                )
        if _is_dataclass(node) and "to_dict" in methods:
            yield from self._check_drift(module, name, node, methods)

    def _check_drift(
        self,
        module: ModuleInfo,
        name: str,
        node: ast.ClassDef,
        methods: "dict[str, ast.FunctionDef | ast.AsyncFunctionDef]",
    ) -> Iterator[Finding]:
        fn = methods["to_dict"]
        keys, dynamic = _emitted_keys(fn)
        if dynamic:
            return
        fields = [
            field
            for field in _dataclass_fields(node)
            if not field.startswith("_")
        ]
        for field in fields:
            if field not in keys:
                yield self.finding(
                    module,
                    fn.lineno,
                    fn.col_offset + 1,
                    f"dataclass field {name}.{field} is not emitted by "
                    "to_dict; serialized state would silently drop it",
                    symbol=f"{name}.to_dict",
                )
