"""Experiment report aggregator.

``python -m repro.evaluation.report [results_dir]`` prints every saved
experiment table from ``benchmarks/results/`` in a stable order — the
quick way to review a full benchmark run without scrolling pytest
output.
"""

from __future__ import annotations

import sys
from pathlib import Path

#: Display order: figures first, then claims by number.
PREFERRED_ORDER = (
    "fig2_census",
    "fig3_cut",
    "fig4_clustering",
    "fig5_merge",
    "latency_vs_rows",
    "latency_vs_attributes",
    "latency_sampling",
    "convenience",
    "cut_strategies",
    "anytime_convergence",
    "vs_baselines",
    "ranking",
    "sketch_cut",
    "merge_strategies",
    "multitable",
    "linkage",
    "threshold_sweep",
    "splits_tradeoff",
    "robustness",
    "sql_pushdown",
)


def collect_reports(results_dir: Path) -> list[tuple[str, str]]:
    """(name, content) pairs for every saved report, display-ordered."""
    if not results_dir.is_dir():
        return []
    available = {path.stem: path for path in results_dir.glob("*.txt")}
    ordered: list[tuple[str, str]] = []
    for name in PREFERRED_ORDER:
        if name in available:
            ordered.append((name, available.pop(name).read_text().rstrip()))
    for name in sorted(available):
        ordered.append((name, available[name].read_text().rstrip()))
    return ordered


def render_all(results_dir: Path) -> str:
    """All reports concatenated, or a hint when none exist."""
    reports = collect_reports(results_dir)
    if not reports:
        return (
            f"no experiment reports under {results_dir} — run\n"
            "  pytest benchmarks/ --benchmark-only\n"
            "to generate them."
        )
    return "\n\n".join(content for __, content in reports)


def main(argv: list[str] | None = None) -> int:
    """Console entry point."""
    argv = sys.argv[1:] if argv is None else argv
    default = Path(__file__).resolve().parents[3] / "benchmarks" / "results"
    results_dir = Path(argv[0]) if argv else default
    print(render_all(results_dir))
    return 0


if __name__ == "__main__":  # pragma: no cover - manual entry point
    raise SystemExit(main())
