"""Standard workloads shared by tests, examples, and benchmarks.

Centralizing the queries keeps every experiment pinned to the exact
scenario DESIGN.md describes (e.g. the Figure-2 user query verbatim).
"""

from __future__ import annotations

import numpy as np

from repro.dataset.table import Table
from repro.query.parser import parse_query
from repro.query.predicate import (
    AnyPredicate,
    RangePredicate,
    SetPredicate,
)
from repro.query.query import ConjunctiveQuery

#: The introductory user query of Section 1, verbatim.
FIGURE2_QUERY_TEXT = """
Sex: any
Salary: any
Age: [17, 90]
Eye color: {'Blue', 'Green', 'Brown'}
Education: {'BSc', 'MSc'}
"""


def figure2_query() -> ConjunctiveQuery:
    """The paper's introductory survey query."""
    return parse_query(FIGURE2_QUERY_TEXT)


def figure3_query() -> ConjunctiveQuery:
    """The Figure-3 query: ``Age: [20, 90] ∧ Sex: {'M', 'F'}``."""
    return ConjunctiveQuery(
        [
            RangePredicate("Age", 20, 90),
            SetPredicate("Sex", ["M", "F"]),
        ]
    )


def random_query(
    table: Table,
    rng: np.random.Generator | int | None = None,
    max_attributes: int = 4,
) -> ConjunctiveQuery:
    """A random conjunctive query over a table (for stress workloads, E2).

    Picks 1..max_attributes dimension columns; numeric attributes get a
    random sub-range covering 30–100% of the observed span, categorical
    attributes get a random non-empty label subset (or ``any``).
    """
    from repro.dataset.column import CategoricalColumn, NumericColumn
    from repro.dataset.types import ColumnRole

    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    dimensions = [
        c for c in table.columns if c.role() is ColumnRole.DIMENSION
    ]
    if not dimensions:
        return ConjunctiveQuery()
    count = int(rng.integers(1, min(max_attributes, len(dimensions)) + 1))
    chosen = rng.choice(len(dimensions), size=count, replace=False)

    predicates = []
    for index in chosen:
        column = dimensions[int(index)]
        if isinstance(column, NumericColumn):
            low, high = column.min(), column.max()
            if not (low < high):
                predicates.append(AnyPredicate(column.name))
                continue
            span = high - low
            width = span * float(rng.uniform(0.3, 1.0))
            start = low + float(rng.uniform(0.0, span - width)) if span > width else low
            predicates.append(
                RangePredicate(column.name, start, start + width)
            )
        elif isinstance(column, CategoricalColumn):
            categories = list(column.categories)
            if len(categories) < 2 or rng.random() < 0.3:
                predicates.append(AnyPredicate(column.name))
                continue
            size = int(rng.integers(1, len(categories) + 1))
            picked = rng.choice(len(categories), size=size, replace=False)
            predicates.append(
                SetPredicate(column.name, [categories[int(i)] for i in picked])
            )
    return ConjunctiveQuery(predicates)
