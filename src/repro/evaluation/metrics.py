"""Quality metrics for the reproduction experiments.

* :func:`adjusted_rand_index` — agreement between a map's region
  assignment and planted cluster labels, chance-corrected (from scratch;
  scipy/sklearn-free).
* :func:`map_recovery` — how well one map recovers a planted subspace
  structure: the ARI between its assignment and the planted labels.
* :func:`best_map_recovery` — the best recovery over the top-k of a
  ranked result (the "lazy top-k" quality the Section-6 comparison needs).
* :func:`attribute_recall` — did any top-k map use exactly the planted
  subspace attributes?
* :func:`split_sse` — within-partition sum of squares of a 1-D split
  (lower = tighter clusters), for the cut-strategy ablation.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.atlas import MapSet
from repro.core.datamap import DataMap
from repro.dataset.table import Table
from repro.errors import AtlasError


def _comb2(values: np.ndarray) -> float:
    values = values.astype(np.float64)
    return float((values * (values - 1.0) / 2.0).sum())


def adjusted_rand_index(labels_a: np.ndarray, labels_b: np.ndarray) -> float:
    """Adjusted Rand Index between two labelings (−0.5 … 1).

    1 means identical partitions; ~0 means chance agreement.  Label
    values are arbitrary integers; negative labels are legal (e.g. the
    map ESCAPE outcome) and treated as one more class.
    """
    labels_a = np.asarray(labels_a).ravel()
    labels_b = np.asarray(labels_b).ravel()
    if labels_a.shape != labels_b.shape:
        raise AtlasError(
            f"label arrays differ in length: {labels_a.size} vs {labels_b.size}"
        )
    if labels_a.size == 0:
        raise AtlasError("cannot compute ARI of empty labelings")

    _, codes_a = np.unique(labels_a, return_inverse=True)
    _, codes_b = np.unique(labels_b, return_inverse=True)
    n_a = codes_a.max() + 1
    n_b = codes_b.max() + 1
    contingency = np.zeros((n_a, n_b), dtype=np.int64)
    np.add.at(contingency, (codes_a, codes_b), 1)

    sum_cells = _comb2(contingency.ravel())
    sum_rows = _comb2(contingency.sum(axis=1))
    sum_cols = _comb2(contingency.sum(axis=0))
    total = _comb2(np.array([labels_a.size]))

    expected = sum_rows * sum_cols / total if total else 0.0
    maximum = (sum_rows + sum_cols) / 2.0
    if maximum == expected:
        return 1.0 if sum_cells == expected else 0.0
    return float((sum_cells - expected) / (maximum - expected))


def map_recovery(
    data_map: DataMap, table: Table, planted_labels: np.ndarray
) -> float:
    """ARI between a map's region assignment and planted labels."""
    return adjusted_rand_index(data_map.assign(table), planted_labels)


def best_map_recovery(
    result: MapSet | Sequence[DataMap],
    table: Table,
    planted_labels: np.ndarray,
    top_k: int | None = None,
) -> float:
    """Best planted-structure recovery over the top-k ranked maps."""
    maps = list(result.maps if isinstance(result, MapSet) else result)
    if top_k is not None:
        maps = maps[:top_k]
    if not maps:
        return 0.0
    return max(map_recovery(m, table, planted_labels) for m in maps)


def attribute_recall(
    result: MapSet | Sequence[DataMap],
    planted_attributes: Sequence[str],
    top_k: int | None = None,
) -> bool:
    """True when a top-k map is based on exactly the planted attributes."""
    maps = list(result.maps if isinstance(result, MapSet) else result)
    if top_k is not None:
        maps = maps[:top_k]
    wanted = set(planted_attributes)
    return any(set(m.attributes) == wanted for m in maps)


def purity(assignment: np.ndarray, labels: np.ndarray) -> float:
    """Weighted purity of a partition against ground-truth labels.

    For each region, the fraction of members sharing the region's
    majority label, weighted by region size.  1.0 means every region is
    label-pure.  Unlike ARI, purity does not punish a partition for
    *refining* the truth — the right score for maps whose extra cuts
    subdivide a planted cluster.
    """
    assignment = np.asarray(assignment).ravel()
    labels = np.asarray(labels).ravel()
    if assignment.shape != labels.shape:
        raise AtlasError(
            f"length mismatch: {assignment.size} vs {labels.size}"
        )
    if assignment.size == 0:
        raise AtlasError("cannot compute purity of empty labelings")
    total = 0
    for region in np.unique(assignment):
        members = labels[assignment == region]
        __, counts = np.unique(members, return_counts=True)
        total += counts.max()
    return float(total / assignment.size)


def map_purity(
    data_map: DataMap, table: Table, planted_labels: np.ndarray
) -> float:
    """Purity of a map's region assignment against planted labels."""
    return purity(data_map.assign(table), planted_labels)


def best_map_purity(
    result: MapSet | Sequence[DataMap],
    table: Table,
    planted_labels: np.ndarray,
    top_k: int | None = None,
) -> float:
    """Best purity over the top-k ranked maps."""
    maps = list(result.maps if isinstance(result, MapSet) else result)
    if top_k is not None:
        maps = maps[:top_k]
    if not maps:
        return 0.0
    return max(map_purity(m, table, planted_labels) for m in maps)


def map_set_fingerprint(map_set: MapSet) -> str:
    """Stable content hash of an answer, excluding wall-clock timings.

    Covers everything deterministic about a :class:`MapSet` — the
    query, every ranked map with its score and covers (floats rendered
    with ``repr``, so the hash is bit-exact), the rows used, and the
    fidelity/version provenance.  Two answers with equal fingerprints
    are bit-identical results; the parallel-execution determinism
    tests and the E20 benchmark compare worker counts with this.
    """
    import hashlib
    import json

    payload = {
        "query": map_set.query.to_dict(),
        "ranked": [
            {
                "map": entry.map.to_dict(),
                "score": repr(entry.score),
                "covers": [repr(c) for c in entry.covers],
            }
            for entry in map_set.ranked
        ],
        "n_rows_used": map_set.n_rows_used,
        "fidelity": map_set.fidelity,
        "version": map_set.version,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def ranked_map_agreement(
    result_a: MapSet | Sequence[DataMap],
    result_b: MapSet | Sequence[DataMap],
    table: Table,
    top_k: int = 3,
) -> float:
    """Agreement between the top-k maps of two ranked answers, in [0, 1].

    For each top-k map of one answer, the best similarity
    (1 − normalized VI, measured on ``table``) against the other
    answer's top-k is found; the score is the symmetrized mean.  1.0
    means the two answers reveal the same partitions (up to order);
    0.0 means they are statistically independent.  This is the measure
    the E18 speed-vs-accuracy experiment reports for approximate
    (sketch-fidelity) versus exact execution.
    """
    from repro.core.distance import map_nvi

    maps_a = list(result_a.maps if isinstance(result_a, MapSet) else result_a)
    maps_b = list(result_b.maps if isinstance(result_b, MapSet) else result_b)
    maps_a, maps_b = maps_a[:top_k], maps_b[:top_k]
    if not maps_a and not maps_b:
        return 1.0
    if not maps_a or not maps_b:
        return 0.0
    similarity = [
        [1.0 - map_nvi(a, b, table) for b in maps_b] for a in maps_a
    ]
    best_a = sum(max(row) for row in similarity) / len(maps_a)
    best_b = sum(
        max(similarity[i][j] for i in range(len(maps_a)))
        for j in range(len(maps_b))
    ) / len(maps_b)
    return (best_a + best_b) / 2.0


def split_sse(values: np.ndarray, cut_points: Sequence[float]) -> float:
    """Within-partition sum of squared deviations of a 1-D split.

    The intra-cluster-distance objective the paper's ``twomeans`` cut
    optimizes; the ablation compares strategies on it.
    """
    values = np.asarray(values, dtype=np.float64)
    values = values[~np.isnan(values)]
    if values.size == 0:
        raise AtlasError("split_sse needs at least one value")
    edges = [-np.inf] + sorted(float(c) for c in cut_points) + [np.inf]
    total = 0.0
    for low, high in zip(edges[:-1], edges[1:]):
        part = values[(values > low) & (values <= high)]
        if part.size:
            total += float(((part - part.mean()) ** 2).sum())
    return total


def region_balance(covers: Sequence[float]) -> float:
    """Max/min cover ratio of the non-empty regions (1 = perfectly even)."""
    positive = [c for c in covers if c > 0]
    if not positive:
        raise AtlasError("no non-empty region")
    return max(positive) / min(positive)
