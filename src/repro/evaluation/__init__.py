"""Experiment harness: metrics, timing/table utilities, shared workloads."""

from repro.evaluation.harness import ResultTable, Timer
from repro.evaluation.metrics import (
    adjusted_rand_index,
    attribute_recall,
    best_map_purity,
    best_map_recovery,
    map_purity,
    map_recovery,
    map_set_fingerprint,
    purity,
    ranked_map_agreement,
    region_balance,
    split_sse,
)
from repro.evaluation.workloads import (
    FIGURE2_QUERY_TEXT,
    figure2_query,
    figure3_query,
    random_query,
)

__all__ = [
    "FIGURE2_QUERY_TEXT",
    "ResultTable",
    "Timer",
    "adjusted_rand_index",
    "attribute_recall",
    "best_map_purity",
    "best_map_recovery",
    "figure2_query",
    "figure3_query",
    "map_purity",
    "map_recovery",
    "map_set_fingerprint",
    "purity",
    "random_query",
    "ranked_map_agreement",
    "region_balance",
    "split_sse",
]
