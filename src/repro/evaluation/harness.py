"""Experiment harness utilities: timing and result-table rendering.

Every benchmark prints its findings as a fixed-width text table (the
reproduction's analogue of the paper's figures); :class:`ResultTable`
renders those consistently and keeps the printing code out of the
benchmark logic.
"""

from __future__ import annotations

import time
from collections.abc import Sequence


class Timer:
    """Context manager measuring wall-clock seconds."""

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        self.elapsed = 0.0
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start


class ResultTable:
    """Fixed-width text table with typed cells.

    >>> t = ResultTable(["n", "latency"], title="demo")
    >>> t.add_row([1000, 0.5])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, columns: Sequence[str], title: str | None = None):
        self._columns = [str(c) for c in columns]
        self._rows: list[list[str]] = []
        self._title = title

    def add_row(self, cells: Sequence[object]) -> None:
        """Append one row; cells are formatted on the way in."""
        if len(cells) != len(self._columns):
            raise ValueError(
                f"row has {len(cells)} cells, expected {len(self._columns)}"
            )
        self._rows.append([_format_cell(c) for c in cells])

    @property
    def n_rows(self) -> int:
        """Number of data rows added so far."""
        return len(self._rows)

    def render(self) -> str:
        """The table as a fixed-width string."""
        widths = [
            max(len(self._columns[i]), *(len(r[i]) for r in self._rows))
            if self._rows
            else len(self._columns[i])
            for i in range(len(self._columns))
        ]
        header = " | ".join(
            c.ljust(widths[i]) for i, c in enumerate(self._columns)
        )
        rule = "-+-".join("-" * w for w in widths)
        lines = []
        if self._title:
            lines.append(f"== {self._title} ==")
        lines.append(header)
        lines.append(rule)
        for row in self._rows:
            lines.append(
                " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            )
        return "\n".join(lines)

    def print(self) -> None:
        """Render to stdout (benchmarks call this once per experiment)."""
        print()
        print(self.render())


def _format_cell(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (abs(value) < 0.001 and value != 0):
            return f"{value:.3e}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)
