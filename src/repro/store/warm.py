"""Warm-start summaries: persist built sketch state, restore it ready.

A :class:`~repro.engine.backends.SketchBackend` answers everything from
two pieces of state — its reservoir sample and its per-attribute
GK / Misra–Gries / token summaries.  Both serialize: the reservoir
through :mod:`repro.store.codec`, the sketches through their own
``to_dict``/``from_dict``.  :func:`extract_summary` captures that state
after a build, :func:`restore_backend` turns it back into a
:class:`WarmSketchBackend` that answers *identically* to the backend it
was captured from — every estimate flows through the reservoir rows or
the seeded sketch dictionaries, and any sketch missing from the capture
rebuilds lazily from the (bit-identical) restored reservoir.

The :func:`summary_key` names the statistical identity of a summary:
fidelity spec, seed, and shard count — with workers canonicalized out,
because the worker count never changes an answer (PR 6's bit-identity
contract), while the shard layout does (serial and sharded builds
sample differently).
"""

from __future__ import annotations

import dataclasses
import threading

from repro.core.config import AtlasConfig, Fidelity, Parallelism
from repro.dataset.table import Table
from repro.engine.backends import CacheCounters, SketchBackend
from repro.errors import StoreError
from repro.sketch.frequency import MisraGriesSketch
from repro.sketch.quantile import GKQuantileSketch
from repro.store.codec import decode_table_payload, encode_table_payload

_SUMMARY_KIND = "sketch-summary"


def summary_key(config: AtlasConfig) -> str:
    """The identity string a summary is stored (and looked up) under.

    Two configurations share a key exactly when they are guaranteed
    the same sketch state: same fidelity budget and epsilon, same seed,
    same shard layout.  Workers are canonicalized to 1 — scan
    placement cannot change an answer.
    """
    if not config.fidelity.is_sketch:
        raise StoreError(
            "sketch summaries only exist under a sketch fidelity, got "
            f"{config.fidelity.spec()!r}"
        )
    canonical = Parallelism(workers=1, shards=config.parallelism.shards)
    return f"{config.fidelity.spec()}|seed={config.seed}|{canonical.spec()}"


@dataclasses.dataclass(frozen=True)
class SketchSummary:
    """Serialized sketch-backend state for one ``(table, version, key)``.

    ``full_scan`` records whether the captured summaries observed every
    table row (a sharded build) rather than only the reservoir — the
    restored backend must keep merging appends at the same rate.
    """

    table_name: str
    version: int
    key: str
    fidelity: str
    full_scan: bool
    sample: Table
    quantiles: dict[str, GKQuantileSketch]
    frequencies: dict[str, MisraGriesSketch]
    tokens: dict[str, MisraGriesSketch]

    def to_dict(self) -> dict:
        """JSON-ready document (inverse of :meth:`from_dict`)."""
        return {
            "kind": _SUMMARY_KIND,
            "table_name": self.table_name,
            "version": self.version,
            "key": self.key,
            "fidelity": self.fidelity,
            "full_scan": self.full_scan,
            "sample": encode_table_payload(self.sample),
            "quantiles": {
                attr: sketch.to_dict()
                for attr, sketch in sorted(self.quantiles.items())
            },
            "frequencies": {
                attr: sketch.to_dict()
                for attr, sketch in sorted(self.frequencies.items())
            },
            "tokens": {
                attr: sketch.to_dict()
                for attr, sketch in sorted(self.tokens.items())
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SketchSummary":
        """Rebuild a summary from :meth:`to_dict` output."""
        if data.get("kind") != _SUMMARY_KIND:
            raise StoreError(
                f"not a sketch summary document: kind={data.get('kind')!r}"
            )
        return cls(
            table_name=data["table_name"],
            version=int(data["version"]),
            key=data["key"],
            fidelity=data["fidelity"],
            full_scan=bool(data["full_scan"]),
            sample=decode_table_payload(data["sample"]),
            quantiles={
                attr: GKQuantileSketch.from_dict(payload)
                for attr, payload in data["quantiles"].items()
            },
            frequencies={
                attr: MisraGriesSketch.from_dict(payload)
                for attr, payload in data["frequencies"].items()
            },
            tokens={
                attr: MisraGriesSketch.from_dict(payload)
                for attr, payload in data["tokens"].items()
            },
        )


def extract_summary(
    backend: SketchBackend, *, table_name: str, key: str
) -> SketchSummary:
    """Capture a backend's built state as a persistable summary."""
    state = backend.export_state()
    return SketchSummary(
        table_name=table_name,
        version=int(state["version"]),
        key=key,
        fidelity=backend.fidelity.spec(),
        full_scan=bool(state["full_scan"]),
        sample=state["sample"],
        quantiles=dict(state["quantiles"]),  # type: ignore[arg-type]
        frequencies=dict(state["frequencies"]),  # type: ignore[arg-type]
        tokens=dict(state["tokens"]),  # type: ignore[arg-type]
    )


class WarmSketchBackend(SketchBackend):
    """A sketch backend re-seeded from a persisted summary.

    Construction costs a buffer decode instead of a table scan: the
    reservoir arrives ready and the sketch dictionaries arrive built.
    Everything else — restricted-scope cuts, masks, joints, streaming
    :meth:`~repro.engine.backends.SketchBackend.advance` — is inherited
    unchanged, because the parent reads all of it from exactly the
    state being seeded.
    """

    def __init__(
        self,
        table: Table,
        fidelity: Fidelity,
        *,
        sample: Table,
        quantiles: dict[str, GKQuantileSketch],
        frequencies: dict[str, MisraGriesSketch],
        tokens: dict[str, MisraGriesSketch],
        full_scan: bool,
        counters: CacheCounters | None = None,
        lock: threading.Lock | None = None,
        kernels: str = "auto",
    ):
        super().__init__(
            table,
            fidelity,
            counters=counters,
            lock=lock,
            sample=sample,
            kernels=kernels,
        )
        # Seeded before the backend is shared, so no lock is needed;
        # afterwards the inherited paths guard them with _lock.
        self._quantile_sketches = dict(quantiles)
        self._frequency_sketches = dict(frequencies)
        self._token_sketches = dict(tokens)
        self._full_scan = bool(full_scan)

    def _delta_sketch_rate(self) -> float:
        """Full-scan summaries keep observing every appended row."""
        if self._full_scan:
            return 1.0
        return super()._delta_sketch_rate()

    def snapshot(self) -> dict:
        """Parent counters plus warm provenance."""
        out = super().snapshot()
        out["warm"] = True
        out["full_scan_summaries"] = self._full_scan
        return out


def restore_backend(
    summary: SketchSummary,
    table: Table,
    *,
    counters: CacheCounters | None = None,
    lock: threading.Lock | None = None,
    kernels: str = "auto",
) -> WarmSketchBackend:
    """Turn a summary back into a ready backend over ``table``.

    ``table`` must be at exactly the version the summary was captured
    at (the caller looks summaries up by version, so a mismatch means
    a corrupted store or a mixed-up key).
    """
    if table.version != summary.version:
        raise StoreError(
            f"summary for {summary.table_name!r} was captured at version "
            f"{summary.version}, table is at {table.version}"
        )
    if summary.sample.n_rows > table.n_rows:
        raise StoreError(
            f"summary reservoir has {summary.sample.n_rows} rows, more "
            f"than the table's {table.n_rows}"
        )
    fidelity = Fidelity.parse(summary.fidelity)
    sample = summary.sample
    if sample.n_rows == table.n_rows:
        # The budget covered everything: the reservoir *is* the table.
        # Hand the live table over so identity-keyed memos line up.
        sample = table
    return WarmSketchBackend(
        table,
        fidelity,
        sample=sample,
        quantiles=summary.quantiles,
        frequencies=summary.frequencies,
        tokens=summary.tokens,
        full_scan=summary.full_scan,
        counters=counters,
        lock=lock,
        kernels=kernels,
    )
