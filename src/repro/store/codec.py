"""Column / table serialization for the persistent store.

The codec is deliberately dumb: a numeric column persists as its raw
float64 buffer, a categorical column as its raw int32 code buffer plus
the dictionary as JSON.  Decoding hands the buffers straight back to
the column constructors, so a round trip is bit-identical — the
property the warm-start fingerprint tests pin.

Two encodings share the per-column logic:

* **blob rows** (:func:`column_blob` / :func:`column_from_blob`) — the
  ``columns`` table of :class:`repro.store.store.TableStore`, one BLOB
  per column per table version;
* **JSON payloads** (:func:`encode_table_payload` /
  :func:`decode_table_payload`) — base64-wrapped blobs inside the
  summary documents, where the reservoir sample travels with its
  sketches.
"""

from __future__ import annotations

import base64
import json

import numpy as np

from repro.dataset.column import CategoricalColumn, Column, NumericColumn
from repro.dataset.table import Table
from repro.errors import StoreError

#: Column kinds the codec understands, by tag stored on disk.
_NUMERIC = "numeric"
_CATEGORICAL = "categorical"


def column_blob(column: Column) -> tuple[str, bytes, str | None]:
    """``(kind, raw buffer, aux JSON)`` for one column.

    ``aux`` carries the categorical dictionary (order matters — codes
    index into it) and is ``None`` for numeric columns.
    """
    if isinstance(column, NumericColumn):
        return _NUMERIC, np.ascontiguousarray(column.data).tobytes(), None
    if isinstance(column, CategoricalColumn):
        return (
            _CATEGORICAL,
            np.ascontiguousarray(column.codes).tobytes(),
            json.dumps(list(column.categories)),
        )
    raise StoreError(
        f"cannot persist column {column.name!r} of kind {column.kind!r}"
    )


def column_from_blob(
    name: str, kind: str, blob: bytes, aux: str | None
) -> Column:
    """Rebuild one column from its stored row (inverse of
    :func:`column_blob`)."""
    if kind == _NUMERIC:
        return NumericColumn(name, np.frombuffer(blob, dtype=np.float64))
    if kind == _CATEGORICAL:
        if aux is None:
            raise StoreError(
                f"stored categorical column {name!r} has no dictionary"
            )
        categories = json.loads(aux)
        return CategoricalColumn(
            name, np.frombuffer(blob, dtype=np.int32).copy(), categories
        )
    raise StoreError(f"unknown stored column kind {kind!r} for {name!r}")


def encode_table_payload(table: Table) -> dict:
    """The table as a JSON-ready document (blobs base64-wrapped)."""
    columns = []
    for column in table.columns:
        kind, blob, aux = column_blob(column)
        columns.append(
            {
                "name": column.name,
                "kind": kind,
                "data": base64.b64encode(blob).decode("ascii"),
                "aux": aux,
            }
        )
    return {
        "name": table.name,
        "version": table.version,
        "n_rows": table.n_rows,
        "columns": columns,
    }


def decode_table_payload(payload: dict) -> Table:
    """Inverse of :func:`encode_table_payload` (restores the version)."""
    columns = [
        column_from_blob(
            entry["name"],
            entry["kind"],
            base64.b64decode(entry["data"]),
            entry.get("aux"),
        )
        for entry in payload["columns"]
    ]
    table = Table(columns, name=payload["name"])
    if table.n_rows != payload["n_rows"]:
        raise StoreError(
            f"stored table {payload['name']!r} decoded to {table.n_rows} "
            f"rows, expected {payload['n_rows']}"
        )
    table._version = int(payload["version"])
    return table


def table_schema(table: Table) -> list[dict]:
    """The schema document recorded alongside a registered table."""
    return [
        {"name": column.name, "kind": column.kind.value}
        for column in table.columns
    ]
