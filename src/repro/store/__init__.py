"""Persistent table store: durable tables, append logs, warm sketches.

The storage layer under the service (ROADMAP item 1): a SQLite-backed
:class:`TableStore` durably records registered tables, their streaming
append history (idempotent version-pair replay), and serialized sketch
summaries, so an :class:`~repro.service.service.ExplorationService`
restart warm-starts — loading tables and ready-made
:class:`~repro.engine.backends.SketchBackend` state instead of
regenerating and rescanning.
"""

from repro.store.codec import (
    column_blob,
    column_from_blob,
    decode_table_payload,
    encode_table_payload,
)
from repro.store.store import TableStore
from repro.store.warm import (
    SketchSummary,
    WarmSketchBackend,
    extract_summary,
    restore_backend,
    summary_key,
)

__all__ = [
    "SketchSummary",
    "TableStore",
    "WarmSketchBackend",
    "column_blob",
    "column_from_blob",
    "decode_table_payload",
    "encode_table_payload",
    "extract_summary",
    "restore_backend",
    "summary_key",
]
