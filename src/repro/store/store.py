"""The persistent table store: registered tables, appends, summaries.

One SQLite database (the :class:`~repro.service.history.QueryHistory`
conventions: WAL journal and ``synchronous=NORMAL`` for file paths,
``busy_timeout``, a ``user_version``-gated schema, one connection under
one lock) durably records three things per registered table:

* the **base table** — raw column buffers via :mod:`repro.store.codec`;
* the **append log** — one row per version pair ``(from, to)`` plus the
  coerced delta's column buffers, so a restart replays the exact
  streaming history through :meth:`repro.dataset.table.Table.append`
  and lands on a bit-identical current table.  Replay is idempotent:
  re-issuing an already-logged pair (a client retrying through a crash)
  is a no-op, and the log + buffers commit in one transaction so a
  crash mid-append leaves either both or neither;
* **sketch summaries** — JSON documents keyed ``(table, version,
  summary key)`` holding a serialized reservoir plus its built GK /
  Misra–Gries / token sketches, which :mod:`repro.store.warm` turns
  back into a ready :class:`~repro.engine.backends.SketchBackend` so a
  restarted service answers its first explore without rescanning.

Text columns are additionally indexed in an FTS5 virtual table when
the linked SQLite has the extension (probed at open); :meth:`search`
then answers ``match`` via FTS ``MATCH`` and ``contains`` via ``LIKE``,
falling back to Python-side matching over the stored dictionaries
otherwise — same answers either way, the index is a speedup.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time

from repro.dataset.column import CategoricalColumn
from repro.dataset.table import Table
from repro.errors import StoreError
from repro.query.predicate import tokenize_text
from repro.store.codec import column_blob, column_from_blob, table_schema

_SCHEMA_VERSION = 1

_CREATE = """
CREATE TABLE IF NOT EXISTS tables (
    name TEXT PRIMARY KEY,
    created REAL NOT NULL,
    base_version INTEGER NOT NULL,
    base_rows INTEGER NOT NULL,
    schema TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS columns (
    table_name TEXT NOT NULL,
    version INTEGER NOT NULL,
    position INTEGER NOT NULL,
    name TEXT NOT NULL,
    kind TEXT NOT NULL,
    data BLOB NOT NULL,
    aux TEXT,
    PRIMARY KEY (table_name, version, position)
);
CREATE TABLE IF NOT EXISTS append_log (
    table_name TEXT NOT NULL,
    from_version INTEGER NOT NULL,
    to_version INTEGER NOT NULL,
    created REAL NOT NULL,
    n_rows INTEGER NOT NULL,
    PRIMARY KEY (table_name, to_version)
);
CREATE TABLE IF NOT EXISTS summaries (
    table_name TEXT NOT NULL,
    version INTEGER NOT NULL,
    summary_key TEXT NOT NULL,
    created REAL NOT NULL,
    payload TEXT NOT NULL,
    PRIMARY KEY (table_name, version, summary_key)
);
CREATE INDEX IF NOT EXISTS idx_append_from
    ON append_log (table_name, from_version);
"""

_CREATE_FTS = """
CREATE VIRTUAL TABLE IF NOT EXISTS label_fts
    USING fts5(table_name UNINDEXED, column_name UNINDEXED, label);
"""


def _fts5_available(conn: sqlite3.Connection) -> bool:
    """Probe whether the linked SQLite carries the FTS5 extension."""
    try:
        conn.execute("CREATE VIRTUAL TABLE temp.fts5_probe USING fts5(x)")
        conn.execute("DROP TABLE temp.fts5_probe")
        return True
    except sqlite3.OperationalError:
        return False


class TableStore:
    """Thread-safe persistent store over one SQLite database.

    ``path`` may be ``":memory:"`` (default; dies with the process) or
    a filesystem path — a later process pointed at the same file sees
    every registered table, its full append history, and the summaries
    written against it.
    """

    def __init__(self, path: str = ":memory:"):
        self._path = str(path)
        self._lock = threading.Lock()
        self._closed = False  # guarded-by: _lock
        # One shared connection: every statement runs under _lock, so
        # cross-thread use is safe despite check_same_thread=False.
        self._conn = sqlite3.connect(  # guarded-by: _lock
            self._path, check_same_thread=False
        )
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            cursor = self._conn.cursor()
            if self._path != ":memory:":
                cursor.execute("PRAGMA journal_mode=WAL")
                cursor.execute("PRAGMA synchronous=NORMAL")
            cursor.execute("PRAGMA busy_timeout=30000")
            self._fts = _fts5_available(self._conn)
            version = cursor.execute("PRAGMA user_version").fetchone()[0]
            if version == 0:
                cursor.executescript(_CREATE)
                if self._fts:
                    cursor.executescript(_CREATE_FTS)
                cursor.execute(f"PRAGMA user_version={_SCHEMA_VERSION}")
            elif version != _SCHEMA_VERSION:
                raise StoreError(
                    f"store database {self._path!r} has schema version "
                    f"{version}; this build speaks {_SCHEMA_VERSION}"
                )
            elif self._fts:
                # A database created by an FTS-less build gains the
                # index lazily the first time an FTS-capable one opens.
                cursor.executescript(_CREATE_FTS)
            self._conn.commit()

    @property
    def path(self) -> str:
        """Where the store lives (``":memory:"`` or a file path)."""
        return self._path

    @property
    def has_fts(self) -> bool:
        """True when text search is answered by the FTS5 index."""
        return self._fts

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #

    def register_table(self, table: Table, *, overwrite: bool = False) -> None:
        """Durably record ``table`` (base buffers + schema) under its name.

        The table's current version becomes the stored *base* — replay
        starts there, so registering an already-appended table is fine.
        """
        name = table.name
        with self._lock:
            self._check_open()
            exists = self._conn.execute(
                "SELECT 1 FROM tables WHERE name=?", (name,)
            ).fetchone()
            if exists and not overwrite:
                raise StoreError(
                    f"table {name!r} is already registered "
                    "(pass overwrite=True to replace it)"
                )
            if exists:
                self._drop_locked(name)
            self._conn.execute(
                "INSERT INTO tables "
                "(name, created, base_version, base_rows, schema) "
                "VALUES (?, ?, ?, ?, ?)",
                (
                    name,
                    time.time(),
                    table.version,
                    table.n_rows,
                    json.dumps(table_schema(table)),
                ),
            )
            self._insert_columns_locked(name, table.version, table)
            self._index_labels_locked(name, table)
            self._conn.commit()

    def delete_table(self, name: str) -> None:
        """Remove a table, its append log, summaries, and text index."""
        with self._lock:
            self._check_open()
            self._drop_locked(name)
            self._conn.commit()

    def _drop_locked(self, name: str) -> None:  # holds-lock: _lock
        self._conn.execute("DELETE FROM tables WHERE name=?", (name,))
        self._conn.execute("DELETE FROM columns WHERE table_name=?", (name,))
        self._conn.execute("DELETE FROM append_log WHERE table_name=?", (name,))
        self._conn.execute("DELETE FROM summaries WHERE table_name=?", (name,))
        if self._fts:
            self._conn.execute(
                "DELETE FROM label_fts WHERE table_name=?", (name,)
            )

    def _insert_columns_locked(  # holds-lock: _lock
        self, name: str, version: int, table: Table
    ) -> None:
        for position, column in enumerate(table.columns):
            kind, blob, aux = column_blob(column)
            self._conn.execute(
                "INSERT INTO columns "
                "(table_name, version, position, name, kind, data, aux) "
                "VALUES (?, ?, ?, ?, ?, ?, ?)",
                (name, version, position, column.name, kind, blob, aux),
            )

    def _index_labels_locked(  # holds-lock: _lock
        self, name: str, table: Table
    ) -> None:
        if not self._fts:
            return
        for column in table.columns:
            if not isinstance(column, CategoricalColumn):
                continue
            self._conn.executemany(
                "INSERT INTO label_fts (table_name, column_name, label) "
                "VALUES (?, ?, ?)",
                ((name, column.name, label) for label in column.categories),
            )

    # ------------------------------------------------------------------ #
    # The append log
    # ------------------------------------------------------------------ #

    def append(
        self,
        name: str,
        delta: Table,
        *,
        from_version: int,
        to_version: int,
    ) -> bool:
        """Durably record one append (the *coerced* delta + version pair).

        Returns True when the entry was applied, False when the exact
        pair was already logged (idempotent replay — a client retrying
        through a crash re-issues the same pair and nothing doubles).
        A pair that is neither next nor already logged is a gap and
        raises :class:`StoreError`.
        """
        if to_version != from_version + 1:
            raise StoreError(
                f"append log entries advance one version at a time, got "
                f"{from_version} -> {to_version}"
            )
        with self._lock:
            self._check_open()
            current = self._current_version_locked(name)
            if to_version <= current:
                logged = self._conn.execute(
                    "SELECT from_version FROM append_log "
                    "WHERE table_name=? AND to_version=?",
                    (name, to_version),
                ).fetchone()
                if logged is None or logged["from_version"] != from_version:
                    raise StoreError(
                        f"append {from_version}->{to_version} on {name!r} "
                        f"conflicts with the stored history "
                        f"(current version {current})"
                    )
                return False  # exact replay: already durable
            if from_version != current:
                raise StoreError(
                    f"append on {name!r} starts at version {from_version}, "
                    f"but the stored history ends at {current}"
                )
            # Log row and delta buffers land in one transaction: a
            # crash mid-append leaves both or neither, never a log row
            # whose buffers are missing.
            self._conn.execute(
                "INSERT INTO append_log "
                "(table_name, from_version, to_version, created, n_rows) "
                "VALUES (?, ?, ?, ?, ?)",
                (name, from_version, to_version, time.time(), delta.n_rows),
            )
            self._insert_columns_locked(name, to_version, delta)
            self._index_labels_locked(name, delta)
            self._conn.commit()
            return True

    def _current_version_locked(self, name: str) -> int:  # holds-lock: _lock
        row = self._conn.execute(
            "SELECT base_version FROM tables WHERE name=?", (name,)
        ).fetchone()
        if row is None:
            raise StoreError(f"unknown stored table {name!r}")
        latest = self._conn.execute(
            "SELECT MAX(to_version) AS v FROM append_log WHERE table_name=?",
            (name,),
        ).fetchone()
        if latest["v"] is None:
            return int(row["base_version"])
        return int(latest["v"])

    # ------------------------------------------------------------------ #
    # Loading
    # ------------------------------------------------------------------ #

    def table_names(self) -> list[str]:
        """Registered table names, sorted."""
        with self._lock:
            self._check_open()
            rows = self._conn.execute(
                "SELECT name FROM tables ORDER BY name"
            ).fetchall()
        return [row["name"] for row in rows]

    def has_table(self, name: str) -> bool:
        """True when ``name`` is registered."""
        with self._lock:
            self._check_open()
            return (
                self._conn.execute(
                    "SELECT 1 FROM tables WHERE name=?", (name,)
                ).fetchone()
                is not None
            )

    def describe(self, name: str) -> dict:
        """Stored metadata for one table (JSON-ready)."""
        with self._lock:
            self._check_open()
            row = self._conn.execute(
                "SELECT * FROM tables WHERE name=?", (name,)
            ).fetchone()
            if row is None:
                raise StoreError(f"unknown stored table {name!r}")
            appends = self._conn.execute(
                "SELECT COUNT(*) AS n, COALESCE(SUM(n_rows), 0) AS rows "
                "FROM append_log WHERE table_name=?",
                (name,),
            ).fetchone()
            current = self._current_version_locked(name)
            n_summaries = self._conn.execute(
                "SELECT COUNT(*) AS n FROM summaries WHERE table_name=?",
                (name,),
            ).fetchone()["n"]
        return {
            "name": name,
            "created": row["created"],
            "base_version": row["base_version"],
            "version": current,
            "n_rows": row["base_rows"] + appends["rows"],
            "appends": appends["n"],
            "summaries": n_summaries,
            "schema": json.loads(row["schema"]),
        }

    def load_table(self, name: str) -> Table:
        """The current table: decoded base + full append-log replay.

        Replay goes through :meth:`repro.dataset.table.Table.append`
        with the recorded coerced deltas, so versions, row order, and
        categorical dictionary-union order all come back bit-identical
        to the table the writing process last held.
        """
        with self._lock:
            self._check_open()
            row = self._conn.execute(
                "SELECT base_version, base_rows FROM tables WHERE name=?",
                (name,),
            ).fetchone()
            if row is None:
                raise StoreError(f"unknown stored table {name!r}")
            base_version = int(row["base_version"])
            log = self._conn.execute(
                "SELECT from_version, to_version FROM append_log "
                "WHERE table_name=? ORDER BY to_version",
                (name,),
            ).fetchall()
            versions = [base_version] + [r["to_version"] for r in log]
            decoded = {
                version: self._load_columns_locked(name, version)
                for version in versions
            }
        table = Table(decoded[base_version], name=name)
        table._version = base_version
        if table.n_rows != int(row["base_rows"]):
            raise StoreError(
                f"stored base of {name!r} decoded to {table.n_rows} rows, "
                f"expected {row['base_rows']}"
            )
        for entry in log:
            if entry["from_version"] != table.version:
                raise StoreError(
                    f"append log of {name!r} has a gap: entry starts at "
                    f"{entry['from_version']}, table is at {table.version}"
                )
            delta = Table(decoded[entry["to_version"]], name=f"{name}_delta")
            table = table.append(delta)
        return table

    def _load_columns_locked(  # holds-lock: _lock
        self, name: str, version: int
    ) -> list:
        rows = self._conn.execute(
            "SELECT name, kind, data, aux FROM columns "
            "WHERE table_name=? AND version=? ORDER BY position",
            (name, version),
        ).fetchall()
        if not rows:
            raise StoreError(
                f"stored table {name!r} has no column buffers at "
                f"version {version}"
            )
        return [
            column_from_blob(r["name"], r["kind"], r["data"], r["aux"])
            for r in rows
        ]

    # ------------------------------------------------------------------ #
    # Summaries
    # ------------------------------------------------------------------ #

    def put_summary(
        self, name: str, version: int, summary_key: str, payload: dict
    ) -> None:
        """Upsert one serialized sketch summary for ``(name, version)``."""
        with self._lock:
            self._check_open()
            if (
                self._conn.execute(
                    "SELECT 1 FROM tables WHERE name=?", (name,)
                ).fetchone()
                is None
            ):
                raise StoreError(
                    f"cannot store a summary for unregistered table {name!r}"
                )
            self._conn.execute(
                "INSERT OR REPLACE INTO summaries "
                "(table_name, version, summary_key, created, payload) "
                "VALUES (?, ?, ?, ?, ?)",
                (name, version, summary_key, time.time(), json.dumps(payload)),
            )
            self._conn.commit()

    def get_summary(
        self, name: str, version: int, summary_key: str
    ) -> dict | None:
        """The stored summary document, or None."""
        with self._lock:
            self._check_open()
            row = self._conn.execute(
                "SELECT payload FROM summaries WHERE table_name=? "
                "AND version=? AND summary_key=?",
                (name, version, summary_key),
            ).fetchone()
        if row is None:
            return None
        return json.loads(row["payload"])

    def summary_keys(self, name: str) -> list[tuple[int, str]]:
        """Every stored ``(version, summary_key)`` pair for a table."""
        with self._lock:
            self._check_open()
            rows = self._conn.execute(
                "SELECT version, summary_key FROM summaries "
                "WHERE table_name=? ORDER BY version, summary_key",
                (name,),
            ).fetchall()
        return [(int(r["version"]), r["summary_key"]) for r in rows]

    # ------------------------------------------------------------------ #
    # Text search
    # ------------------------------------------------------------------ #

    def search(
        self,
        name: str,
        column: str,
        text: str,
        *,
        mode: str = "match",
        limit: int = 100,
    ) -> list[str]:
        """Stored labels of ``column`` matching ``text``, sorted.

        ``mode="match"`` is the conjunctive token match of
        :func:`repro.query.predicate.tokenize_text` (answered by FTS5
        ``MATCH`` when available); ``mode="contains"`` is the
        case-insensitive substring test.  Both agree exactly with the
        corresponding :class:`~repro.query.predicate.Predicate` masks —
        the index only changes *how fast* the labels are found.
        """
        if mode not in ("match", "contains"):
            raise StoreError(f"unknown search mode {mode!r}")
        limit = max(1, int(limit))
        if self._fts:
            labels = self._search_fts(name, column, text, mode)
        else:
            labels = self._search_python(name, column, text, mode)
        return sorted(labels)[:limit]

    def _search_fts(
        self, name: str, column: str, text: str, mode: str
    ) -> set[str]:
        if mode == "match":
            terms = tokenize_text(text)
            if not terms:
                raise StoreError("match needs at least one token")
            fts_query = " ".join(f'"{term}"' for term in dict.fromkeys(terms))
            sql = (
                "SELECT DISTINCT label FROM label_fts "
                "WHERE table_name=? AND column_name=? AND label MATCH ?"
            )
            params: tuple = (name, column, fts_query)
        else:
            if not text:
                raise StoreError("contains needs a non-empty needle")
            escaped = (
                text.replace("\\", "\\\\")
                .replace("%", "\\%")
                .replace("_", "\\_")
            )
            sql = (
                "SELECT DISTINCT label FROM label_fts "
                "WHERE table_name=? AND column_name=? "
                "AND label LIKE ? ESCAPE '\\'"
            )
            params = (name, column, f"%{escaped}%")
        with self._lock:
            self._check_open()
            rows = self._conn.execute(sql, params).fetchall()
        found = {row["label"] for row in rows}
        if mode == "match":
            # FTS5's tokenizer can differ from ours on edge cases
            # (unicode, embedded digits); re-filter so the answer is
            # exactly the predicate semantics.
            required = set(tokenize_text(text))
            found = {
                label
                for label in found
                if required <= set(tokenize_text(label))
            }
        return found

    def _search_python(
        self, name: str, column: str, text: str, mode: str
    ) -> set[str]:
        labels = self._stored_labels(name, column)
        if mode == "match":
            required = set(tokenize_text(text))
            if not required:
                raise StoreError("match needs at least one token")
            return {
                label
                for label in labels
                if required <= set(tokenize_text(label))
            }
        if not text:
            raise StoreError("contains needs a non-empty needle")
        needle = text.lower()
        return {label for label in labels if needle in label.lower()}

    def _stored_labels(self, name: str, column: str) -> set[str]:
        """Union of the column's dictionaries across all stored versions."""
        with self._lock:
            self._check_open()
            if (
                self._conn.execute(
                    "SELECT 1 FROM tables WHERE name=?", (name,)
                ).fetchone()
                is None
            ):
                raise StoreError(f"unknown stored table {name!r}")
            rows = self._conn.execute(
                "SELECT aux FROM columns WHERE table_name=? AND name=? "
                "AND kind='categorical'",
                (name, column),
            ).fetchall()
        labels: set[str] = set()
        for row in rows:
            if row["aux"]:
                labels.update(json.loads(row["aux"]))
        return labels

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def _check_open(self) -> None:  # holds-lock: _lock
        if self._closed:
            raise StoreError(f"store {self._path!r} is closed")

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        with self._lock:
            if not self._closed:
                self._closed = True
                self._conn.close()

    def __enter__(self) -> "TableStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
