"""Columnar dataset substrate: the DBMS layer Atlas sits on.

The paper's prototype runs on MonetDB; this package provides the same
operational surface in pure Python/numpy — typed columns, immutable
tables with mask selection, CSV ingestion with type inference, per-column
statistics with the Section-5.2 cardinality guard, and a multi-table
catalog with foreign keys and star-join materialization.
"""

from repro.dataset.catalog import Catalog
from repro.dataset.column import (
    MISSING_CODE,
    CategoricalColumn,
    Column,
    NumericColumn,
    column_from_values,
)
from repro.dataset.infer import (
    column_from_tokens,
    date_to_ordinal,
    infer_kind,
    ordinal_to_date,
)
from repro.dataset.io_csv import read_csv, read_csv_text, write_csv
from repro.dataset.join import ForeignKey, hash_join, materialize_star
from repro.dataset.stats import ColumnSummary, TableProfile, profile_table, summarize
from repro.dataset.table import Table
from repro.dataset.types import ColumnKind, ColumnRole

__all__ = [
    "Catalog",
    "CategoricalColumn",
    "Column",
    "ColumnKind",
    "ColumnRole",
    "ColumnSummary",
    "ForeignKey",
    "MISSING_CODE",
    "NumericColumn",
    "Table",
    "TableProfile",
    "column_from_tokens",
    "column_from_values",
    "date_to_ordinal",
    "hash_join",
    "infer_kind",
    "ordinal_to_date",
    "materialize_star",
    "profile_table",
    "read_csv",
    "read_csv_text",
    "summarize",
    "write_csv",
]
