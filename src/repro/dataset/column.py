"""Typed columns: the storage primitives of the columnar substrate.

Two concrete column types cover everything the Atlas pipeline needs:

* :class:`NumericColumn` — float64 storage, ``NaN`` marks missing values.
  Integers and date ordinals are coerced to float64 on construction;
  this mirrors how a column store hands a dense vector to the client.
* :class:`CategoricalColumn` — dictionary encoding: an ``int32`` code per
  row plus a tuple of category labels; code ``-1`` marks missing values.

Columns are immutable after construction (the arrays are flagged
non-writeable) so tables can share them across selections without copies.
"""

from __future__ import annotations

import abc
from collections.abc import Iterable, Sequence

import numpy as np

from repro.dataset.types import (
    KEY_DISTINCT_RATIO,
    TEXT_CARDINALITY_LIMIT,
    ColumnKind,
    ColumnRole,
)
from repro.errors import DatasetError

#: Sentinel code for a missing categorical value.
MISSING_CODE = -1


class Column(abc.ABC):
    """Abstract typed column of length ``len(column)``.

    Concrete subclasses expose the raw numpy storage through ``.data``
    (numeric) or ``.codes``/``.categories`` (categorical).
    """

    __slots__ = ("_name",)

    def __init__(self, name: str):
        if not name or not isinstance(name, str):
            raise DatasetError(f"column name must be a non-empty string, got {name!r}")
        self._name = name

    @property
    def name(self) -> str:
        """Column name as it appears in queries and rendered maps."""
        return self._name

    @property
    @abc.abstractmethod
    def kind(self) -> ColumnKind:
        """Physical kind (numeric or categorical)."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of rows."""

    @abc.abstractmethod
    def take(self, indices: np.ndarray) -> "Column":
        """Return a new column holding ``self`` at the given row indices."""

    @abc.abstractmethod
    def filter(self, mask: np.ndarray) -> "Column":
        """Return a new column with only the rows where ``mask`` is True."""

    @abc.abstractmethod
    def missing_mask(self) -> np.ndarray:
        """Boolean mask, True where the value is missing."""

    @abc.abstractmethod
    def distinct_count(self) -> int:
        """Number of distinct non-missing values."""

    @abc.abstractmethod
    def rename(self, name: str) -> "Column":
        """Return the same column under a different name (storage shared)."""

    @abc.abstractmethod
    def concat(self, other: "Column") -> "Column":
        """Return a new column holding ``self`` followed by ``other``.

        The streaming append path: both columns must share the physical
        kind; categorical concatenation unions the dictionaries
        (order-preserving, so parent codes survive unchanged).
        """

    def missing_count(self) -> int:
        """Number of missing rows."""
        return int(self.missing_mask().sum())

    def role(self) -> ColumnRole:
        """Classify the column per the Section-5.2 cardinality guard.

        A *key-like* column (near-unique identifiers) is excluded from
        mapping, as is a categorical column with more than
        ``TEXT_CARDINALITY_LIMIT`` distinct labels (free text).  What
        counts as key-like depends on the column kind — continuous
        measurements are always mappable even though every value is
        distinct, so :class:`NumericColumn` only flags *integer-valued*
        near-unique columns.
        """
        n = len(self)
        if n == 0:
            return ColumnRole.DIMENSION
        if self._is_key_like():
            return ColumnRole.KEY
        if (
            self.kind is ColumnKind.CATEGORICAL
            and self.distinct_count() > TEXT_CARDINALITY_LIMIT
        ):
            return ColumnRole.TEXT
        return ColumnRole.DIMENSION

    def _is_key_like(self) -> bool:
        """True when the column looks like an identifier (near-unique)."""
        non_missing = len(self) - self.missing_count()
        if non_missing == 0:
            return False
        distinct = self.distinct_count()
        return distinct / non_missing >= KEY_DISTINCT_RATIO and distinct > 8

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r} n={len(self)}>"


def _as_readonly(array: np.ndarray) -> np.ndarray:
    out = np.ascontiguousarray(array)
    if out is array:
        out = array.copy()
    out.setflags(write=False)
    return out


class NumericColumn(Column):
    """Dense float64 column; ``NaN`` encodes missing values."""

    __slots__ = ("_data",)

    def __init__(self, name: str, values: Iterable[float] | np.ndarray):
        super().__init__(name)
        data = np.asarray(values, dtype=np.float64)
        if data.ndim != 1:
            raise DatasetError(
                f"numeric column {name!r} needs a 1-D array, got shape {data.shape}"
            )
        self._data = _as_readonly(data)

    @property
    def kind(self) -> ColumnKind:
        return ColumnKind.NUMERIC

    @property
    def data(self) -> np.ndarray:
        """Read-only float64 array of the values."""
        return self._data

    def __len__(self) -> int:
        return int(self._data.shape[0])

    def take(self, indices: np.ndarray) -> "NumericColumn":
        return NumericColumn(self.name, self._data[np.asarray(indices)])

    def filter(self, mask: np.ndarray) -> "NumericColumn":
        return NumericColumn(self.name, self._data[np.asarray(mask, dtype=bool)])

    def rename(self, name: str) -> "NumericColumn":
        clone = NumericColumn.__new__(NumericColumn)
        Column.__init__(clone, name)
        clone._data = self._data
        return clone

    def concat(self, other: "Column") -> "NumericColumn":
        if not isinstance(other, NumericColumn):
            raise DatasetError(
                f"cannot concatenate numeric column {self.name!r} with a "
                f"{other.kind} column"
            )
        return NumericColumn(
            self.name, np.concatenate([self._data, other._data])
        )

    def missing_mask(self) -> np.ndarray:
        return np.isnan(self._data)

    def distinct_count(self) -> int:
        valid = self._data[~np.isnan(self._data)]
        if valid.size == 0:
            return 0
        return int(np.unique(valid).size)

    def min(self) -> float:
        """Smallest non-missing value (NaN if the column is all-missing)."""
        valid = self._data[~np.isnan(self._data)]
        return float(valid.min()) if valid.size else float("nan")

    def max(self) -> float:
        """Largest non-missing value (NaN if the column is all-missing)."""
        valid = self._data[~np.isnan(self._data)]
        return float(valid.max()) if valid.size else float("nan")

    def mean(self) -> float:
        """Mean of non-missing values (NaN if the column is all-missing)."""
        valid = self._data[~np.isnan(self._data)]
        return float(valid.mean()) if valid.size else float("nan")

    def median(self) -> float:
        """Median of non-missing values (NaN if the column is all-missing)."""
        valid = self._data[~np.isnan(self._data)]
        return float(np.median(valid)) if valid.size else float("nan")

    def std(self) -> float:
        """Population standard deviation of non-missing values."""
        valid = self._data[~np.isnan(self._data)]
        return float(valid.std()) if valid.size else float("nan")

    def _is_key_like(self) -> bool:
        """Only integer-valued near-unique numerics look like keys.

        A continuous measurement (height, redshift) is distinct on every
        row yet is exactly what an explorer wants mapped; identifiers in
        real schemas are integers (or strings, handled by the categorical
        branch).
        """
        valid = self._data[~np.isnan(self._data)]
        if valid.size == 0:
            return False
        if not np.array_equal(valid, np.trunc(valid)):
            return False
        return super()._is_key_like()


class CategoricalColumn(Column):
    """Dictionary-encoded label column.

    ``codes`` holds one int32 per row indexing into ``categories``;
    ``MISSING_CODE`` (-1) encodes a missing value.  Categories are unique,
    order-preserving with respect to construction.
    """

    __slots__ = ("_codes", "_categories")

    def __init__(self, name: str, codes: np.ndarray, categories: Sequence[str]):
        super().__init__(name)
        codes = np.asarray(codes, dtype=np.int32)
        if codes.ndim != 1:
            raise DatasetError(
                f"categorical column {name!r} needs 1-D codes, got shape {codes.shape}"
            )
        categories = tuple(str(c) for c in categories)
        if len(set(categories)) != len(categories):
            raise DatasetError(f"categorical column {name!r} has duplicate categories")
        if codes.size and (codes.max(initial=MISSING_CODE) >= len(categories)
                           or codes.min(initial=MISSING_CODE) < MISSING_CODE):
            raise DatasetError(f"categorical column {name!r} has out-of-range codes")
        self._codes = _as_readonly(codes)
        self._categories = categories

    @classmethod
    def from_values(cls, name: str, values: Iterable[object]) -> "CategoricalColumn":
        """Build a column from raw labels; ``None``/``''`` become missing."""
        labels: list[str | None] = [
            None if v is None or (isinstance(v, float) and np.isnan(v)) or v == ""
            else str(v)
            for v in values
        ]
        categories: list[str] = []
        index: dict[str, int] = {}
        codes = np.empty(len(labels), dtype=np.int32)
        for i, label in enumerate(labels):
            if label is None:
                codes[i] = MISSING_CODE
                continue
            code = index.get(label)
            if code is None:
                code = len(categories)
                index[label] = code
                categories.append(label)
            codes[i] = code
        return cls(name, codes, categories)

    @property
    def kind(self) -> ColumnKind:
        return ColumnKind.CATEGORICAL

    @property
    def codes(self) -> np.ndarray:
        """Read-only int32 code array (-1 = missing)."""
        return self._codes

    @property
    def categories(self) -> tuple[str, ...]:
        """Tuple of distinct labels, indexed by code."""
        return self._categories

    def __len__(self) -> int:
        return int(self._codes.shape[0])

    def take(self, indices: np.ndarray) -> "CategoricalColumn":
        return CategoricalColumn(
            self.name, self._codes[np.asarray(indices)], self._categories
        )

    def filter(self, mask: np.ndarray) -> "CategoricalColumn":
        return CategoricalColumn(
            self.name, self._codes[np.asarray(mask, dtype=bool)], self._categories
        )

    def rename(self, name: str) -> "CategoricalColumn":
        clone = CategoricalColumn.__new__(CategoricalColumn)
        Column.__init__(clone, name)
        clone._codes = self._codes
        clone._categories = self._categories
        return clone

    def concat(self, other: "Column") -> "CategoricalColumn":
        if not isinstance(other, CategoricalColumn):
            raise DatasetError(
                f"cannot concatenate categorical column {self.name!r} with "
                f"a {other.kind} column"
            )
        # Union dictionaries order-preservingly: existing categories keep
        # their codes, fresh labels from `other` are appended, so the
        # parent's code array transfers verbatim and only the delta rows
        # are remapped.
        categories = list(self._categories)
        index = {label: code for code, label in enumerate(categories)}
        remap = np.empty(len(other._categories) + 1, dtype=np.int32)
        remap[-1] = MISSING_CODE  # other code -1 indexes the last slot
        for code, label in enumerate(other._categories):
            mapped = index.get(label)
            if mapped is None:
                mapped = len(categories)
                index[label] = mapped
                categories.append(label)
            remap[code] = mapped
        return CategoricalColumn(
            self.name,
            np.concatenate([self._codes, remap[other._codes]]),
            categories,
        )

    def missing_mask(self) -> np.ndarray:
        return self._codes == MISSING_CODE

    def distinct_count(self) -> int:
        present = np.unique(self._codes[self._codes != MISSING_CODE])
        return int(present.size)

    def value_counts(self) -> dict[str, int]:
        """Mapping label -> occurrence count (missing excluded)."""
        counts = np.bincount(
            self._codes[self._codes != MISSING_CODE], minlength=len(self._categories)
        )
        return {cat: int(c) for cat, c in zip(self._categories, counts)}

    def decode(self) -> list[str | None]:
        """Materialize the labels row by row (None for missing)."""
        return [
            None if code == MISSING_CODE else self._categories[code]
            for code in self._codes
        ]


def column_from_values(name: str, values: Iterable[object]) -> Column:
    """Build the most specific column type for ``values``.

    Numbers (and None/NaN) yield a :class:`NumericColumn`; anything else
    yields a :class:`CategoricalColumn`.  Mixed numeric/label input is
    treated as categorical, matching how CSV ingestion behaves.
    """
    materialized = list(values)
    numeric = True
    for v in materialized:
        if v is None:
            continue
        if isinstance(v, bool) or not isinstance(v, (int, float, np.integer, np.floating)):
            numeric = False
            break
    if numeric:
        data = np.array(
            [np.nan if v is None else float(v) for v in materialized], dtype=np.float64
        )
        return NumericColumn(name, data)
    return CategoricalColumn.from_values(name, materialized)
