"""Multi-table catalog: the substrate's stand-in for a DBMS schema.

Section 5.2 of the paper points out that real databases are "multiple
tables with foreign key relationships", not one wide relation.  The
:class:`Catalog` registers tables and foreign keys, validates referential
integrity, and can materialize a star join around any fact table so the
mapping engine sees the single relation it expects.
"""

from __future__ import annotations

import numpy as np

from repro.dataset.join import ForeignKey, materialize_star
from repro.dataset.table import Table
from repro.errors import CatalogError


class Catalog:
    """A named collection of tables plus foreign-key metadata."""

    def __init__(self, name: str = "catalog"):
        self._name = name
        self._tables: dict[str, Table] = {}
        self._foreign_keys: list[ForeignKey] = []

    @property
    def name(self) -> str:
        """Catalog name."""
        return self._name

    @property
    def table_names(self) -> tuple[str, ...]:
        """Registered table names, in registration order."""
        return tuple(self._tables)

    @property
    def foreign_keys(self) -> tuple[ForeignKey, ...]:
        """Declared foreign-key edges."""
        return tuple(self._foreign_keys)

    def add_table(self, table: Table) -> None:
        """Register a table; the name must be fresh."""
        if table.name in self._tables:
            raise CatalogError(f"table {table.name!r} already registered")
        self._tables[table.name] = table

    def table(self, name: str) -> Table:
        """Fetch a table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(
                f"catalog {self._name!r} has no table {name!r}; "
                f"known tables: {', '.join(self._tables) or '(none)'}"
            ) from None

    def add_foreign_key(
        self,
        child_table: str,
        child_column: str,
        parent_table: str,
        parent_column: str,
    ) -> ForeignKey:
        """Declare and validate a foreign key.

        Validation checks that both columns exist and that every non-missing
        child value appears in the parent column (referential integrity).
        """
        child = self.table(child_table)
        parent = self.table(parent_table)
        child.column(child_column)
        parent.column(parent_column)
        self._check_integrity(child, child_column, parent, parent_column)
        fk = ForeignKey(child_table, child_column, parent_table, parent_column)
        self._foreign_keys.append(fk)
        return fk

    @staticmethod
    def _check_integrity(
        child: Table, child_column: str, parent: Table, parent_column: str
    ) -> None:
        from repro.dataset.join import _key_values  # local import: same layer

        child_values = _key_values(child, child_column)
        parent_values = set(_key_values(parent, parent_column).tolist())
        child_list = child_values.tolist()
        missing = [v for v in child_list if v not in parent_values]
        if missing:
            raise CatalogError(
                f"foreign key {child.name}.{child_column} -> "
                f"{parent.name}.{parent_column} broken: "
                f"{len(missing)} orphan values, first {missing[0]!r}"
            )

    def star_around(
        self,
        fact_table: str,
        sample: int | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> Table:
        """Materialize the star join centred on ``fact_table``.

        Follows every declared foreign key whose child is the fact table.
        ``sample`` joins only a fact-row sample (the §5.2 cost mitigation).
        """
        fact = self.table(fact_table)
        dims = [
            (self.table(fk.parent_table), fk.child_column, fk.parent_column)
            for fk in self._foreign_keys
            if fk.child_table == fact_table
        ]
        if not dims:
            raise CatalogError(
                f"table {fact_table!r} has no outgoing foreign keys to follow"
            )
        return materialize_star(fact, dims, sample=sample, rng=rng)

    def snowflake_around(
        self,
        fact_table: str,
        sample: int | None = None,
        rng: np.random.Generator | int | None = None,
        max_depth: int = 4,
    ) -> Table:
        """Materialize the *transitive* join around ``fact_table``.

        Real schemas are snowflakes, not stars: the fact references a
        dimension which references another dimension (lineitems →
        orders → customers).  This follows foreign keys breadth-first up
        to ``max_depth`` hops.  Parent-of-parent columns arrive under
        their prefixed names (``orders.custkey``), so second-hop edges
        are matched by the parent table's own declared keys.
        """
        from repro.dataset.join import hash_join

        fact = self.table(fact_table)
        wide = fact if sample is None else fact.sample(sample, rng=rng)
        # (table name whose FKs we still need to follow, column prefix)
        frontier: list[tuple[str, str]] = [(fact_table, "")]
        used_fk_columns: list[str] = []
        depth = 0
        while frontier and depth < max_depth:
            depth += 1
            next_frontier: list[tuple[str, str]] = []
            for child_name, prefix in frontier:
                for fk in self._foreign_keys:
                    if fk.child_table != child_name:
                        continue
                    child_column = prefix + fk.child_column
                    if child_column not in wide:
                        raise CatalogError(
                            f"snowflake join lost column {child_column!r}"
                        )
                    parent = self.table(fk.parent_table)
                    wide = hash_join(
                        wide, parent, child_column, fk.parent_column
                    )
                    used_fk_columns.append(child_column)
                    next_frontier.append(
                        (fk.parent_table, f"{fk.parent_table}.")
                    )
            frontier = next_frontier
        kept = [n for n in wide.column_names if n not in used_fk_columns]
        return wide.project(kept).rename(f"{fact_table}_snowflake")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Catalog {self._name!r} tables={list(self._tables)} "
            f"fks={len(self._foreign_keys)}>"
        )
