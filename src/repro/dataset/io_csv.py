"""CSV ingestion and export for the columnar substrate.

This is the loading path for the "real life databases" of Section 5.2:
read a delimited file, infer one typed column per field, and hand back an
immutable :class:`~repro.dataset.table.Table`.  Schema overrides let the
caller force a column numeric or categorical when inference guesses wrong.
"""

from __future__ import annotations

import csv
import io
from collections.abc import Mapping
from pathlib import Path

from repro.dataset.column import CategoricalColumn, NumericColumn
from repro.dataset.infer import column_from_tokens
from repro.dataset.table import Table
from repro.dataset.types import ColumnKind
from repro.errors import SchemaError


def read_csv(
    path: str | Path,
    name: str | None = None,
    delimiter: str = ",",
    kinds: Mapping[str, ColumnKind] | None = None,
) -> Table:
    """Load a CSV file with a header row into a :class:`Table`.

    Parameters
    ----------
    path:
        File to read.
    name:
        Relation name; defaults to the file stem.
    delimiter:
        Field separator.
    kinds:
        Optional per-column type overrides.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        return read_csv_text(
            handle.read(),
            name=path.stem if name is None else name,
            delimiter=delimiter,
            kinds=kinds,
        )


def read_csv_text(
    text: str,
    name: str = "table",
    delimiter: str = ",",
    kinds: Mapping[str, ColumnKind] | None = None,
) -> Table:
    """Parse CSV from an in-memory string (header row required)."""
    reader = csv.reader(io.StringIO(text), delimiter=delimiter)
    rows = list(reader)
    if not rows:
        raise SchemaError("CSV input is empty (no header row)")
    header = [field.strip() for field in rows[0]]
    if len(set(header)) != len(header):
        raise SchemaError(f"CSV header has duplicate column names: {header}")
    body = rows[1:]
    width = len(header)
    for row_number, row in enumerate(body, start=2):
        if len(row) != width:
            raise SchemaError(
                f"CSV row {row_number} has {len(row)} fields, expected {width}"
            )
    kinds = dict(kinds or {})
    unknown = set(kinds) - set(header)
    if unknown:
        raise SchemaError(f"type overrides for unknown columns: {sorted(unknown)}")
    columns = []
    for index, column_name in enumerate(header):
        tokens = [row[index] for row in body]
        columns.append(
            column_from_tokens(column_name, tokens, kinds.get(column_name))
        )
    return Table(columns, name=name)


def write_csv(table: Table, path: str | Path, delimiter: str = ",") -> None:
    """Write a table to a CSV file with a header row.

    Missing values are written as empty fields; numeric values that are
    whole numbers are written without a trailing ``.0`` so round-trips
    through :func:`read_csv` preserve integer-looking data.
    """
    path = Path(path)
    materialized: list[list[str]] = []
    for col in table.columns:
        if isinstance(col, NumericColumn):
            cells = [
                ""
                if value != value  # NaN check without importing numpy here
                else (str(int(value)) if float(value).is_integer() else repr(value))
                for value in col.data.tolist()
            ]
        elif isinstance(col, CategoricalColumn):
            cells = ["" if label is None else label for label in col.decode()]
        else:  # pragma: no cover - defensive; no other column kinds exist
            raise SchemaError(f"cannot serialize column kind {col.kind}")
        materialized.append(cells)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(table.column_names)
        for row_index in range(table.n_rows):
            writer.writerow([cells[row_index] for cells in materialized])
