"""The Table: an immutable columnar relation.

A :class:`Table` is a named, ordered collection of equal-length
:class:`~repro.dataset.column.Column` objects.  It supports exactly the
operations the Atlas engine pushes to the DBMS layer: projection, boolean
mask selection, random sampling, and per-column statistics.  Selections
return new tables that share no mutable state with their parent, which
keeps the exploration session free of aliasing surprises.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.dataset.column import (
    CategoricalColumn,
    Column,
    NumericColumn,
    column_from_values,
)
from repro.dataset.types import ColumnKind, ColumnRole
from repro.errors import SchemaError


class Table:
    """Immutable columnar relation.

    Parameters
    ----------
    columns:
        Columns in display order.  Names must be unique and lengths equal.
    name:
        Optional relation name (used by the catalog and SQL emitter).
    """

    __slots__ = ("_columns", "_order", "_name", "_n_rows", "_version")

    def __init__(self, columns: Iterable[Column], name: str = "table"):
        order: list[str] = []
        by_name: dict[str, Column] = {}
        n_rows: int | None = None
        for col in columns:
            if col.name in by_name:
                raise SchemaError(f"duplicate column name {col.name!r}")
            if n_rows is None:
                n_rows = len(col)
            elif len(col) != n_rows:
                raise SchemaError(
                    f"column {col.name!r} has {len(col)} rows, expected {n_rows}"
                )
            by_name[col.name] = col
            order.append(col.name)
        self._columns = by_name
        self._order = tuple(order)
        self._name = name
        self._n_rows = 0 if n_rows is None else n_rows
        self._version = 0

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_dict(
        cls, data: Mapping[str, Iterable[object]], name: str = "table"
    ) -> "Table":
        """Build a table from ``{column name: values}`` with type inference."""
        return cls(
            [column_from_values(col_name, values) for col_name, values in data.items()],
            name=name,
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def name(self) -> str:
        """Relation name."""
        return self._name

    @property
    def n_rows(self) -> int:
        """Number of rows."""
        return self._n_rows

    @property
    def version(self) -> int:
        """Streaming version: 0 at construction, +1 per :meth:`append`.

        Derived tables (projections, selections, samples) carry the
        version of the table they were derived from, so caches keyed on
        ``(identity, version)`` can tell a pre-append snapshot from a
        post-append one.
        """
        return self._version

    @property
    def column_names(self) -> tuple[str, ...]:
        """Column names in display order."""
        return self._order

    @property
    def columns(self) -> tuple[Column, ...]:
        """Columns in display order."""
        return tuple(self._columns[n] for n in self._order)

    def __len__(self) -> int:
        return self._n_rows

    def __contains__(self, column_name: str) -> bool:
        return column_name in self._columns

    def column(self, name: str) -> Column:
        """Fetch a column by name; raises :class:`SchemaError` if unknown."""
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(
                f"table {self._name!r} has no column {name!r}; "
                f"known columns: {', '.join(self._order)}"
            ) from None

    def numeric(self, name: str) -> NumericColumn:
        """Fetch a column and require it to be numeric."""
        col = self.column(name)
        if not isinstance(col, NumericColumn):
            raise SchemaError(f"column {name!r} is {col.kind}, expected numeric")
        return col

    def categorical(self, name: str) -> CategoricalColumn:
        """Fetch a column and require it to be categorical."""
        col = self.column(name)
        if not isinstance(col, CategoricalColumn):
            raise SchemaError(f"column {name!r} is {col.kind}, expected categorical")
        return col

    def kinds(self) -> dict[str, ColumnKind]:
        """Mapping column name -> physical kind."""
        return {n: self._columns[n].kind for n in self._order}

    def dimension_columns(self) -> tuple[Column, ...]:
        """Columns eligible for map generation (Section-5.2 guard applied)."""
        return tuple(
            col for col in self.columns if col.role() is ColumnRole.DIMENSION
        )

    # ------------------------------------------------------------------ #
    # Relational operations
    # ------------------------------------------------------------------ #

    def _derived(self, columns: list[Column], name: str | None) -> "Table":
        """A new table inheriting this table's streaming version."""
        out = Table(columns, name=self._name if name is None else name)
        out._version = self._version
        return out

    def project(self, names: Sequence[str], name: str | None = None) -> "Table":
        """Keep only the named columns, in the given order."""
        return self._derived([self.column(n) for n in names], name)

    def select(self, mask: np.ndarray, name: str | None = None) -> "Table":
        """Keep only the rows where ``mask`` is True."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self._n_rows,):
            raise SchemaError(
                f"selection mask has shape {mask.shape}, expected ({self._n_rows},)"
            )
        return self._derived(
            [self._columns[n].filter(mask) for n in self._order], name
        )

    def take(self, indices: np.ndarray, name: str | None = None) -> "Table":
        """Keep the rows at the given indices (with repetition allowed)."""
        indices = np.asarray(indices)
        return self._derived(
            [self._columns[n].take(indices) for n in self._order], name
        )

    def sample(
        self, n: int, rng: np.random.Generator | int | None = None
    ) -> "Table":
        """Uniform sample without replacement of ``min(n, n_rows)`` rows."""
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        n = min(int(n), self._n_rows)
        indices = rng.choice(self._n_rows, size=n, replace=False)
        return self.take(np.sort(indices), name=f"{self._name}_sample")

    def with_column(self, column: Column) -> "Table":
        """Return a table with ``column`` appended (name must be fresh)."""
        return self._derived(list(self.columns) + [column], None)

    def rename(self, name: str) -> "Table":
        """Return the same table under a new relation name."""
        return self._derived(list(self.columns), name)

    # ------------------------------------------------------------------ #
    # Streaming
    # ------------------------------------------------------------------ #

    def append(
        self,
        rows: "Mapping[str, Iterable[object]] | Table",
        name: str | None = None,
    ) -> "Table":
        """Return a new table with ``rows`` appended and ``version`` + 1.

        ``rows`` is either a columnar mapping (``{column name: values}``,
        coerced to this table's column kinds) or a table with the same
        schema.  The receiver is untouched — streaming workloads hold a
        "current" table and replace it on every batch; everything keyed
        on the old object (memoized statistics, cached answers) stays
        valid *for the old version* and the new version gets fresh or
        incrementally-maintained state.
        """
        delta = self._coerce_delta(rows)
        out = Table(
            [
                self._columns[n].concat(delta.column(n))
                for n in self._order
            ],
            name=self._name if name is None else name,
        )
        out._version = self._version + 1
        return out

    def coerce_delta(
        self, rows: "Mapping[str, Iterable[object]] | Table"
    ) -> "Table":
        """``rows`` as the exact delta table :meth:`append` would add.

        Public so persistence layers can record the coerced delta
        (canonical column kinds, validated schema) instead of the raw
        mapping — replaying a recorded delta through :meth:`append`
        reproduces the appended table bit for bit, including the
        dictionary-union order of categorical columns.
        """
        return self._coerce_delta(rows)

    def _coerce_delta(
        self, rows: "Mapping[str, Iterable[object]] | Table"
    ) -> "Table":
        """``rows`` as a table matching this table's schema exactly."""
        if isinstance(rows, Table):
            delta = rows
        elif isinstance(rows, Mapping):
            delta = Table(
                [
                    self._delta_column(col_name, values)
                    for col_name, values in rows.items()
                ],
                name=f"{self._name}_delta",
            )
        else:
            raise SchemaError(
                "append takes a {column: values} mapping or a Table, "
                f"got {type(rows).__name__}"
            )
        if set(delta.column_names) != set(self._order):
            missing = sorted(set(self._order) - set(delta.column_names))
            extra = sorted(set(delta.column_names) - set(self._order))
            raise SchemaError(
                f"appended rows do not match the schema of {self._name!r}"
                + (f"; missing columns: {', '.join(missing)}" if missing else "")
                + (f"; unknown columns: {', '.join(extra)}" if extra else "")
            )
        for col_name in self._order:
            if delta.column(col_name).kind is not self._columns[col_name].kind:
                raise SchemaError(
                    f"appended column {col_name!r} is "
                    f"{delta.column(col_name).kind}, expected "
                    f"{self._columns[col_name].kind}"
                )
        return delta

    def _delta_column(self, col_name: str, values: Iterable[object]) -> Column:
        """Build one delta column with the kind of the existing column."""
        existing = self._columns.get(col_name)
        if isinstance(existing, NumericColumn):
            try:
                data = [np.nan if v is None else float(v) for v in values]
            except (TypeError, ValueError) as exc:
                raise SchemaError(
                    f"appended column {col_name!r} must be numeric: {exc}"
                ) from exc
            return NumericColumn(col_name, data)
        if isinstance(existing, CategoricalColumn):
            return CategoricalColumn.from_values(col_name, values)
        # Unknown column: infer; _coerce_delta rejects it with a clear
        # schema error naming the column.
        return column_from_values(col_name, values)

    # ------------------------------------------------------------------ #
    # Display
    # ------------------------------------------------------------------ #

    def head(self, n: int = 5) -> list[dict[str, object]]:
        """First ``n`` rows as dictionaries (for quick inspection)."""
        n = min(n, self._n_rows)
        rows: list[dict[str, object]] = []
        decoded = {
            name: (
                col.decode()[:n]
                if isinstance(col, CategoricalColumn)
                else col.data[:n].tolist()
            )
            for name, col in ((nm, self._columns[nm]) for nm in self._order)
        }
        for i in range(n):
            rows.append({name: decoded[name][i] for name in self._order})
        return rows

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Table {self._name!r} rows={self._n_rows} "
            f"cols=[{', '.join(self._order)}]>"
        )
