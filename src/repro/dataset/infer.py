"""Type inference for raw (string) values, used by CSV ingestion.

The rules are deliberately simple and deterministic:

* every non-missing token parses as a number    -> NUMERIC
* every non-missing token is an ISO date        -> NUMERIC (day ordinal)
* otherwise                                     -> CATEGORICAL

Section 3.1 treats dates as ordinal attributes — CUT splits their value
range like any number — so ISO ``YYYY-MM-DD`` tokens are stored as days
since 1970-01-01 (:func:`date_to_ordinal` / :func:`ordinal_to_date`
convert back and forth for display).

Missing tokens are ``''``, ``'NA'``, ``'NaN'``, ``'null'``, ``'None'``
(case-insensitive).  A column that is entirely missing defaults to
categorical with zero categories.
"""

from __future__ import annotations

import datetime
import re
from collections.abc import Sequence

import numpy as np

from repro.dataset.column import CategoricalColumn, Column, NumericColumn
from repro.dataset.types import ColumnKind
from repro.errors import TypeInferenceError

#: Tokens treated as missing values (compared case-insensitively).
MISSING_TOKENS = frozenset({"", "na", "nan", "null", "none"})

_ISO_DATE_RE = re.compile(r"^\d{4}-\d{2}-\d{2}$")
_EPOCH = datetime.date(1970, 1, 1)


def date_to_ordinal(token: str) -> float | None:
    """Days since 1970-01-01 for an ISO date token, or None."""
    if not _ISO_DATE_RE.match(token.strip()):
        return None
    try:
        parsed = datetime.date.fromisoformat(token.strip())
    except ValueError:
        return None
    return float((parsed - _EPOCH).days)


def ordinal_to_date(ordinal: float) -> str:
    """ISO date for a day ordinal (inverse of :func:`date_to_ordinal`)."""
    return (_EPOCH + datetime.timedelta(days=int(ordinal))).isoformat()


def is_missing_token(token: str) -> bool:
    """True if ``token`` denotes a missing value."""
    return token.strip().lower() in MISSING_TOKENS


def _try_float(token: str) -> float | None:
    try:
        return float(token)
    except ValueError:
        return None


def infer_kind(tokens: Sequence[str]) -> ColumnKind:
    """Infer the column kind of a sequence of raw string tokens."""
    saw_value = False
    all_numbers = True
    all_dates = True
    for token in tokens:
        if is_missing_token(token):
            continue
        saw_value = True
        if _try_float(token) is None:
            all_numbers = False
        if date_to_ordinal(token) is None:
            all_dates = False
        if not all_numbers and not all_dates:
            return ColumnKind.CATEGORICAL
    if not saw_value:
        return ColumnKind.CATEGORICAL
    return ColumnKind.NUMERIC


def column_from_tokens(
    name: str, tokens: Sequence[str], kind: ColumnKind | None = None
) -> Column:
    """Build a typed column from raw string tokens.

    ``kind`` forces the target type; ``None`` infers it.  Forcing NUMERIC on
    unparseable tokens raises :class:`TypeInferenceError` naming the first
    offending value, which makes CSV schema overrides fail loudly.  ISO
    dates load as day ordinals (Section 3.1 treats dates as ordinals).
    """
    if kind is None:
        kind = infer_kind(tokens)
    if kind is ColumnKind.NUMERIC:
        data = np.empty(len(tokens), dtype=np.float64)
        for i, token in enumerate(tokens):
            if is_missing_token(token):
                data[i] = np.nan
                continue
            value = _try_float(token)
            if value is None:
                value = date_to_ordinal(token)
            if value is None:
                raise TypeInferenceError(
                    f"column {name!r}: token {token!r} at row {i} is not numeric"
                )
            data[i] = value
        return NumericColumn(name, data)
    values = [None if is_missing_token(t) else t.strip() for t in tokens]
    return CategoricalColumn.from_values(name, values)
