"""Foreign-key join materialization (the Section-5.2 multi-table path).

The paper's "naive way" to handle multi-table layouts is to materialize the
join into one large temporary table; it also suggests working on subsets.
Both are implemented here:

* :func:`hash_join` — equi-join two tables on a key pair.
* :func:`materialize_star` — follow a chain of foreign keys from a fact
  table outward, producing the single wide table the mapping engine needs,
  optionally on a row sample of the fact table (the paper's "work on
  subsets only" mitigation).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.dataset.column import CategoricalColumn, Column, NumericColumn
from repro.dataset.table import Table
from repro.errors import CatalogError


@dataclasses.dataclass(frozen=True)
class ForeignKey:
    """A foreign-key edge: ``child.child_column`` references ``parent.parent_column``."""

    child_table: str
    child_column: str
    parent_table: str
    parent_column: str

    def __str__(self) -> str:
        return (
            f"{self.child_table}.{self.child_column} -> "
            f"{self.parent_table}.{self.parent_column}"
        )


def _key_values(table: Table, column_name: str) -> np.ndarray:
    """Extract join-key values as a comparable numpy array."""
    col = table.column(column_name)
    if isinstance(col, NumericColumn):
        return col.data
    if isinstance(col, CategoricalColumn):
        # Compare by label, not code: two tables encode independently.
        labels = np.array(
            [label if label is not None else "\0<missing>" for label in col.decode()],
            dtype=object,
        )
        return labels
    raise CatalogError(f"unsupported join key column {column_name!r}")


def _parent_index(values: np.ndarray, table_name: str, column_name: str) -> dict:
    index: dict = {}
    for row, value in enumerate(values.tolist()):
        if value in index:
            raise CatalogError(
                f"join key {table_name}.{column_name} is not unique "
                f"(duplicate value {value!r})"
            )
        index[value] = row
    return index


def hash_join(
    child: Table,
    parent: Table,
    child_column: str,
    parent_column: str,
    prefix_parent: bool = True,
) -> Table:
    """Equi-join ``child`` with ``parent`` on a key pair.

    The parent key must be unique (a primary key).  Child rows with no
    matching parent are dropped (inner join).  Parent columns are renamed
    ``{parent.name}.{column}`` when ``prefix_parent`` is set, except the
    join key itself which is omitted (it duplicates the child column).
    """
    child_keys = _key_values(child, child_column)
    parent_keys = _key_values(parent, parent_column)
    index = _parent_index(parent_keys, parent.name, parent_column)

    parent_rows = np.empty(child.n_rows, dtype=np.int64)
    keep = np.zeros(child.n_rows, dtype=bool)
    for row, value in enumerate(child_keys.tolist()):
        match = index.get(value)
        if match is not None:
            parent_rows[row] = match
            keep[row] = True

    kept_child = child.select(keep)
    kept_parent_rows = parent_rows[keep]

    columns: list[Column] = list(kept_child.columns)
    taken_names = set(kept_child.column_names)
    for col in parent.columns:
        if col.name == parent_column:
            continue
        new_name = f"{parent.name}.{col.name}" if prefix_parent else col.name
        if new_name in taken_names:
            raise CatalogError(
                f"join would duplicate column {new_name!r}; "
                "set prefix_parent=True or rename the column"
            )
        taken_names.add(new_name)
        columns.append(col.take(kept_parent_rows).rename(new_name))
    return Table(columns, name=f"{child.name}_join_{parent.name}")


def materialize_star(
    fact: Table,
    dimensions: list[tuple[Table, str, str]],
    sample: int | None = None,
    rng: np.random.Generator | int | None = None,
    keep_keys: bool = False,
) -> Table:
    """Materialize a star schema into one wide table.

    Parameters
    ----------
    fact:
        The central (fact) table.
    dimensions:
        List of ``(dimension_table, fact_fk_column, dimension_pk_column)``.
    sample:
        If given, join only a uniform sample of this many fact rows — the
        paper's "work on subsets only" cost mitigation.
    rng:
        Randomness for the sample.
    keep_keys:
        By default the foreign-key columns used for joining are projected
        out of the result: once the dimension attributes are in place the
        FK is pure navigation, and Section 5.2 warns that undetected key
        columns lead to "very long and useless computations".  Pass True
        to keep them.
    """
    base = fact if sample is None else fact.sample(sample, rng=rng)
    wide = base
    used_keys: list[str] = []
    for dim_table, fk_column, pk_column in dimensions:
        wide = hash_join(wide, dim_table, fk_column, pk_column)
        used_keys.append(fk_column)
    if not keep_keys:
        kept = [n for n in wide.column_names if n not in used_keys]
        wide = wide.project(kept)
    return wide.rename(f"{fact.name}_star")
