"""Per-column summaries and the Section-5.2 cardinality guard report.

``summarize`` produces the numbers a data explorer sees before mapping
starts (and that the Atlas engine uses to pick candidate attributes);
``profile_table`` applies the role classification to a whole table and
explains *why* each excluded column was excluded — the paper notes that a
failure to detect key/text columns "could lead to very long and useless
computations".
"""

from __future__ import annotations

import dataclasses

from repro.dataset.column import CategoricalColumn, Column, NumericColumn
from repro.dataset.table import Table
from repro.dataset.types import ColumnKind, ColumnRole


@dataclasses.dataclass(frozen=True)
class ColumnSummary:
    """Summary statistics of one column."""

    name: str
    kind: ColumnKind
    role: ColumnRole
    n_rows: int
    n_missing: int
    distinct: int
    minimum: float | None = None
    maximum: float | None = None
    mean: float | None = None
    median: float | None = None
    std: float | None = None
    top_values: tuple[tuple[str, int], ...] = ()

    @property
    def missing_ratio(self) -> float:
        """Fraction of rows that are missing."""
        return self.n_missing / self.n_rows if self.n_rows else 0.0


def summarize(column: Column) -> ColumnSummary:
    """Compute a :class:`ColumnSummary` for one column."""
    base = {
        "name": column.name,
        "kind": column.kind,
        "role": column.role(),
        "n_rows": len(column),
        "n_missing": column.missing_count(),
        "distinct": column.distinct_count(),
    }
    if isinstance(column, NumericColumn):
        if base["n_rows"] - base["n_missing"] > 0:
            return ColumnSummary(
                **base,
                minimum=column.min(),
                maximum=column.max(),
                mean=column.mean(),
                median=column.median(),
                std=column.std(),
            )
        return ColumnSummary(**base)
    if isinstance(column, CategoricalColumn):
        counts = sorted(
            column.value_counts().items(), key=lambda kv: (-kv[1], kv[0])
        )
        return ColumnSummary(**base, top_values=tuple(counts[:10]))
    return ColumnSummary(**base)  # pragma: no cover - no other kinds exist


@dataclasses.dataclass(frozen=True)
class TableProfile:
    """Role classification of every column in a table."""

    table_name: str
    summaries: tuple[ColumnSummary, ...]

    @property
    def dimensions(self) -> tuple[str, ...]:
        """Columns eligible for map generation."""
        return tuple(
            s.name for s in self.summaries if s.role is ColumnRole.DIMENSION
        )

    @property
    def excluded(self) -> dict[str, str]:
        """Mapping excluded column -> human-readable reason."""
        reasons: dict[str, str] = {}
        for s in self.summaries:
            if s.role is ColumnRole.KEY:
                reasons[s.name] = (
                    f"looks like a key: {s.distinct} distinct values "
                    f"over {s.n_rows - s.n_missing} rows"
                )
            elif s.role is ColumnRole.TEXT:
                reasons[s.name] = (
                    f"looks like free text: {s.distinct} distinct labels"
                )
        return reasons


def profile_table(table: Table) -> TableProfile:
    """Summarize and role-classify every column of ``table``."""
    return TableProfile(
        table_name=table.name,
        summaries=tuple(summarize(col) for col in table.columns),
    )
