"""Column type system for the columnar dataset substrate.

Atlas (the paper's system) runs on MonetDB and distinguishes only the data
shapes its CUT primitive cares about: *ordinal* attributes (numbers, dates)
that can be range-split, and *categorical* attributes (labels) that are
split by grouping values.  Section 5.2 of the paper additionally warns about
columns with "very large cardinality and/or no semantics (codes, names,
comments or keys)" which must be detected and excluded from mapping.

This module defines the :class:`ColumnKind` enum and the :class:`ColumnRole`
classification used by that cardinality guard.
"""

from __future__ import annotations

import enum


class ColumnKind(enum.Enum):
    """Physical kind of a column.

    NUMERIC columns store float64 values (integers, floats, dates coerced to
    ordinals) and support range predicates.  CATEGORICAL columns store
    dictionary-encoded labels and support set predicates.
    """

    NUMERIC = "numeric"
    CATEGORICAL = "categorical"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class ColumnRole(enum.Enum):
    """Semantic role of a column, used by the Section-5.2 cardinality guard.

    DIMENSION columns are eligible for CUT and map generation.  KEY columns
    look like identifiers (unique or near-unique values).  TEXT columns are
    high-cardinality labels (names, comments, codes).  KEY and TEXT columns
    are excluded from candidate-map generation to avoid the "very long and
    useless computations" the paper warns about.
    """

    DIMENSION = "dimension"
    KEY = "key"
    TEXT = "text"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Fraction of distinct values above which a column is considered key-like.
KEY_DISTINCT_RATIO = 0.95

#: Absolute distinct-count above which a categorical column is text-like.
TEXT_CARDINALITY_LIMIT = 1000
