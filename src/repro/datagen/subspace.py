"""Subspace-cluster generator: planted ground truth for the evaluation.

Section 6 positions Atlas as a "lazy projective/subspace clustering"
system.  To measure whether the maps it proposes recover real structure,
we plant Gaussian clusters inside chosen attribute subspaces and drown
them in noise attributes, then score recovered maps against the planted
labels (Adjusted Rand Index, see :mod:`repro.evaluation.metrics`).

Each :class:`SubspaceSpec` describes one planted structure: the subspace
attributes, the cluster centers (one row per cluster, one column per
attribute), per-cluster spreads and mixing weights.  Attributes not
mentioned by any spec are filled with uniform noise.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from repro.dataset.column import NumericColumn
from repro.dataset.table import Table
from repro.errors import DatasetError


@dataclasses.dataclass(frozen=True)
class SubspaceSpec:
    """One planted cluster structure inside an attribute subspace."""

    attributes: tuple[str, ...]
    centers: tuple[tuple[float, ...], ...]
    spread: float = 1.0
    weights: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if not self.attributes:
            raise DatasetError("a subspace needs at least one attribute")
        for center in self.centers:
            if len(center) != len(self.attributes):
                raise DatasetError(
                    f"center {center} does not match attribute count "
                    f"{len(self.attributes)}"
                )
        if self.weights is not None and len(self.weights) != len(self.centers):
            raise DatasetError("weights must match the number of centers")

    @property
    def n_clusters(self) -> int:
        """Number of planted clusters."""
        return len(self.centers)


@dataclasses.dataclass(frozen=True)
class SubspaceDataset:
    """Generated table plus planted labels per subspace."""

    table: Table
    labels: dict[tuple[str, ...], np.ndarray]

    def labels_for(self, attributes: Sequence[str]) -> np.ndarray:
        """Planted labels of the subspace with exactly these attributes."""
        return self.labels[tuple(attributes)]


def subspace_dataset(
    n_rows: int = 10_000,
    specs: Sequence[SubspaceSpec] | None = None,
    n_noise_attributes: int = 2,
    noise_range: tuple[float, float] = (0.0, 100.0),
    seed: int | None = 0,
) -> SubspaceDataset:
    """Generate a table with planted subspace clusters.

    The default specs plant two well-separated 2-D structures — the shape
    the Figure-4/Figure-5 examples need: a {size, weight} subspace with
    two clusters and an {age, income} subspace with three.
    """
    rng = np.random.default_rng(seed)
    if specs is None:
        specs = default_specs()

    columns: dict[str, np.ndarray] = {}
    labels: dict[tuple[str, ...], np.ndarray] = {}
    for spec in specs:
        for attribute in spec.attributes:
            if attribute in columns:
                raise DatasetError(
                    f"attribute {attribute!r} appears in two subspaces"
                )
        weights = spec.weights
        if weights is None:
            weights = tuple(1.0 / spec.n_clusters for _ in spec.centers)
        assignment = rng.choice(spec.n_clusters, size=n_rows, p=weights)
        centers = np.asarray(spec.centers, dtype=np.float64)
        for axis, attribute in enumerate(spec.attributes):
            values = centers[assignment, axis] + rng.normal(
                0.0, spec.spread, n_rows
            )
            columns[attribute] = values
        labels[spec.attributes] = assignment

    low, high = noise_range
    for index in range(n_noise_attributes):
        columns[f"noise{index}"] = rng.uniform(low, high, n_rows)

    table = Table(
        [NumericColumn(name, values) for name, values in columns.items()],
        name="subspace",
    )
    return SubspaceDataset(table=table, labels=labels)


def default_specs() -> tuple[SubspaceSpec, ...]:
    """Two planted subspaces echoing the paper's running examples."""
    return (
        SubspaceSpec(
            attributes=("size", "weight"),
            centers=((140.0, 45.0), (165.0, 70.0)),
            spread=5.0,
        ),
        SubspaceSpec(
            attributes=("age", "income"),
            centers=((25.0, 20_000.0), (45.0, 55_000.0), (65.0, 35_000.0)),
            spread=4.0,
        ),
    )


def figure5_dataset(n_rows: int = 8_000, seed: int | None = 0) -> SubspaceDataset:
    """The Figure-5 scenario: weight clusters that *shift with size*.

    Small items (size < 150) have weight clusters around 35 and 55;
    large items around 55 and 75.  A global product split at the overall
    weight median blurs these; composition re-cuts weight *within* each
    size region and recovers them (claim C9).
    """
    rng = np.random.default_rng(seed)
    small = rng.random(n_rows) < 0.5
    heavy = rng.random(n_rows) < 0.5
    size = np.where(
        small, rng.normal(130.0, 8.0, n_rows), rng.normal(170.0, 8.0, n_rows)
    )
    weight_center = np.where(
        small,
        np.where(heavy, 55.0, 35.0),
        np.where(heavy, 75.0, 55.0),
    )
    weight = weight_center + rng.normal(0.0, 3.0, n_rows)
    table = Table(
        [NumericColumn("size", size), NumericColumn("weight", weight)],
        name="figure5",
    )
    labels = {
        ("size", "weight"): (small.astype(int) * 2 + heavy.astype(int)),
    }
    return SubspaceDataset(table=table, labels=labels)
