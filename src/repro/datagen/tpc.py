"""TPC-H-like multi-table generator (Section 5.2's other named target).

Emits a miniature order-management star schema — ``customers`` and
``orders`` with a foreign key — sized by a scale factor, wired into a
:class:`~repro.dataset.catalog.Catalog`.  The value distributions carry
explorable dependencies (market segment ↔ account balance, order priority
↔ total price, region ↔ segment mix) so the multi-table benchmark has
structure to find after star materialization.
"""

from __future__ import annotations

import numpy as np

from repro.dataset.catalog import Catalog
from repro.dataset.column import CategoricalColumn, NumericColumn
from repro.dataset.table import Table

_SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY")
_REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")
_PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW")


def tpc_catalog(
    scale: float = 0.01,
    seed: int | None = 0,
    include_lineitems: bool = False,
) -> Catalog:
    """Generate a TPC-like catalog (two tables, optionally three).

    ``scale=1.0`` ≈ 15k customers / 150k orders (a laptop-friendly remix
    of TPC-H's 150k/1.5M at SF1).  The foreign key
    ``orders.custkey -> customers.custkey`` is declared and validated;
    with ``include_lineitems`` a third table hangs off orders
    (``lineitems.orderkey -> orders.orderkey``), turning the star into
    the snowflake shape Section 5.2 worries about.
    """
    rng = np.random.default_rng(seed)
    n_customers = max(10, int(15_000 * scale))
    n_orders = max(20, int(150_000 * scale))

    customers = _customers_table(n_customers, rng)
    orders = _orders_table(n_orders, n_customers, rng)

    catalog = Catalog(name="tpc")
    catalog.add_table(customers)
    catalog.add_table(orders)
    catalog.add_foreign_key("orders", "custkey", "customers", "custkey")
    if include_lineitems:
        catalog.add_table(_lineitems_table(n_orders, rng))
        catalog.add_foreign_key("lineitems", "orderkey", "orders", "orderkey")
    return catalog


def _customers_table(n_customers: int, rng: np.random.Generator) -> Table:
    custkey = np.arange(n_customers, dtype=np.float64)
    region_codes = rng.choice(len(_REGIONS), size=n_customers)
    # Segment mix depends on region (an explorable dependency).
    segment_codes = np.empty(n_customers, dtype=np.int64)
    for region in range(len(_REGIONS)):
        in_region = region_codes == region
        probs = np.full(len(_SEGMENTS), 1.0)
        probs[region % len(_SEGMENTS)] = 3.0  # each region favours one segment
        probs /= probs.sum()
        segment_codes[in_region] = rng.choice(
            len(_SEGMENTS), size=int(in_region.sum()), p=probs
        )
    # Account balance depends on segment.
    base_balance = np.array([4000.0, 7000.0, 3000.0, 5500.0, 9000.0])
    acctbal = base_balance[segment_codes] + rng.normal(0.0, 1200.0, n_customers)
    return Table(
        [
            NumericColumn("custkey", custkey),
            CategoricalColumn.from_values(
                "segment", [_SEGMENTS[c] for c in segment_codes]
            ),
            CategoricalColumn.from_values(
                "region", [_REGIONS[c] for c in region_codes]
            ),
            NumericColumn("acctbal", np.round(acctbal, 2)),
        ],
        name="customers",
    )


def _lineitems_table(n_orders: int, rng: np.random.Generator) -> Table:
    """~4 line items per order, with quantity/discount structure."""
    n_items = n_orders * 4
    linekey = np.arange(n_items, dtype=np.float64)
    orderkey = rng.integers(0, n_orders, size=n_items).astype(np.float64)
    quantity = rng.integers(1, 51, size=n_items).astype(np.float64)
    # bulk lines get better discounts: an explorable dependency
    discount = np.clip(
        quantity / 500.0 + rng.normal(0.03, 0.02, n_items), 0.0, 0.2
    )
    shipmode_codes = rng.choice(3, size=n_items)
    shipmodes = ("AIR", "SHIP", "TRUCK")
    return Table(
        [
            NumericColumn("linekey", linekey),
            NumericColumn("orderkey", orderkey),
            NumericColumn("quantity", quantity),
            NumericColumn("discount", np.round(discount, 4)),
            CategoricalColumn.from_values(
                "shipmode", [shipmodes[c] for c in shipmode_codes]
            ),
        ],
        name="lineitems",
    )


def _orders_table(
    n_orders: int, n_customers: int, rng: np.random.Generator
) -> Table:
    orderkey = np.arange(n_orders, dtype=np.float64)
    custkey = rng.integers(0, n_customers, size=n_orders).astype(np.float64)
    # Order date as day ordinal over seven years (TPC-H 1992-1998).
    orderdate = rng.integers(0, 7 * 365, size=n_orders).astype(np.float64)
    priority_codes = rng.choice(len(_PRIORITIES), size=n_orders)
    # Urgent orders skew to higher totals.
    price_base = np.array([210_000.0, 180_000.0, 150_000.0, 140_000.0, 120_000.0])
    totalprice = np.abs(
        price_base[priority_codes] * rng.lognormal(-1.0, 0.6, n_orders)
    )
    return Table(
        [
            NumericColumn("orderkey", orderkey),
            NumericColumn("custkey", custkey),
            NumericColumn("orderdate", orderdate),
            CategoricalColumn.from_values(
                "priority", [_PRIORITIES[c] for c in priority_codes]
            ),
            NumericColumn("totalprice", np.round(totalprice, 2)),
        ],
        name="orders",
    )
