"""Dirty-data injection (paper Section 5.2: "the raw data may be
imprecise or contain mistakes").

Utilities that corrupt a clean table in the ways real survey / catalog
data is dirty, so robustness experiments can sweep the corruption rate:

* :func:`inject_missing` — random cells become missing;
* :func:`inject_outliers` — numeric cells replaced by far-out values;
* :func:`inject_label_noise` — categorical cells re-labelled at random.

All functions return a new table; the input is never modified.
"""

from __future__ import annotations

import numpy as np

from repro.dataset.column import CategoricalColumn, NumericColumn
from repro.dataset.table import Table
from repro.errors import DatasetError


def _check_rate(rate: float) -> None:
    if not 0.0 <= rate <= 1.0:
        raise DatasetError(f"corruption rate must be in [0, 1], got {rate}")


def inject_missing(
    table: Table,
    rate: float,
    rng: np.random.Generator | int | None = None,
    columns: tuple[str, ...] | None = None,
) -> Table:
    """Blank out a ``rate`` fraction of cells, uniformly per column."""
    _check_rate(rate)
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    target = set(columns) if columns is not None else None
    out = []
    for column in table.columns:
        if target is not None and column.name not in target:
            out.append(column)
            continue
        hit = rng.random(len(column)) < rate
        if isinstance(column, NumericColumn):
            data = column.data.copy()
            data[hit] = np.nan
            out.append(NumericColumn(column.name, data))
        elif isinstance(column, CategoricalColumn):
            codes = column.codes.copy()
            codes[hit] = -1
            out.append(
                CategoricalColumn(column.name, codes, column.categories)
            )
        else:  # pragma: no cover
            out.append(column)
    return Table(out, name=f"{table.name}_missing")


def inject_outliers(
    table: Table,
    rate: float,
    magnitude: float = 10.0,
    rng: np.random.Generator | int | None = None,
) -> Table:
    """Replace a ``rate`` fraction of numeric cells by far-out values.

    An outlier lands ``magnitude`` global standard deviations away from
    the column mean, on a random side.
    """
    _check_rate(rate)
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    out = []
    for column in table.columns:
        if not isinstance(column, NumericColumn):
            out.append(column)
            continue
        data = column.data.copy()
        valid = data[~np.isnan(data)]
        if valid.size == 0:
            out.append(column)
            continue
        hit = rng.random(len(column)) < rate
        sides = np.where(rng.random(len(column)) < 0.5, -1.0, 1.0)
        scale = float(valid.std()) or 1.0
        data[hit] = float(valid.mean()) + sides[hit] * magnitude * scale
        out.append(NumericColumn(column.name, data))
    return Table(out, name=f"{table.name}_outliers")


def inject_label_noise(
    table: Table,
    rate: float,
    rng: np.random.Generator | int | None = None,
) -> Table:
    """Re-label a ``rate`` fraction of categorical cells uniformly."""
    _check_rate(rate)
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    out = []
    for column in table.columns:
        if not isinstance(column, CategoricalColumn) or not column.categories:
            out.append(column)
            continue
        codes = column.codes.copy()
        hit = (rng.random(len(column)) < rate) & (codes >= 0)
        codes[hit] = rng.integers(
            0, len(column.categories), size=int(hit.sum())
        )
        out.append(CategoricalColumn(column.name, codes, column.categories))
    return Table(out, name=f"{table.name}_noisy")


def corrupt(
    table: Table,
    rate: float,
    rng: np.random.Generator | int | None = None,
) -> Table:
    """Apply all three corruptions at ``rate / 3`` each (a realistic mix)."""
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    step = rate / 3.0
    dirty = inject_missing(table, step, rng)
    dirty = inject_outliers(dirty, step, rng=rng)
    dirty = inject_label_noise(dirty, step, rng)
    return dirty.rename(f"{table.name}_dirty")
