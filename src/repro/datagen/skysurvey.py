"""Sky-survey generator: the SDSS stand-in of Section 5.2.

The paper names the Sloan Digital Sky Survey as a target "real life
database".  SDSS data is not available offline, so this generator emits a
photometric catalog with the same *shape*: positions, magnitudes in five
bands with realistic color correlations, redshift, and an object class —
and with the statistical dependencies an explorer would discover
(class ↔ redshift, class ↔ colors, magnitudes correlated across bands).

Object classes: STAR (z ≈ 0, blue-ish colors), GALAXY (z ~ 0.1, red-ish),
QSO (z ~ 1.5, point-like and blue).  Values are loosely calibrated to the
public SDSS DR7 ranges; only the dependency structure matters for the
experiments.
"""

from __future__ import annotations

import numpy as np

from repro.dataset.column import CategoricalColumn, NumericColumn
from repro.dataset.table import Table

_CLASSES = ("STAR", "GALAXY", "QSO")
_CLASS_PROBS = (0.45, 0.45, 0.10)


def sky_survey_table(n_rows: int = 20_000, seed: int | None = 0) -> Table:
    """Generate an SDSS-like photometric catalog.

    Columns: ``ra``, ``dec`` (degrees), ``class``, ``redshift``,
    magnitudes ``mag_u``, ``mag_g``, ``mag_r``, ``mag_i``, ``mag_z``.
    """
    rng = np.random.default_rng(seed)

    ra = rng.uniform(0.0, 360.0, n_rows)
    dec = rng.uniform(-10.0, 70.0, n_rows)

    object_class = rng.choice(len(_CLASSES), size=n_rows, p=_CLASS_PROBS)
    is_star = object_class == 0
    is_galaxy = object_class == 1
    is_qso = object_class == 2

    redshift = np.empty(n_rows, dtype=np.float64)
    redshift[is_star] = np.abs(rng.normal(0.0, 0.0005, int(is_star.sum())))
    redshift[is_galaxy] = np.abs(rng.normal(0.12, 0.06, int(is_galaxy.sum())))
    redshift[is_qso] = np.abs(rng.normal(1.5, 0.6, int(is_qso.sum())))

    # r-band magnitude baseline per class, then colors relative to r.
    mag_r = np.empty(n_rows, dtype=np.float64)
    mag_r[is_star] = rng.normal(17.5, 1.4, int(is_star.sum()))
    mag_r[is_galaxy] = rng.normal(19.2, 1.1, int(is_galaxy.sum()))
    mag_r[is_qso] = rng.normal(19.6, 0.9, int(is_qso.sum()))

    g_minus_r = np.where(
        is_galaxy, rng.normal(0.85, 0.25, n_rows), rng.normal(0.35, 0.25, n_rows)
    )
    u_minus_g = np.where(
        is_qso, rng.normal(0.25, 0.20, n_rows), rng.normal(1.10, 0.40, n_rows)
    )
    r_minus_i = rng.normal(0.35, 0.15, n_rows)
    i_minus_z = rng.normal(0.25, 0.15, n_rows)

    mag_g = mag_r + g_minus_r
    mag_u = mag_g + u_minus_g
    mag_i = mag_r - r_minus_i
    mag_z = mag_i - i_minus_z

    labels = [_CLASSES[c] for c in object_class]
    return Table(
        [
            NumericColumn("ra", ra),
            NumericColumn("dec", dec),
            CategoricalColumn.from_values("class", labels),
            NumericColumn("redshift", np.round(redshift, 5)),
            NumericColumn("mag_u", np.round(mag_u, 3)),
            NumericColumn("mag_g", np.round(mag_g, 3)),
            NumericColumn("mag_r", np.round(mag_r, 3)),
            NumericColumn("mag_i", np.round(mag_i, 3)),
            NumericColumn("mag_z", np.round(mag_z, 3)),
        ],
        name="skysurvey",
    )
