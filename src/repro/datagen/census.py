"""Census-like survey generator: the paper's Figure-2 dataset.

The introductory example explores a survey with attributes Age, Sex,
Salary, Education and Eye color, and expects Atlas to produce (at least)
two maps: one over {Age, Sex} and one over {Education, Salary}, while Eye
color pairs with neither ("it seems more natural to group Education with
Salary rather than with Eye color").

The generator plants exactly those dependencies:

* Age is bimodal (young/old population) so age cuts are meaningful;
* Sex depends on Age (the older group skews female) — making the
  {Age, Sex} candidate maps statistically dependent;
* Salary depends strongly on Education (MSc earns ``>50k`` far more
  often) — making {Education, Salary} dependent;
* Eye color is independent of everything;
* the two dependent blocks are independent of each other, so the two
  maps of Figure 2 come out as *separate* clusters.

``include_key_columns=True`` adds a respondent id and a free-text-like
name column to exercise the Section-5.2 cardinality guard.
"""

from __future__ import annotations

import numpy as np

from repro.dataset.column import CategoricalColumn, NumericColumn
from repro.dataset.table import Table

#: Probability of the young age mode.
_YOUNG_WEIGHT = 0.55
#: P(Female | young) and P(Female | old).
_P_FEMALE_YOUNG = 0.20
_P_FEMALE_OLD = 0.78
#: P(MSc) overall, and P(>50k | education).
_P_MSC = 0.40
_P_HIGH_GIVEN_MSC = 0.80
_P_HIGH_GIVEN_BSC = 0.22
#: Eye color marginal (independent of everything).
_EYE_COLORS = ("Blue", "Green", "Brown")
_EYE_PROBS = (0.35, 0.20, 0.45)


def census_table(
    n_rows: int = 10_000,
    seed: int | None = 0,
    include_key_columns: bool = False,
) -> Table:
    """Generate the Figure-2 survey dataset.

    Columns: ``Age`` (numeric, 17–90), ``Sex``, ``Salary`` (``<50k`` /
    ``>50k``), ``Education`` (``BSc`` / ``MSc``), ``Eye color``.
    """
    rng = np.random.default_rng(seed)

    young = rng.random(n_rows) < _YOUNG_WEIGHT
    age = np.where(
        young,
        rng.normal(28.0, 6.0, n_rows),
        rng.normal(58.0, 9.0, n_rows),
    )
    age = np.clip(np.round(age), 17, 90).astype(np.float64)

    p_female = np.where(young, _P_FEMALE_YOUNG, _P_FEMALE_OLD)
    female = rng.random(n_rows) < p_female
    sex = np.where(female, "Female", "Male")

    msc = rng.random(n_rows) < _P_MSC
    education = np.where(msc, "MSc", "BSc")
    p_high = np.where(msc, _P_HIGH_GIVEN_MSC, _P_HIGH_GIVEN_BSC)
    high_salary = rng.random(n_rows) < p_high
    salary = np.where(high_salary, ">50k", "<50k")

    eye = rng.choice(_EYE_COLORS, size=n_rows, p=_EYE_PROBS)

    columns = [
        NumericColumn("Age", age),
        CategoricalColumn.from_values("Sex", sex.tolist()),
        CategoricalColumn.from_values("Salary", salary.tolist()),
        CategoricalColumn.from_values("Education", education.tolist()),
        CategoricalColumn.from_values("Eye color", eye.tolist()),
    ]
    if include_key_columns:
        ids = np.arange(n_rows, dtype=np.float64)
        names = [f"respondent-{i:07d}" for i in range(n_rows)]
        columns.append(NumericColumn("RespondentId", ids))
        columns.append(CategoricalColumn.from_values("Name", names))
    return Table(columns, name="census")
