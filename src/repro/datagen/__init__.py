"""Synthetic dataset generators for the reproduction experiments.

The paper's real datasets (a survey, SDSS, TPC benchmarks) are not
available offline; these generators reproduce their schemas and — more
importantly — the statistical dependency structure each experiment needs.
See DESIGN.md §2 for the substitution rationale.
"""

from repro.datagen.census import census_table
from repro.datagen.dirty import (
    corrupt,
    inject_label_noise,
    inject_missing,
    inject_outliers,
)
from repro.datagen.documents import support_tickets_table
from repro.datagen.shapes import (
    bimodal_values,
    shape_table,
    skewed_values,
    uniform_values,
)
from repro.datagen.skysurvey import sky_survey_table
from repro.datagen.stream import StreamDriver, StreamEvent, split_for_streaming
from repro.datagen.subspace import (
    SubspaceDataset,
    SubspaceSpec,
    default_specs,
    figure5_dataset,
    subspace_dataset,
)
from repro.datagen.tpc import tpc_catalog

__all__ = [
    "SubspaceDataset",
    "SubspaceSpec",
    "bimodal_values",
    "census_table",
    "corrupt",
    "default_specs",
    "figure5_dataset",
    "inject_label_noise",
    "inject_missing",
    "inject_outliers",
    "shape_table",
    "skewed_values",
    "sky_survey_table",
    "split_for_streaming",
    "StreamDriver",
    "StreamEvent",
    "subspace_dataset",
    "support_tickets_table",
    "tpc_catalog",
    "uniform_values",
]
