"""Document-bearing dataset: a support-ticket table with a text column.

The text-exploration experiments (E24) need a mixed table — numeric,
categorical, *and* free-ish text — whose text carries real structure:
a ``title`` assembled from component-specific vocabulary, so token
predicates (``title match 'disk'``) restrict to coherent slices that
the numeric/categorical attributes can then explain.

Planted dependencies:

* ``component`` picks the title's subject noun (storage tickets say
  "disk"/"volume", auth tickets say "login"/"token", ...);
* ``severity`` depends on ``component`` (infrastructure components
  skew severe) and picks the title's issue word (critical tickets say
  "outage"/"failure", low ones say "question"/"cleanup");
* ``hours_open`` is lognormal with a severity-dependent scale, so
  severity cuts are informative on the numeric axis too.

Titles embed an entity id, so their distinct count grows with
``n_entities`` — past the Section-5.2 cardinality guard
(:data:`repro.dataset.types` ``TEXT_CARDINALITY_LIMIT``) the column is
classed TEXT and excluded from dimension attributes, exactly the
regime the text predicates are for.  Generation assembles each title
in Python on purpose: regenerating a large document table is the
honest "cold boot" cost the persistent store's warm start is measured
against.
"""

from __future__ import annotations

import numpy as np

from repro.dataset.column import CategoricalColumn, NumericColumn
from repro.dataset.table import Table

#: Subject nouns per component — the vocabulary a title draws from.
_COMPONENT_NOUNS = {
    "storage": ("disk", "volume", "raid", "snapshot"),
    "network": ("packet", "latency", "dns", "gateway"),
    "auth": ("login", "token", "password", "session"),
    "ui": ("render", "layout", "button", "modal"),
    "api": ("endpoint", "timeout", "schema", "quota"),
    "billing": ("invoice", "charge", "refund", "subscription"),
}
_COMPONENTS = tuple(_COMPONENT_NOUNS)
#: P(component) — infrastructure-heavy, like a real queue.
_COMPONENT_PROBS = (0.24, 0.20, 0.18, 0.14, 0.14, 0.10)

_SEVERITIES = ("low", "medium", "high", "critical")
#: P(severity | component): storage/network skew severe, ui/billing mild.
_SEVERITY_GIVEN_COMPONENT = {
    "storage": (0.15, 0.30, 0.35, 0.20),
    "network": (0.15, 0.30, 0.35, 0.20),
    "auth": (0.25, 0.35, 0.25, 0.15),
    "ui": (0.45, 0.35, 0.15, 0.05),
    "api": (0.30, 0.35, 0.25, 0.10),
    "billing": (0.40, 0.35, 0.20, 0.05),
}
#: Issue words per severity — the second planted text correlation.
_ISSUE_WORDS = {
    "low": ("question", "cleanup", "typo", "request"),
    "medium": ("warning", "slowdown", "mismatch", "retry"),
    "high": ("error", "regression", "spike", "corruption"),
    "critical": ("outage", "failure", "breach", "loss"),
}
#: Lognormal scale of hours_open per severity (severe -> longer).
_HOURS_SCALE = {"low": 4.0, "medium": 12.0, "high": 36.0, "critical": 96.0}


def support_tickets_table(
    n_rows: int = 20_000,
    seed: int | None = 0,
    n_entities: int = 500,
) -> Table:
    """Generate the support-ticket document table.

    Columns: ``hours_open`` (numeric), ``severity``, ``component``
    (categorical), ``title`` (text: high-cardinality categorical).
    """
    if n_rows < 1:
        raise ValueError(f"n_rows must be >= 1, got {n_rows}")
    if n_entities < 1:
        raise ValueError(f"n_entities must be >= 1, got {n_entities}")
    rng = np.random.default_rng(seed)

    component_idx = rng.choice(
        len(_COMPONENTS), size=n_rows, p=_COMPONENT_PROBS
    )
    severity_idx = np.empty(n_rows, dtype=np.int64)
    for index, component in enumerate(_COMPONENTS):
        rows = component_idx == index
        severity_idx[rows] = rng.choice(
            len(_SEVERITIES),
            size=int(rows.sum()),
            p=_SEVERITY_GIVEN_COMPONENT[component],
        )

    scale = np.asarray(
        [_HOURS_SCALE[_SEVERITIES[i]] for i in severity_idx],
        dtype=np.float64,
    )
    hours_open = np.round(
        scale * rng.lognormal(mean=0.0, sigma=0.8, size=n_rows), 1
    )

    noun_pick = rng.integers(0, 4, size=n_rows)
    issue_pick = rng.integers(0, 4, size=n_rows)
    entity = rng.integers(0, n_entities, size=n_rows)
    titles = []
    for i in range(n_rows):
        component = _COMPONENTS[component_idx[i]]
        noun = _COMPONENT_NOUNS[component][noun_pick[i]]
        issue = _ISSUE_WORDS[_SEVERITIES[severity_idx[i]]][issue_pick[i]]
        titles.append(f"{noun} {issue} on {component} node {entity[i]}")

    return Table(
        [
            NumericColumn("hours_open", hours_open),
            CategoricalColumn.from_values(
                "severity", [_SEVERITIES[i] for i in severity_idx]
            ),
            CategoricalColumn.from_values(
                "component", [_COMPONENTS[i] for i in component_idx]
            ),
            CategoricalColumn.from_values("title", titles),
        ],
        name="support_tickets",
    )
