"""Streaming workload driver: timed append batches for benchmarks.

Production tables grow while users explore; the streaming benchmarks
(E19) and the differential test suites need a reproducible way to turn
any generated table into "a table that grows".  Two pieces:

* :func:`split_for_streaming` — deterministically split a table into an
  initial prefix plus ``n_batches`` append deltas.  Splitting one
  generated table (instead of generating per-batch) keeps the joint
  distribution of the final data identical to the non-streaming
  experiment, so exact-vs-sketch agreement floors carry over.
* :class:`StreamDriver` — replay those deltas into any append callable
  (``Table.append``, ``ExplorationService.append``,
  ``ServiceClient.append``) on a wall-clock schedule.  The clock and
  sleeper are injectable so tests replay instantly while benchmarks can
  emit batches at a realistic cadence.
"""

from __future__ import annotations

import dataclasses
import time
from collections.abc import Callable, Iterator

import numpy as np

from repro.dataset.table import Table
from repro.errors import DatasetError


def split_for_streaming(
    table: Table,
    n_batches: int,
    initial_fraction: float = 0.5,
    shuffle_seed: int | None = None,
) -> tuple[Table, tuple[Table, ...]]:
    """Split ``table`` into an initial prefix and ``n_batches`` deltas.

    The split is by row position — the first ``initial_fraction`` of the
    rows form the starting table, the rest arrive as equal append
    batches (the last batch absorbs the remainder).  Pass
    ``shuffle_seed`` to permute rows first when the generator's row
    order is not exchangeable.  Appending every delta in order rebuilds
    the input rows exactly (at version ``n_batches``), which is what
    makes differential streaming tests meaningful.
    """
    if n_batches < 1:
        raise DatasetError(f"n_batches must be >= 1, got {n_batches}")
    if not 0.0 < initial_fraction < 1.0:
        raise DatasetError(
            f"initial_fraction must be in (0, 1), got {initial_fraction}"
        )
    if table.n_rows < n_batches + 1:
        raise DatasetError(
            f"cannot split {table.n_rows} rows into an initial table "
            f"plus {n_batches} non-empty batches"
        )
    if shuffle_seed is not None:
        rng = np.random.default_rng(shuffle_seed)
        table = table.take(rng.permutation(table.n_rows), name=table.name)
    initial_rows = int(table.n_rows * initial_fraction)
    initial_rows = max(1, min(initial_rows, table.n_rows - n_batches))
    initial = table.take(np.arange(initial_rows), name=table.name)
    remaining = table.n_rows - initial_rows
    batch_rows = remaining // n_batches
    batches = []
    start = initial_rows
    for index in range(n_batches):
        stop = table.n_rows if index == n_batches - 1 else start + batch_rows
        batches.append(
            table.take(
                np.arange(start, stop), name=f"{table.name}_batch{index}"
            )
        )
        start = stop
    return initial, tuple(batches)


@dataclasses.dataclass(frozen=True)
class StreamEvent:
    """One replayed batch: what was appended and when."""

    index: int
    #: Rows in this batch.
    rows: int
    #: Seconds since the replay started when the batch was emitted.
    at_seconds: float
    #: Whatever the append callable returned (a new ``Table``, an
    #: ``AppendResponse``, ...).
    result: object


class StreamDriver:
    """Replay append batches into a sink on a wall-clock schedule.

    Parameters
    ----------
    batches:
        Delta tables, usually from :func:`split_for_streaming`.
    interval_seconds:
        Pause between batch emissions (0 = as fast as possible).
    clock, sleep:
        Injectable time sources; tests pass fakes to replay instantly
        while asserting the schedule.
    """

    def __init__(
        self,
        batches: "tuple[Table, ...] | list[Table]",
        interval_seconds: float = 0.0,
        *,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if interval_seconds < 0:
            raise DatasetError(
                f"interval_seconds must be >= 0, got {interval_seconds}"
            )
        self._batches = tuple(batches)
        self._interval = float(interval_seconds)
        self._clock = clock
        self._sleep = sleep

    @property
    def batches(self) -> tuple[Table, ...]:
        """The delta tables, emission order."""
        return self._batches

    def replay(
        self, append: Callable[[Table], object]
    ) -> Iterator[StreamEvent]:
        """Emit every batch into ``append``, pacing by the interval.

        Yields one :class:`StreamEvent` per batch as it lands, so a
        caller can interleave exploration with ingestion — the
        streaming benchmark explores after every event::

            driver = StreamDriver(batches, interval_seconds=0.5)
            for event in driver.replay(lambda b: service.append(name, b)):
                service.explore(name, query)
        """
        started = self._clock()
        for index, batch in enumerate(self._batches):
            if index and self._interval:
                self._sleep(self._interval)
            result = append(batch)
            yield StreamEvent(
                index=index,
                rows=batch.n_rows,
                at_seconds=self._clock() - started,
                result=result,
            )
