"""One-dimensional distribution shapes for the cut-strategy ablation (E3).

Section 3.1 weighs cutting strategies against each other: equi-width is
"fast and intuitive" but "does not tell much about the shape of the
underlying distribution"; the intra-cluster-distance split "tells much
more about the data but requires more calculations".  These generators
provide the distribution shapes on which that trade-off shows:
uniform (all strategies agree), skewed (equi-width collapses), bimodal
(only the 2-means split finds the gap).
"""

from __future__ import annotations

import numpy as np

from repro.dataset.column import NumericColumn
from repro.dataset.table import Table


def uniform_values(
    n: int, low: float = 0.0, high: float = 100.0, seed: int | None = 0
) -> np.ndarray:
    """Uniform values on [low, high]."""
    rng = np.random.default_rng(seed)
    return rng.uniform(low, high, n)


def skewed_values(
    n: int, shape: float = 1.5, scale: float = 10.0, seed: int | None = 0
) -> np.ndarray:
    """Right-skewed (lognormal-like) values: a long, thin upper tail."""
    rng = np.random.default_rng(seed)
    return rng.lognormal(mean=np.log(scale), sigma=shape, size=n)


def bimodal_values(
    n: int,
    centers: tuple[float, float] = (20.0, 80.0),
    spread: float = 5.0,
    weight: float = 0.5,
    seed: int | None = 0,
) -> np.ndarray:
    """Two well-separated Gaussian modes (ground-truth gap between them)."""
    rng = np.random.default_rng(seed)
    first = rng.random(n) < weight
    return np.where(
        first,
        rng.normal(centers[0], spread, n),
        rng.normal(centers[1], spread, n),
    )


def shape_table(n: int = 20_000, seed: int | None = 0) -> Table:
    """A table with one column per shape (for ablation runs)."""
    return Table(
        [
            NumericColumn("uniform", uniform_values(n, seed=seed)),
            NumericColumn("skewed", skewed_values(n, seed=seed)),
            NumericColumn("bimodal", bimodal_values(n, seed=seed)),
        ],
        name="shapes",
    )
