"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`AtlasError`, so
applications embedding the engine can catch one type.  Sub-classes mirror
the architectural layers: dataset substrate, query language, map engine.
"""

from __future__ import annotations


class AtlasError(Exception):
    """Base class for all errors raised by the repro package."""


class DatasetError(AtlasError):
    """Problems in the columnar dataset substrate (bad column, bad shape)."""


class SchemaError(DatasetError):
    """A table or catalog schema is inconsistent (unknown column, dup name)."""


class TypeInferenceError(DatasetError):
    """Raw values could not be coerced into a supported column type."""


class CatalogError(DatasetError):
    """Multi-table catalog problems: unknown table, broken foreign key."""


class QueryError(AtlasError):
    """Problems in the conjunctive query layer."""


class PredicateError(QueryError):
    """A predicate is malformed (empty set, inverted range, wrong type)."""


class ParseError(QueryError):
    """The textual query syntax could not be parsed."""


class MapError(AtlasError):
    """Problems constructing or combining data maps."""


class ConfigError(AtlasError):
    """An AtlasConfig value is out of its documented domain."""


class SketchError(AtlasError):
    """A streaming sketch was misused (e.g. query before any insert)."""


class StoreError(AtlasError):
    """Problems in the persistent table store (schema drift, bad replay)."""
