"""Naive equi-width grid maps: the no-intelligence baseline.

What a front-end without Atlas's dependency detection and data-adaptive
cutting would do: take attributes in schema order, equi-width cut each in
two, and return the plain product grid.  Used by the merge-strategy and
baseline benchmarks as the floor to beat.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.config import AtlasConfig, NumericCutStrategy
from repro.core.cut import cut
from repro.core.datamap import DataMap
from repro.core.merge import product
from repro.dataset.table import Table
from repro.errors import MapError
from repro.query.query import ConjunctiveQuery


def grid_map(
    table: Table,
    attributes: Sequence[str],
    query: ConjunctiveQuery | None = None,
    n_splits: int = 2,
) -> DataMap:
    """Equi-width product grid over the given attributes."""
    if not attributes:
        raise MapError("grid_map needs at least one attribute")
    query = query or ConjunctiveQuery()
    config = AtlasConfig(
        numeric_strategy=NumericCutStrategy.EQUIWIDTH,
        n_splits=n_splits,
        max_regions=max(8, n_splits ** len(attributes)),
    )
    pieces = []
    for attribute in attributes:
        piece = cut(table, query, attribute, config)
        if not piece.is_trivial:
            pieces.append(piece)
    if not pieces:
        raise MapError("no attribute could be cut into a grid")
    merged = product(pieces, table)
    return merged.relabel("grid:" + "×".join(attributes))
