"""Exhaustive tuple-level single-link dendrogram (the Section-2 strawman).

"Instead of returning one exhaustive solution as most clustering
algorithms would (for instance, a dendogram) [sic], Atlas should return
several easily understandable maps."  To benchmark that contrast we need
the exhaustive solution: a full single-link hierarchy over *tuples* (not
maps).  Implemented as Prim's minimum-spanning-tree pass — O(n²) time,
O(n) memory — which yields exactly the single-link merge order (SLINK-
equivalent result).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import AtlasError


@dataclasses.dataclass(frozen=True)
class Dendrogram:
    """A single-link hierarchy encoded by its MST edges, heaviest last."""

    #: (n-1, 2) int array of edge endpoints, sorted by weight ascending.
    edges: np.ndarray
    #: (n-1,) edge weights, ascending.
    weights: np.ndarray
    n_points: int

    def cut(self, k: int) -> np.ndarray:
        """Labels for the ``k``-cluster flat clustering (drop k−1 edges)."""
        if not 1 <= k <= self.n_points:
            raise AtlasError(
                f"k must be in [1, {self.n_points}], got {k}"
            )
        parent = np.arange(self.n_points)

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        keep = self.edges[: self.n_points - k]
        for a, b in keep:
            root_a, root_b = find(int(a)), find(int(b))
            if root_a != root_b:
                parent[root_b] = root_a
        roots = np.array([find(i) for i in range(self.n_points)])
        _, labels = np.unique(roots, return_inverse=True)
        return labels

    def cut_at(self, height: float) -> np.ndarray:
        """Labels after merging all edges with weight <= ``height``."""
        k = self.n_points - int((self.weights <= height).sum())
        return self.cut(max(1, k))


def single_link_dendrogram(points: np.ndarray) -> Dendrogram:
    """Build the exhaustive single-link hierarchy of ``points`` (n, d).

    Prim's algorithm over the complete Euclidean graph: O(n²) distance
    evaluations, no n×n matrix kept in memory.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim == 1:
        points = points[:, None]
    n = points.shape[0]
    if n < 2:
        raise AtlasError("need at least two points for a dendrogram")

    in_tree = np.zeros(n, dtype=bool)
    best_dist = np.full(n, np.inf)
    best_from = np.zeros(n, dtype=np.int64)
    in_tree[0] = True
    diff = points - points[0]
    best_dist = (diff * diff).sum(axis=1)
    best_dist[0] = np.inf
    best_from[:] = 0

    edges = np.empty((n - 1, 2), dtype=np.int64)
    weights = np.empty(n - 1, dtype=np.float64)
    for step in range(n - 1):
        nxt = int(np.argmin(best_dist))
        edges[step] = (best_from[nxt], nxt)
        weights[step] = np.sqrt(best_dist[nxt])
        in_tree[nxt] = True
        best_dist[nxt] = np.inf
        diff = points - points[nxt]
        dist = (diff * diff).sum(axis=1)
        closer = (dist < best_dist) & ~in_tree
        best_dist[closer] = dist[closer]
        best_from[closer] = nxt

    order = np.argsort(weights, kind="stable")
    return Dendrogram(
        edges=edges[order], weights=weights[order], n_points=n
    )
