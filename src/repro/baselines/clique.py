"""CLIQUE-style subspace clustering: the exhaustive comparator (Section 6).

Atlas is positioned against classic subspace clustering ("we do not aim
at finding all the clusters in the data... all other approaches return
one exhaustive list of clusters/subspaces").  CLIQUE (Agrawal et al.,
SIGMOD 1998) is the canonical bottom-up representative: grid every
dimension, keep dense units, join them Apriori-style into higher-
dimensional dense units, and connect adjacent units into clusters.

This is deliberately the exhaustive algorithm — the benchmark contrasts
its runtime and output volume against Atlas's lazy top-k maps.
"""

from __future__ import annotations

import dataclasses
import itertools
from collections.abc import Sequence

import numpy as np

from repro.dataset.column import NumericColumn
from repro.dataset.table import Table
from repro.errors import AtlasError

#: A unit is identified by its subspace and per-attribute bin indices.
Unit = tuple[tuple[str, ...], tuple[int, ...]]


@dataclasses.dataclass(frozen=True)
class SubspaceCluster:
    """One cluster: a subspace plus the member row indices."""

    attributes: tuple[str, ...]
    rows: np.ndarray

    @property
    def size(self) -> int:
        """Number of member rows."""
        return int(self.rows.size)


@dataclasses.dataclass(frozen=True)
class CliqueResult:
    """All dense subspaces and their clusters."""

    clusters: tuple[SubspaceCluster, ...]
    n_dense_units: int
    n_subspaces_examined: int

    def clusters_in(self, attributes: Sequence[str]) -> list[SubspaceCluster]:
        """Clusters found in exactly the given subspace."""
        key = tuple(attributes)
        return [c for c in self.clusters if c.attributes == key]


def clique(
    table: Table,
    xi: int = 10,
    tau: float = 0.02,
    max_dimensions: int = 2,
) -> CliqueResult:
    """Run CLIQUE over the numeric columns of ``table``.

    Parameters
    ----------
    xi:
        Number of equi-width bins per dimension.
    tau:
        Density threshold: a unit is dense when it holds more than
        ``tau`` of all rows.
    max_dimensions:
        Cap on subspace dimensionality (the Apriori lattice grows fast).
    """
    if xi < 2:
        raise AtlasError(f"xi must be >= 2, got {xi}")
    if not 0.0 < tau < 1.0:
        raise AtlasError(f"tau must be in (0, 1), got {tau}")

    numeric = [c for c in table.columns if isinstance(c, NumericColumn)]
    if not numeric:
        raise AtlasError("CLIQUE needs at least one numeric column")
    n_rows = table.n_rows
    min_count = tau * n_rows

    # Bin every numeric column once.
    bins: dict[str, np.ndarray] = {}
    for col in numeric:
        data = col.data
        low, high = np.nanmin(data), np.nanmax(data)
        if high <= low:
            continue
        edges = np.linspace(low, high, xi + 1)
        binned = np.clip(np.searchsorted(edges, data, side="right") - 1, 0, xi - 1)
        binned = np.where(np.isnan(data), -1, binned)
        bins[col.name] = binned.astype(np.int64)

    # 1-D dense units.
    dense: dict[Unit, np.ndarray] = {}
    subspaces_examined = 0
    for name, binned in bins.items():
        subspaces_examined += 1
        for bin_index in range(xi):
            rows = np.nonzero(binned == bin_index)[0]
            if rows.size > min_count:
                dense[((name,), (bin_index,))] = rows

    # Apriori join to higher dimensions.
    current = {u: r for u, r in dense.items() if len(u[0]) == 1}
    dimension = 1
    while current and dimension < max_dimensions:
        dimension += 1
        candidates: dict[Unit, np.ndarray] = {}
        units = sorted(current)
        for (unit_a, rows_index_a), (unit_b, _) in itertools.combinations(
            zip(units, [current[u] for u in units]), 2
        ):
            attrs_a, bins_a = unit_a
            attrs_b, bins_b = unit_b
            if attrs_a[:-1] != attrs_b[:-1] or attrs_a[-1] >= attrs_b[-1]:
                continue
            if bins_a[:-1] != bins_b[:-1]:
                continue
            attrs = attrs_a + (attrs_b[-1],)
            cell = bins_a + (bins_b[-1],)
            rows = np.intersect1d(
                rows_index_a, current[unit_b], assume_unique=True
            )
            subspaces_examined += 1
            if rows.size > min_count:
                candidates[(attrs, cell)] = rows
        dense.update(candidates)
        current = candidates

    clusters = _connect_adjacent(dense)
    return CliqueResult(
        clusters=tuple(clusters),
        n_dense_units=len(dense),
        n_subspaces_examined=subspaces_examined,
    )


def _connect_adjacent(dense: dict[Unit, np.ndarray]) -> list[SubspaceCluster]:
    """Union adjacent dense units of the same subspace into clusters."""
    by_subspace: dict[tuple[str, ...], dict[tuple[int, ...], np.ndarray]] = {}
    for (attrs, cell), rows in dense.items():
        by_subspace.setdefault(attrs, {})[cell] = rows

    clusters: list[SubspaceCluster] = []
    for attrs, cells in sorted(by_subspace.items()):
        unvisited = set(cells)
        while unvisited:
            seed = unvisited.pop()
            component = [seed]
            frontier = [seed]
            while frontier:
                cell = frontier.pop()
                for axis in range(len(cell)):
                    for delta in (-1, 1):
                        neighbour = (
                            cell[:axis] + (cell[axis] + delta,) + cell[axis + 1:]
                        )
                        if neighbour in unvisited:
                            unvisited.remove(neighbour)
                            component.append(neighbour)
                            frontier.append(neighbour)
            rows = np.unique(
                np.concatenate([cells[cell] for cell in component])
            )
            clusters.append(SubspaceCluster(attributes=attrs, rows=rows))
    return clusters
