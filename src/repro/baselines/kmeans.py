"""K-means clustering: the centroid-based alternative of Section 3.2.

The paper *rejects* K-means for map clustering ("we do not know a priori
the numbers of clusters to form"); we implement it anyway, both as the
comparison baseline that argument needs and as the engine behind the
intra-cluster-distance CUT generalization (Lloyd in 1-D).

Includes k-means++ seeding and an exact 1-D 2-means used to validate the
CUT twomeans strategy against brute force.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import AtlasError


@dataclasses.dataclass(frozen=True)
class KMeansResult:
    """Fitted clustering: centroids, assignment, and inertia (total SSE)."""

    centroids: np.ndarray
    labels: np.ndarray
    inertia: float
    n_iterations: int


def kmeans(
    points: np.ndarray,
    k: int,
    max_iterations: int = 100,
    rng: np.random.Generator | int | None = None,
) -> KMeansResult:
    """Lloyd's algorithm with k-means++ seeding.

    ``points`` is (n, d); returns centroids (k, d), labels (n,), inertia.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim == 1:
        points = points[:, None]
    n = points.shape[0]
    if not 1 <= k <= n:
        raise AtlasError(f"k must be in [1, {n}], got {k}")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)

    centroids = _kmeans_pp_seeds(points, k, rng)
    labels = np.zeros(n, dtype=np.int64)
    for iteration in range(1, max_iterations + 1):
        distances = _sq_distances(points, centroids)
        new_labels = np.argmin(distances, axis=1)
        for cluster in range(k):
            members = points[new_labels == cluster]
            if members.shape[0]:
                centroids[cluster] = members.mean(axis=0)
        if np.array_equal(new_labels, labels) and iteration > 1:
            labels = new_labels
            break
        labels = new_labels
    inertia = float(
        ((points - centroids[labels]) ** 2).sum()
    )
    return KMeansResult(
        centroids=centroids, labels=labels, inertia=inertia,
        n_iterations=iteration,
    )


def _kmeans_pp_seeds(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    n = points.shape[0]
    seeds = np.empty((k, points.shape[1]), dtype=np.float64)
    seeds[0] = points[rng.integers(n)]
    closest = ((points - seeds[0]) ** 2).sum(axis=1)
    for index in range(1, k):
        total = closest.sum()
        if total <= 0:
            seeds[index:] = seeds[0]
            break
        probabilities = closest / total
        choice = rng.choice(n, p=probabilities)
        seeds[index] = points[choice]
        closest = np.minimum(
            closest, ((points - seeds[index]) ** 2).sum(axis=1)
        )
    return seeds


def _sq_distances(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    return ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)


def exact_two_means_1d(values: np.ndarray) -> tuple[float, float]:
    """Exact 1-D 2-means by brute-force boundary scan.

    Returns ``(cut_point, total_sse)``.  Used to validate the CUT
    ``twomeans`` strategy (which uses an O(n log n) prefix scan).
    """
    ordered = np.sort(np.asarray(values, dtype=np.float64))
    n = ordered.size
    if n < 2 or ordered[0] == ordered[-1]:
        raise AtlasError("need at least two distinct values")
    best_sse = float("inf")
    best_cut = float(ordered[0])
    for split in range(1, n):
        if ordered[split - 1] == ordered[split]:
            continue
        left, right = ordered[:split], ordered[split:]
        sse = float(((left - left.mean()) ** 2).sum()
                    + ((right - right.mean()) ** 2).sum())
        if sse < best_sse:
            best_sse = sse
            best_cut = float((ordered[split - 1] + ordered[split]) / 2.0)
    return best_cut, best_sse
