"""Baseline algorithms Atlas is compared against (paper Sections 2, 3.2, 6).

K-means (the rejected centroid method), CLIQUE-style exhaustive subspace
clustering, the exhaustive tuple-level single-link dendrogram, and the
naive equi-width grid.
"""

from repro.baselines.clique import CliqueResult, SubspaceCluster, clique
from repro.baselines.dendrogram import Dendrogram, single_link_dendrogram
from repro.baselines.grid import grid_map
from repro.baselines.kmeans import KMeansResult, exact_two_means_1d, kmeans

__all__ = [
    "CliqueResult",
    "Dendrogram",
    "KMeansResult",
    "SubspaceCluster",
    "clique",
    "exact_two_means_1d",
    "grid_map",
    "kmeans",
    "single_link_dendrogram",
]
