"""Table sources: where served tables come from.

Four shapes, one interface (:class:`TableSource.load`):

* :class:`InMemorySource` — a table the host process already holds,
* a :mod:`repro.datagen` generator spec built by :func:`build_table`
  (what ``POST /tables`` accepts over the wire),
* :class:`ConnectionSource` — a relation behind a :mod:`repro.db`
  connection (:class:`~repro.db.connection.NativeConnection` or the
  SQL-text-only :class:`~repro.db.connection.SqlConnection`), so the
  same endpoint serves ``SqlAtlas``-style DBMS-backed tables,
* :class:`StoreSource` — a table persisted in a
  :class:`~repro.store.store.TableStore`, replayed (base + append log)
  on first use; what a restarted service's warm start loads from.

Sources are lazy: the service materializes a table on first use and
keeps it (tables are immutable), so registering a whole connection is
free until someone explores one of its relations.
"""

from __future__ import annotations

import abc

from repro.dataset.table import Table
from repro.db.connection import Connection
from repro.service.protocol import ProtocolError
from repro.store.store import TableStore

#: Wire-registrable dataset generators, keyed by the name clients use.
#: Each maps keyword parameters straight onto the generator call.
TABLE_GENERATORS: dict[str, object] = {}


def _register_generators() -> None:
    from repro.datagen import (
        census_table,
        shape_table,
        sky_survey_table,
        support_tickets_table,
    )

    TABLE_GENERATORS.update(
        {
            "census": census_table,
            "sky_survey": sky_survey_table,
            "shapes": shape_table,
            "support_tickets": support_tickets_table,
        }
    )


_register_generators()


def build_table(spec: dict) -> Table:
    """Materialize a table from a wire spec.

    Shape: ``{"generator": "census", "name": "t1", ...params}`` — the
    optional ``name`` renames the result (several differently-seeded
    census tables can coexist); every other key is passed to the
    generator as a keyword argument.
    """
    if not isinstance(spec, dict):
        raise ProtocolError(
            f"expected a table spec object, got {type(spec).__name__}"
        )
    params = dict(spec)
    generator_name = params.pop("generator", None)
    if generator_name not in TABLE_GENERATORS:
        known = ", ".join(sorted(TABLE_GENERATORS))
        raise ProtocolError(
            f"unknown table generator {generator_name!r}; known: {known}"
        )
    name = params.pop("name", None)
    generator = TABLE_GENERATORS[generator_name]
    try:
        table = generator(**params)
    except TypeError as exc:
        raise ProtocolError(
            f"bad parameters for generator {generator_name!r}: {exc}"
        ) from exc
    if name is not None:
        table = table.rename(str(name))
    return table


class TableSource(abc.ABC):
    """One way of obtaining a served table."""

    @abc.abstractmethod
    def load(self) -> Table:
        """Materialize the table (called once; the service caches it)."""

    @abc.abstractmethod
    def describe(self) -> str:
        """One-line provenance for ``/tables`` listings."""

    @property
    def default_name(self) -> str | None:
        """The name this source serves under when the caller gives none."""
        return None


class InMemorySource(TableSource):
    """A table the host process registered directly."""

    def __init__(self, table: Table):
        self._table = table

    def load(self) -> Table:
        return self._table

    def describe(self) -> str:
        version = self._table.version
        return (
            f"in-memory ({self._table.n_rows} rows"
            + (f", version {version}" if version else "")
            + ")"
        )

    @property
    def default_name(self) -> str | None:
        return self._table.name


class ConnectionSource(TableSource):
    """A relation fetched through a :mod:`repro.db` connection."""

    def __init__(self, connection: Connection, table_name: str):
        self._connection = connection
        self._table_name = table_name

    def load(self) -> Table:
        return self._connection.fetch(self._table_name)

    def describe(self) -> str:
        return f"connection ({type(self._connection).__name__})"

    @property
    def default_name(self) -> str | None:
        return self._table_name


class StoreSource(TableSource):
    """A table replayed from a persistent :class:`TableStore`.

    Loading decodes the stored base buffers and replays the append log
    through :meth:`repro.dataset.table.Table.append`, so the served
    table is bit-identical — rows, versions, dictionary order — to the
    one the writing process last held.
    """

    def __init__(self, store: TableStore, table_name: str):
        self._store = store
        self._table_name = table_name

    @property
    def store(self) -> TableStore:
        """The backing store (the catalog checks identity on persist)."""
        return self._store

    def load(self) -> Table:
        return self._store.load_table(self._table_name)

    def describe(self) -> str:
        info = self._store.describe(self._table_name)
        return (
            f"store ({info['n_rows']} rows, version {info['version']}, "
            f"{self._store.path})"
        )

    @property
    def default_name(self) -> str | None:
        return self._table_name
