"""A small blocking client for the exploration service.

Stdlib-only: one :class:`ServiceClient` per server, safe to share
across threads.  Requests ride a persistent keep-alive connection per
thread (:class:`~repro.service.transport.HttpTransport`) — connection
setup left the hot path when the cluster coordinator started making N
shard calls per query.  Answers come back as real
:class:`~repro.engine.pipeline.MapSet` objects — the same type a local
:func:`repro.explorer` call returns — so rendering, ranking access,
and region drill-down code is oblivious to the wire.

Typed failures: the server's error payload is resurrected into the
matching :class:`~repro.service.protocol.ServiceError` subclass, and
admission-control rejections can be retried transparently with
``explore(..., retry_busy=N)`` — linear backoff starting at one full
``busy_backoff`` step, with a small deterministic jitter so clients
rejected together do not retry in lockstep, raised to the server's
``retry_after`` hint when the rejection carries one.
"""

from __future__ import annotations

import time

from repro.core.config import AtlasConfig, Fidelity, Parallelism
from repro.query.query import ConjunctiveQuery
from repro.service.protocol import (
    PROTOCOL_VERSION,
    AdmissionError,
    AppendResponse,
    ExploreResponse,
    ProtocolError,
)
from repro.service.requests import (
    build_append_request,
    build_explore_request,
    build_register_payload,
    history_path,
)
from repro.service.transport import HttpTransport

#: Golden-ratio conjugate: attempt numbers map to well-spread phases in
#: [0, 1), giving repeatable jitter without any RNG.
_JITTER_STRIDE = 0.6180339887498949


def retry_delay(
    attempt: int, busy_backoff: float, error: AdmissionError
) -> float:
    """Seconds to sleep before busy-retry number ``attempt`` (>= 1).

    The base is ``busy_backoff * attempt`` — the multiplier starts at 1,
    so the *first* retry already waits a full step (an earlier build
    multiplied by the pre-increment attempt count and slept 0s, turning
    the first "retry" into an immediate hammer on a saturated server).
    A deterministic jitter of up to 25% spreads retries without RNG,
    and the server's ``retry_after`` hint, when present, is a floor —
    retrying earlier than the server asked can never succeed.
    """
    delay = busy_backoff * max(1, attempt)
    delay *= 1.0 + 0.25 * ((attempt * _JITTER_STRIDE) % 1.0)
    hint = getattr(error, "detail", {}).get("retry_after")
    if isinstance(hint, (int, float)) and not isinstance(hint, bool):
        delay = max(delay, float(hint))
    return delay


class ServiceClient:
    """Blocking JSON-over-HTTP access to an :class:`ExplorationService`.

    ``api_key`` authenticates every request as one tenant (sent as the
    ``X-Api-Key`` header); leave it ``None`` against servers that still
    accept anonymous callers.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        *,
        api_key: str | None = None,
    ):
        self._transport = HttpTransport(base_url, timeout=timeout)
        self._headers = {"X-Api-Key": api_key} if api_key else None

    @property
    def base_url(self) -> str:
        """The server's base URL."""
        return self._transport.base_url

    def close(self) -> None:
        """Close every persistent connection this client holds."""
        self._transport.close()

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #

    def health(self) -> dict:
        """Liveness probe; raises on protocol-version mismatch."""
        payload = self._request("GET", "/health")
        remote = payload.get("protocol")
        if remote != PROTOCOL_VERSION:
            raise ProtocolError(
                f"server speaks protocol {remote!r}, "
                f"client speaks {PROTOCOL_VERSION!r}"
            )
        return payload

    def tables(self) -> dict[str, str]:
        """Registered tables (name → provenance)."""
        return self._request("GET", "/tables")["tables"]

    def metrics(self) -> dict:
        """The server's metrics snapshot."""
        return self._request("GET", "/metrics")

    def history(
        self,
        limit: int = 50,
        *,
        tenant: str | None = None,
        status: str | None = None,
    ) -> list[dict]:
        """Recent request-journal entries, newest first."""
        path = history_path(limit, tenant=tenant, status=status)
        return self._request("GET", path)["history"]

    def register_table(self, generator: str, **params: object) -> str:
        """Register a generated table; returns its served name.

        ``params`` may include ``name`` (rename) and ``overwrite``
        besides the generator's own keyword arguments, e.g.::

            client.register_table("census", n_rows=20_000, seed=1,
                                  name="census_b")
        """
        payload = build_register_payload(generator, **params)
        return self._request("POST", "/tables", payload)["registered"]

    def append(self, table: str, rows: dict) -> AppendResponse:
        """Append rows to a served table (streaming).

        ``rows`` is columnar — ``{"Age": [30, 41], "Sex": ["F", "M"]}``
        — matching the local :meth:`Table.append` mapping shape.  The
        server maintains its statistics incrementally and answers all
        subsequent explores at the returned ``version``; its result
        cache can never serve a pre-append answer for it.
        """
        request = build_append_request(table, rows)
        payload = self._request("POST", "/append", request.to_dict())
        return AppendResponse.from_dict(payload)

    def explore(
        self,
        table: str,
        query: "str | dict | ConjunctiveQuery | None" = None,
        config: "dict | AtlasConfig | None" = None,
        use_cache: bool = True,
        *,
        fidelity: "str | Fidelity | None" = None,
        parallelism: "str | Parallelism | int | None" = None,
        deadline_seconds: float | None = None,
        retry_busy: int = 0,
        busy_backoff: float = 0.05,
    ) -> ExploreResponse:
        """Run one exploration on the server.

        ``query`` accepts the same shapes as the local facade: ``None``
        (whole table), paper-syntax text, a wire dict, or a parsed
        :class:`ConjunctiveQuery` (serialized transparently).
        ``fidelity`` asks the server for a specific execution fidelity
        (``"exact"``, ``"sketch[:rows[:eps]]"``, or a
        :class:`Fidelity`); ``parallelism`` asks for multi-core
        statistics builds (``"parallel:4"``, a :class:`Parallelism`,
        or a worker count — the server charges the request that many
        admission slots).  ``deadline_seconds`` bounds server-side
        work: a run still going when it expires is cancelled at the
        next stage boundary and answered with a 504
        :class:`~repro.service.protocol.DeadlineExceededError`.  On a
        429 rejection the call retries up to ``retry_busy`` times,
        sleeping :func:`retry_delay` seconds between tries.
        """
        request = build_explore_request(
            table,
            query,
            config,
            use_cache,
            fidelity=fidelity,
            parallelism=parallelism,
            deadline_seconds=deadline_seconds,
        )
        attempt = 0
        while True:
            try:
                payload = self._request(
                    "POST", "/explore", request.to_dict()
                )
                return ExploreResponse.from_dict(payload)
            except AdmissionError as error:
                if attempt >= retry_busy:
                    raise
                attempt += 1
                time.sleep(retry_delay(attempt, busy_backoff, error))

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #

    def _request(
        self, method: str, path: str, payload: dict | None = None
    ) -> dict:
        return self._transport.request(
            method, path, payload, headers=self._headers
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ServiceClient {self.base_url}>"
