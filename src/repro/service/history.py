"""A persistent, per-request query-history store.

Every request the service sees — answered, cached, shed, failed, or
deadline-cancelled — leaves one row here, so operators can ask "what
has tenant X been running and how did it go" (`/history`), and so the
session-aware prefetching planned in ROADMAP item 4 has transition data
to learn from.

Backed by stdlib ``sqlite3``: a file path makes the history survive
service restarts (WAL journal, ``busy_timeout``, ``synchronous=NORMAL``
— the Paper-Scanner pragmas); the default ``":memory:"`` keeps tests
and throwaway services free of disk state.  One connection guarded by
one lock: history writes are two tiny statements per request, far off
the pipeline's critical path, and a single writer sidesteps SQLite's
multi-writer contention entirely.

Statuses walk a small per-request machine::

    running ──> completed | cached | failed | deadline_exceeded
    (terminal on arrival: rejected | rate_limited | unauthorized)
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time

#: Every status a history row can carry.
STATUSES = (
    "running",
    "completed",
    "cached",
    "failed",
    "deadline_exceeded",
    "rejected",
    "rate_limited",
    "unauthorized",
)

#: Statuses a request can be *born* with (shed before any work ran).
TERMINAL_ON_ARRIVAL = ("rejected", "rate_limited", "unauthorized")

_SCHEMA_VERSION = 1

_CREATE = """
CREATE TABLE IF NOT EXISTS query_history (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    created REAL NOT NULL,
    tenant TEXT NOT NULL,
    table_name TEXT NOT NULL,
    query TEXT,
    fidelity TEXT,
    status TEXT NOT NULL,
    elapsed REAL,
    detail TEXT
);
CREATE INDEX IF NOT EXISTS idx_history_tenant
    ON query_history (tenant, id);
CREATE INDEX IF NOT EXISTS idx_history_status
    ON query_history (status, id);
"""


class QueryHistory:
    """Thread-safe request journal over one SQLite database.

    ``path`` may be ``":memory:"`` (default; dies with the process) or
    a filesystem path (the history survives restarts and is shared by
    any later service pointed at the same file).
    """

    def __init__(self, path: str = ":memory:", *, max_rows: int = 100_000):
        if max_rows < 1:
            raise ValueError(f"max_rows must be >= 1, got {max_rows}")
        self._path = str(path)
        self._max_rows = max_rows
        self._lock = threading.Lock()
        self._closed = False  # guarded-by: _lock
        # One shared connection: every statement runs under _lock, so
        # cross-thread use is safe despite check_same_thread=False.
        self._conn = sqlite3.connect(  # guarded-by: _lock
            self._path, check_same_thread=False
        )
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            cursor = self._conn.cursor()
            if self._path != ":memory:":
                cursor.execute("PRAGMA journal_mode=WAL")
                cursor.execute("PRAGMA synchronous=NORMAL")
            cursor.execute("PRAGMA busy_timeout=30000")
            version = cursor.execute("PRAGMA user_version").fetchone()[0]
            if version == 0:
                cursor.executescript(_CREATE)
                cursor.execute(f"PRAGMA user_version={_SCHEMA_VERSION}")
            elif version != _SCHEMA_VERSION:
                raise ValueError(
                    f"history database {self._path!r} has schema version "
                    f"{version}; this build speaks {_SCHEMA_VERSION}"
                )
            self._conn.commit()

    @property
    def path(self) -> str:
        """Where the history lives (``":memory:"`` or a file path)."""
        return self._path

    # ------------------------------------------------------------------ #
    # Writes
    # ------------------------------------------------------------------ #

    def record(
        self,
        *,
        tenant: str,
        table: str,
        query: str | None = None,
        fidelity: str | None = None,
        status: str = "running",
    ) -> int:
        """Insert one request row; returns its id for :meth:`finish`."""
        if status not in STATUSES:
            raise ValueError(f"unknown history status {status!r}")
        with self._lock:
            if self._closed:
                # A request racing shutdown loses its journal row; the
                # caller must not crash over lost observability.
                return 0
            cursor = self._conn.execute(
                "INSERT INTO query_history "
                "(created, tenant, table_name, query, fidelity, status) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                (time.time(), tenant, table, query, fidelity, status),
            )
            self._trim_locked()
            self._conn.commit()
            entry_id = cursor.lastrowid
            assert entry_id is not None  # AUTOINCREMENT always assigns
            return entry_id

    def finish(
        self,
        entry_id: int,
        status: str,
        *,
        elapsed: float | None = None,
        detail: dict | None = None,
    ) -> None:
        """Move a row to its terminal status (+wall clock, +context)."""
        if status not in STATUSES:
            raise ValueError(f"unknown history status {status!r}")
        with self._lock:
            if self._closed:
                return
            self._conn.execute(
                "UPDATE query_history SET status=?, elapsed=?, detail=? "
                "WHERE id=?",
                (
                    status,
                    elapsed,
                    json.dumps(detail) if detail else None,
                    entry_id,
                ),
            )
            self._conn.commit()

    def _trim_locked(self) -> None:  # holds-lock: _lock
        self._conn.execute(
            "DELETE FROM query_history WHERE id <= ("
            "SELECT MAX(id) FROM query_history) - ?",
            (self._max_rows,),
        )

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #

    def recent(
        self,
        limit: int = 50,
        *,
        tenant: str | None = None,
        status: str | None = None,
    ) -> list[dict]:
        """Newest-first rows, optionally filtered (JSON-ready dicts)."""
        limit = max(1, min(int(limit), 1000))
        clauses, params = [], []
        if tenant is not None:
            clauses.append("tenant = ?")
            params.append(tenant)
        if status is not None:
            clauses.append("status = ?")
            params.append(status)
        where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
        with self._lock:
            if self._closed:
                return []
            rows = self._conn.execute(
                "SELECT * FROM query_history "
                f"{where} ORDER BY id DESC LIMIT ?",
                (*params, limit),
            ).fetchall()
        entries = []
        for row in rows:
            entry = dict(row)
            entry["table"] = entry.pop("table_name")
            if entry.get("detail"):
                entry["detail"] = json.loads(entry["detail"])
            entries.append(entry)
        return entries

    def counts(self) -> dict[str, int]:
        """Row count per status (the ``/metrics`` history block)."""
        with self._lock:
            if self._closed:
                return {}
            rows = self._conn.execute(
                "SELECT status, COUNT(*) AS n FROM query_history "
                "GROUP BY status"
            ).fetchall()
        return {row["status"]: row["n"] for row in rows}

    def __len__(self) -> int:
        with self._lock:
            if self._closed:
                return 0
            row = self._conn.execute(
                "SELECT COUNT(*) AS n FROM query_history"
            ).fetchone()
        return int(row["n"])

    def close(self) -> None:
        """Close the underlying connection (idempotent; later writes
        become no-ops so requests racing a shutdown cannot crash)."""
        with self._lock:
            if not self._closed:
                self._closed = True
                self._conn.close()

    def __enter__(self) -> "QueryHistory":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
