"""Request builders shared by the blocking and asyncio clients.

Both clients speak the same wire protocol, but each used to build its
requests by hand — and the two surfaces drifted (the async client lost
``config``/``parallelism``, keyword coercions diverged).  This module
is the single place a Python-level call becomes a wire request:

* :func:`build_explore_request` — every richly-typed argument
  (:class:`~repro.query.query.ConjunctiveQuery`,
  :class:`~repro.core.config.AtlasConfig`,
  :class:`~repro.core.config.Fidelity`,
  :class:`~repro.core.config.Parallelism` or a bare worker count) is
  coerced to its wire shape exactly once, identically for every client;
* :func:`build_append_request` — the columnar append payload;
* :func:`build_register_payload` — the ``POST /tables`` generator spec;
* :func:`history_path` — the ``GET /history`` query string.

A client that builds requests any other way is a bug.
"""

from __future__ import annotations

import urllib.parse

from repro.core.config import AtlasConfig, Fidelity, Parallelism
from repro.query.query import ConjunctiveQuery
from repro.service.protocol import AppendRequest, ExploreRequest


def build_explore_request(
    table: str,
    query: "str | dict | ConjunctiveQuery | None" = None,
    config: "dict | AtlasConfig | None" = None,
    use_cache: bool = True,
    *,
    fidelity: "str | Fidelity | None" = None,
    parallelism: "str | Parallelism | int | None" = None,
    deadline_seconds: float | None = None,
) -> ExploreRequest:
    """Coerce one explore call to its wire request.

    ``query`` accepts the same shapes as the local facade: ``None``
    (whole table), paper-syntax text, a wire dict, or a parsed
    :class:`ConjunctiveQuery`.  ``config`` may be an
    :class:`AtlasConfig` (serialized) or an override dict (sent as-is).
    ``fidelity`` may be a spec string or a :class:`Fidelity`;
    ``parallelism`` a spec string, a :class:`Parallelism`, or a bare
    worker count (``4`` → ``"parallel:4"``-style spec via
    :meth:`Parallelism.of`).
    """
    if isinstance(query, ConjunctiveQuery):
        query = query.to_dict()
    if isinstance(config, AtlasConfig):
        config = config.to_dict()
    if isinstance(fidelity, Fidelity):
        fidelity = fidelity.spec()
    if isinstance(parallelism, int) and not isinstance(parallelism, bool):
        parallelism = Parallelism.of(workers=parallelism)
    if isinstance(parallelism, Parallelism):
        parallelism = parallelism.spec()
    return ExploreRequest(
        table=table,
        query=query,
        config=config,
        use_cache=use_cache,
        fidelity=fidelity,
        parallelism=parallelism,
        deadline_seconds=deadline_seconds,
    )


def build_append_request(table: str, rows: dict) -> AppendRequest:
    """The wire shape of one columnar append."""
    return AppendRequest(table=table, rows=rows)


def build_register_payload(generator: str, **params: object) -> dict:
    """The ``POST /tables`` payload registering a generated table.

    ``params`` may include ``name`` (rename) and ``overwrite`` besides
    the generator's own keyword arguments.
    """
    return {"generator": generator, **params}


def history_path(
    limit: int = 50,
    *,
    tenant: str | None = None,
    status: str | None = None,
) -> str:
    """The ``GET /history`` path with its filter query string."""
    query = {"limit": str(limit)}
    if tenant is not None:
        query["tenant"] = tenant
    if status is not None:
        query["status"] = status
    return "/history?" + urllib.parse.urlencode(query)
