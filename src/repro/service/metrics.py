"""Service observability: request counters and latency percentiles.

The pipeline already times every stage generically
(:class:`~repro.engine.pipeline.StageTimings`); the service feeds those
into bounded sliding windows here, so ``/metrics`` can report p50/p90/
p99 per stage and end-to-end without unbounded memory — the numbers the
paper's quasi-real-time requirement (Sections 1/2/5.1) is judged by.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.engine.pipeline import CANONICAL_STAGES, StageTimings

#: Samples kept per latency window; enough for stable tail estimates
#: over recent traffic while bounding memory per label.
_WINDOW = 2048


def percentile(samples: list[float], fraction: float) -> float:
    """Nearest-rank percentile of ``samples`` (already a plain list)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


class LatencyWindow:
    """A bounded window of latency samples with percentile snapshots."""

    def __init__(self, maxlen: int = _WINDOW):
        self._samples: deque[float] = deque(maxlen=maxlen)

    def record(self, seconds: float) -> None:
        self._samples.append(float(seconds))

    def snapshot(self) -> dict:
        samples = list(self._samples)
        if not samples:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p90": 0.0,
                    "p99": 0.0, "max": 0.0}
        return {
            "count": len(samples),
            "mean": sum(samples) / len(samples),
            "p50": percentile(samples, 0.50),
            "p90": percentile(samples, 0.90),
            "p99": percentile(samples, 0.99),
            "max": max(samples),
        }


class ServiceMetrics:
    """Thread-safe counters + per-stage latency windows."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters = {  # guarded-by: _lock
            "received": 0,       # every explore request that reached us
            "completed": 0,      # answered by running the pipeline
            "cache_hits": 0,     # answered from the result cache
            "rejected": 0,       # shed by admission control (429)
            "rate_limited": 0,   # shed by a tenant's own limit (429)
            "deadline_exceeded": 0,  # cancelled between stages (504)
            "failed": 0,         # raised any other error
            "appends": 0,        # streaming append batches applied
            "warm_starts": 0,    # contexts seeded from persisted sketches
            "summaries_persisted": 0,  # sketch states written to the store
        }
        self._stage_latency = {  # guarded-by: _lock
            name: LatencyWindow() for name in CANONICAL_STAGES
        }
        self._total_latency = LatencyWindow()  # guarded-by: _lock

    def count(self, counter: str, n: int = 1) -> None:
        """Bump one of the request counters."""
        with self._lock:
            self._counters[counter] += n

    def observe(self, timings: StageTimings, elapsed: float) -> None:
        """Record one completed pipeline run."""
        with self._lock:
            self._counters["completed"] += 1
            for name in CANONICAL_STAGES:
                self._stage_latency[name].record(getattr(timings, name))
            self._total_latency.record(elapsed)

    def snapshot(self) -> dict:
        """Everything ``/metrics`` reports (JSON-ready)."""
        with self._lock:
            return {
                "requests": dict(self._counters),
                "latency": {
                    "total": self._total_latency.snapshot(),
                    "stages": {
                        name: window.snapshot()
                        for name, window in self._stage_latency.items()
                    },
                },
            }
