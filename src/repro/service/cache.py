"""A thread-safe LRU cache for whole exploration answers.

The engine's :class:`~repro.engine.context.TableStats` memoizes the
*statistics* behind an answer; this cache sits one level up and
memoizes the answer itself, keyed by the deterministic query
fingerprint (plus table and configuration).  Interactive traffic
repeats itself — the §5.1 anticipation argument — so a small LRU turns
the common repeated query into a dictionary lookup.

Values (:class:`~repro.engine.pipeline.MapSet`) are immutable frozen
dataclasses over immutable maps, so one cached object is safely shared
by every thread that hits it.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Generic, Hashable, TypeVar

V = TypeVar("V")


class ResultCache(Generic[V]):
    """Bounded LRU with hit/miss/eviction accounting."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, V] = OrderedDict()  # guarded-by: _lock
        self._hits = 0  # guarded-by: _lock
        self._misses = 0  # guarded-by: _lock
        self._evictions = 0  # guarded-by: _lock

    @property
    def capacity(self) -> int:
        """Maximum number of retained answers."""
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Hashable) -> V | None:
        """The cached value, refreshed to most-recently-used, or None."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value: V) -> None:
        """Insert (or refresh) a value, evicting the LRU entry if full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            if len(self._entries) >= self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
            self._entries[key] = value

    def clear(self) -> None:
        """Drop every entry (counters are kept — they describe traffic)."""
        with self._lock:
            self._entries.clear()

    def snapshot(self) -> dict:
        """Counters for the ``/metrics`` endpoint."""
        with self._lock:
            total = self._hits + self._misses
            return {
                "size": len(self._entries),
                "capacity": self._capacity,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "hit_rate": self._hits / total if total else 0.0,
            }
