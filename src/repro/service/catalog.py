"""The catalog: one named-table registry shared by every frontend.

Before this module, the service, the cluster coordinator, and the REPL
each tracked "what tables exist and where they come from" separately —
and registration came in three verbs (``register_table`` /
``register_spec`` / ``register_connection``) that differed only in how
they coerced their argument.  :class:`Catalog` collapses all of it:

* **one registry** — name → :class:`~repro.service.sources.TableSource`
  with lazy materialization, generation counters (re-registration
  bumps; result-cache keys carry the pair), and an optional persistence
  flag per name;
* **one verb** — :meth:`register` accepts every source shape: a
  :class:`~repro.dataset.table.Table`, a generator spec ``dict``, any
  :class:`TableSource` (including :class:`~repro.service.sources.
  StoreSource`), or a :mod:`repro.db` connection (one relation by name,
  or all of them);
* **one durability story** — backed by a
  :class:`~repro.store.store.TableStore`, ``persist=True`` writes the
  base table through, :meth:`append` journals every delta (the exact
  coerced rows, version pair and all), and sketch summaries round-trip
  via :meth:`warm_factory` / :meth:`persist_summary`, so the *next*
  process over the same store file answers its first explore from
  loaded state instead of a rescan.

A catalog opened over a non-empty store pre-registers every stored
table as a persisted :class:`StoreSource` — restart-and-go.
"""

from __future__ import annotations

from collections.abc import Mapping
from threading import Lock

from repro.core.config import AtlasConfig
from repro.dataset.table import Table
from repro.db.connection import Connection
from repro.errors import StoreError
from repro.service.protocol import ProtocolError, UnknownTableError
from repro.service.sources import (
    ConnectionSource,
    InMemorySource,
    StoreSource,
    TableSource,
    build_table,
)
from repro.store import (
    SketchSummary,
    TableStore,
    extract_summary,
    restore_backend,
    summary_key,
)

#: The source shapes :meth:`Catalog.register` accepts.
SourceLike = "Table | TableSource | Connection | Mapping | dict"


class Catalog:
    """Named table sources, materializations, and persistence — one lock.

    Thread-safe the way the service registry was: sources load outside
    the lock (first materialization wins, so context identity keyed on
    the table object stays stable), appends serialize under it, and a
    re-registration racing a load is detected and retried.
    """

    def __init__(self, *, store: TableStore | None = None):
        self._lock = Lock()
        self._store = store
        self._sources: dict[str, TableSource] = {}  # guarded-by: _lock
        self._tables: dict[str, Table] = {}  # guarded-by: _lock
        #: Per-name registration generation, bumped on every (re-)
        #: registration; result-cache keys carry ``(generation,
        #: version)`` so neither an overwrite nor an append can leave a
        #: stale answer reachable.
        self._generations: dict[str, int] = {}  # guarded-by: _lock
        self._persisted: set[str] = set()  # guarded-by: _lock
        if store is not None:
            for name in store.table_names():
                self._sources[name] = StoreSource(store, name)
                self._generations[name] = 1
                self._persisted.add(name)

    @property
    def store(self) -> TableStore | None:
        """The backing store, if this catalog is durable."""
        return self._store

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #

    def register(
        self,
        name: "str | None" = None,
        source: "object | None" = None,
        *,
        overwrite: bool = False,
        persist: bool = False,
    ) -> "str | tuple[str, ...]":
        """Register one source under ``name`` (or its natural name).

        ``source`` may be a :class:`Table`, a generator-spec mapping
        (:func:`~repro.service.sources.build_table` shape), any
        :class:`TableSource`, or a :mod:`repro.db` connection.  A
        connection with ``name`` registers that one relation; with
        ``name=None`` it registers *every* visible relation and
        returns the name tuple (every other shape returns the single
        name).  ``register(table)`` — source first, no name — also
        works, deriving the name from the source.

        ``persist=True`` writes the (materialized) table through to
        the catalog's store and turns on delta/summary write-through
        for its lifetime; a :class:`StoreSource` over the same store
        is already durable and is just marked.
        """
        if source is None:
            name, source = None, name
        if source is None:
            raise ProtocolError("register needs a table source")
        if name is not None and not isinstance(name, str):
            raise ProtocolError(
                f"table name must be a string, got {type(name).__name__}"
            )
        if isinstance(source, Connection):
            if name is not None:
                return self._add(
                    name,
                    ConnectionSource(source, name),
                    overwrite=overwrite,
                    persist=persist,
                )
            return tuple(
                self._add(
                    relation,
                    ConnectionSource(source, relation),
                    overwrite=overwrite,
                    persist=persist,
                )
                for relation in source.table_names()
            )
        if isinstance(source, Table):
            return self._add(
                name or source.name,
                InMemorySource(source),
                overwrite=overwrite,
                persist=persist,
            )
        if isinstance(source, TableSource):
            resolved = name or source.default_name
            if resolved is None:
                raise ProtocolError(
                    f"{type(source).__name__} has no natural name; "
                    "pass one explicitly"
                )
            return self._add(
                resolved, source, overwrite=overwrite, persist=persist
            )
        if isinstance(source, Mapping):
            table = build_table(dict(source))
            return self._add(
                name or table.name,
                InMemorySource(table),
                overwrite=overwrite,
                persist=persist,
            )
        raise ProtocolError(
            "cannot interpret a "
            f"{type(source).__name__} as a table source (expected a "
            "Table, a generator spec, a TableSource, or a Connection)"
        )

    def _add(
        self,
        name: str,
        source: TableSource,
        *,
        overwrite: bool,
        persist: bool,
    ) -> str:
        with self._lock:
            if name in self._sources and not overwrite:
                raise ProtocolError(
                    f"table {name!r} is already registered "
                    "(pass overwrite=True to replace it)"
                )
        table: Table | None = None
        if persist:
            if self._store is None:
                raise StoreError(
                    f"cannot persist {name!r}: this catalog has no store"
                )
            already_durable = (
                isinstance(source, StoreSource)
                and source.store is self._store
            )
            if not already_durable:
                # Write-through needs the rows; materialize now.  The
                # store keys tables by their own name, so serve-name
                # and store-name are kept equal.
                loaded = source.load()
                # The store keys tables by their own name, so the
                # served object and the stored bytes carry the serve
                # name — a restart then resolves the identical table.
                table = (
                    loaded if loaded.name == name else loaded.rename(name)
                )
                self._store.register_table(table, overwrite=overwrite)
        with self._lock:
            if name in self._sources and not overwrite:
                raise ProtocolError(
                    f"table {name!r} is already registered "
                    "(pass overwrite=True to replace it)"
                )
            self._sources[name] = source
            self._generations[name] = self._generations.get(name, 0) + 1
            # Drop any stale materialization; persisted registrations
            # keep the one just written through so the served object
            # and the stored bytes describe the same rows.
            self._tables.pop(name, None)
            if table is not None:
                self._tables[name] = table
            if persist:
                self._persisted.add(name)
            else:
                self._persisted.discard(name)
        return name

    def names(self) -> tuple[str, ...]:
        """Registered table names, registration order."""
        with self._lock:
            return tuple(self._sources)

    def describe(self) -> dict[str, str]:
        """Name → provenance line, for ``/tables`` and diagnostics."""
        with self._lock:
            return {
                name: source.describe()
                for name, source in self._sources.items()
            }

    def is_persisted(self, name: str) -> bool:
        """True when ``name`` write-throughs to the store."""
        with self._lock:
            return name in self._persisted

    # ------------------------------------------------------------------ #
    # Resolution
    # ------------------------------------------------------------------ #

    def resolve(self, name: str) -> Table:
        """The served table, materializing its source on first use."""
        while True:
            with self._lock:
                table = self._tables.get(name)
                if table is not None:
                    return table
                source = self._sources.get(name)
            if source is None:
                known = ", ".join(self.names()) or "(none registered)"
                raise UnknownTableError(
                    f"unknown table {name!r}; known: {known}"
                )
            table = source.load()
            with self._lock:
                if self._sources.get(name) is not source:
                    # Re-registered (overwrite) while we were loading;
                    # the materialization belongs to the old source and
                    # must not be installed — resolve again.
                    continue
                # First materialization wins so context identity is stable.
                return self._tables.setdefault(name, table)

    def resolve_with_generation(self, name: str) -> tuple[Table, int]:
        """The served table *and* the generation it belongs to, read
        atomically — a re-registration racing an explore must not pair
        the old tenant's table with the new tenant's generation."""
        while True:
            table = self.resolve(name)
            with self._lock:
                if self._tables.get(name) is table:
                    return table, self._generations.get(name, 0)

    # ------------------------------------------------------------------ #
    # Streaming
    # ------------------------------------------------------------------ #

    def append(
        self,
        name: str,
        rows: "dict | Table",
        on_swap,
    ) -> tuple[Table, Table]:
        """Append rows to a served table, journaling if persisted.

        The whole transition is atomic under the catalog lock: the
        coerced delta is journaled first (durability before
        visibility — a crash between the two replays cleanly, and the
        store's version-pair log makes a retried append a no-op), the
        materialization and source swap to the version-bumped
        successor, and ``on_swap(new_table)`` runs *inside* the
        critical section so the caller can advance its execution
        contexts before any later append starts.  Returns
        ``(old_table, new_table)``.
        """
        self.resolve(name)  # materialize lazy sources / 404
        with self._lock:
            current = self._tables.get(name)
            if current is None:  # re-register racing the append
                raise UnknownTableError(
                    f"table {name!r} was re-registered during the append; "
                    "retry"
                )
            delta = current.coerce_delta(rows)
            new_table = current.append(delta)
            if name in self._persisted and self._store is not None:
                self._store.append(
                    name,
                    delta,
                    from_version=current.version,
                    to_version=new_table.version,
                )
            self._tables[name] = new_table
            self._sources[name] = InMemorySource(new_table)
            on_swap(new_table)
        return current, new_table

    # ------------------------------------------------------------------ #
    # Warm-start summaries
    # ------------------------------------------------------------------ #

    def warm_factory(self, name: str, table: Table, config: AtlasConfig):
        """An ``adopt_stats`` factory restoring a persisted summary.

        Returns None unless ``name`` is persisted, the configuration
        sketches without a scope-sample override, and a summary for
        exactly ``(name, table.version, summary_key(config))`` is
        stored — the conditions under which the restored backend is
        guaranteed bit-identical to a fresh build *after its answers*
        (same reservoir, same sketch dictionaries).
        """
        if self._store is None or not self.is_persisted(name):
            return None
        if not config.fidelity.is_sketch or config.sample_size is not None:
            return None
        document = self._store.get_summary(
            name, table.version, summary_key(config)
        )
        if document is None:
            return None
        summary = SketchSummary.from_dict(document)

        def factory(target, counters, lock, kernels):
            return restore_backend(
                summary, target, counters=counters, lock=lock, kernels=kernels
            )

        return factory

    def persist_summary(
        self, name: str, table: Table, backend, config: AtlasConfig
    ) -> bool:
        """Write a built backend's sketch state through to the store.

        Skips (returning False) when the table is not persisted, the
        configuration is not summarizable (exact fidelity or a scope
        sample), the backend has moved past ``table``'s version (an
        append raced the run), or the summary is already stored.
        """
        if self._store is None or not self.is_persisted(name):
            return False
        if not config.fidelity.is_sketch or config.sample_size is not None:
            return False
        key = summary_key(config)
        if backend.version != table.version:
            return False
        if self._store.get_summary(name, table.version, key) is not None:
            return False
        summary = extract_summary(backend, table_name=name, key=key)
        self._store.put_summary(name, summary.version, key, summary.to_dict())
        return True
