"""The asyncio frontend of the exploration service.

The PR-2 ``http.server`` frontend spends one OS thread per *connection*
— fine for a handful of analysts, hopeless for the paper's "many
analysts, quasi-real-time" deployment at hundreds of concurrent
clients.  This frontend inverts the shape: **one event loop owns every
socket; threads are spent only on admitted pipeline work.**

* Accept, HTTP parsing, routing, rate-limit/admission rejections, and
  response writing all run on the event loop — a shed 429 never
  touches a thread, so saturation costs microseconds per excess
  request no matter how many clients pile on.
* Admitted work (the blocking pipeline/service call) is dispatched to
  a bounded executor; in-flight concurrency is already capped by the
  service's admission ledger, so the executor is sized to match and
  waiting never happens on the loop.
* Per-tenant API keys ride the ``X-Api-Key`` header; 429s carry
  ``Retry-After`` (from the rejection's ``detail``); every request
  emits one structured JSON access-log line.

Routes are a superset of the threaded frontend (which remains, as the
compatibility surface):

====== =========== ====================================================
Method Path        Meaning
====== =========== ====================================================
GET    /health     liveness + protocol version
GET    /tables     registered tables with provenance
POST   /tables     register a generated table (a ``build_table`` spec)
POST   /explore    run one exploration (an ``ExploreRequest`` payload)
POST   /append     append rows to a table (an ``AppendRequest`` payload)
GET    /metrics    counters, caches, per-stage latency percentiles
GET    /history    recent request journal (``?limit=&tenant=&status=``)
====== =========== ====================================================

:class:`AsyncServiceClient` is the matching client — a single-socket
keep-alive JSON client built on asyncio streams, cheap enough to run
hundreds of instances on one loop (the E23 saturation benchmark drives
64–256 of them from one process).
"""

from __future__ import annotations

import asyncio
import json
import logging
import threading
import time
import urllib.parse
from typing import Awaitable, Callable

from repro.core.config import AtlasConfig, Fidelity, Parallelism
from repro.service.client import retry_delay
from repro.service.protocol import (
    PROTOCOL_VERSION,
    AdmissionError,
    AppendRequest,
    AppendResponse,
    ExploreRequest,
    ExploreResponse,
    ProtocolError,
    RemoteServiceError,
    ServiceError,
    error_from_payload,
    error_to_dict,
)
from repro.service.requests import (
    build_append_request,
    build_explore_request,
    build_register_payload,
    history_path,
)
from repro.service.service import ExplorationService
from repro.service.tenancy import retry_after_header

#: Largest accepted request head (request line + headers) and body.
_MAX_HEAD_BYTES = 32 * 1024
_MAX_BODY_BYTES = 1 << 20

#: The structured access-log sink: one JSON-ready dict per request.
AccessLogger = Callable[[dict], None]

_access_logger = logging.getLogger("repro.service.access")


def _default_access_log(record: dict) -> None:
    _access_logger.info("%s", json.dumps(record, separators=(",", ":")))


class _HttpError(Exception):
    """Internal: a parse-level failure with a ready error payload."""

    def __init__(self, status: int, payload: dict, *, close: bool = False):
        super().__init__(payload["error"]["message"])
        self.status = status
        self.payload = payload
        self.close = close


def _error_response(error: Exception) -> tuple[int, dict]:
    payload = error_to_dict(error)
    return payload["error"]["status"], payload


class AsyncServiceServer:
    """An asyncio HTTP frontend bound to one :class:`ExplorationService`.

    The event loop runs on a dedicated daemon thread, so synchronous
    code (tests, the REPL, benchmarks) can start and stop the server
    exactly like the threaded :class:`~repro.service.server.
    ServiceServer`::

        with serve_async(service) as server:
            client = ServiceClient(server.url)   # blocking client works
            ...

    ``access_log`` is a callable receiving one dict per request
    (default: JSON lines on the ``repro.service.access`` logger;
    ``quiet=True`` only silences the default logger, never an explicit
    callable).
    """

    def __init__(
        self,
        service: ExplorationService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        quiet: bool = True,
        access_log: AccessLogger | None = None,
        executor_threads: int | None = None,
    ):
        self._service = service
        self._host = host
        self._port = port
        self._quiet = quiet
        if access_log is not None:
            self._access_log: AccessLogger | None = access_log
        elif quiet:
            self._access_log = None
        else:
            self._access_log = _default_access_log
        # Sized to the admission ceiling: more threads could never run
        # concurrently (the ledger sheds first), fewer would make
        # admitted requests queue behind each other in the executor.
        if executor_threads is None:
            executor_threads = max(8, service.max_inflight + 4)
        self._executor_threads = executor_threads
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._ready = threading.Event()
        self._bound: tuple[str, int] | None = None
        self._startup_error: BaseException | None = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    @property
    def service(self) -> ExplorationService:
        """The service being exposed."""
        return self._service

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (port 0 resolves here)."""
        if self._bound is None:
            raise ServiceError("server is not running")
        return self._bound

    @property
    def url(self) -> str:
        """Base URL clients should use."""
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "AsyncServiceServer":
        """Start the event loop thread; returns self for chaining."""
        if self._thread is not None:
            return self
        self._ready.clear()
        self._startup_error = None
        self._thread = threading.Thread(
            target=self._thread_main,
            name="repro-service-async",
            daemon=True,
        )
        self._thread.start()
        self._ready.wait(timeout=10)
        if self._startup_error is not None:
            error = self._startup_error
            self._thread.join(timeout=5)
            self._thread = None
            raise ServiceError(f"async frontend failed to start: {error}")
        if self._bound is None:
            raise ServiceError("async frontend did not come up in time")
        return self

    def close(self, *, close_service: bool = False) -> None:
        """Stop the loop (and optionally the service behind it)."""
        if self._thread is not None and self._loop is not None:
            loop, stop = self._loop, self._stop
            if stop is not None:
                loop.call_soon_threadsafe(stop.set)
            self._thread.join(timeout=10)
            self._thread = None
            self._loop = None
            self._stop = None
            self._bound = None
        if close_service:
            self._service.close()

    def __enter__(self) -> "AsyncServiceServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._serve())
        except BaseException as error:  # pragma: no cover - defensive
            self._startup_error = error
            self._ready.set()

    async def _serve(self) -> None:
        from concurrent.futures import ThreadPoolExecutor

        loop = asyncio.get_running_loop()
        executor = ThreadPoolExecutor(
            max_workers=self._executor_threads,
            thread_name_prefix="repro-async-worker",
        )
        loop.set_default_executor(executor)
        self._loop = loop
        self._stop = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._handle_connection,
                self._host,
                self._port,
                limit=_MAX_HEAD_BYTES,
            )
        except OSError as error:
            self._startup_error = error
            self._ready.set()
            executor.shutdown(wait=False)
            return
        sockname = server.sockets[0].getsockname()
        self._bound = (sockname[0], sockname[1])
        self._ready.set()
        try:
            async with server:
                await self._stop.wait()
        finally:
            executor.shutdown(wait=True, cancel_futures=True)

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                keep_alive = await self._handle_one(reader, writer)
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            asyncio.LimitOverrunError,
            TimeoutError,
        ):
            pass  # client went away / oversized head: drop the connection
        except asyncio.CancelledError:
            pass  # server shutting down mid-connection: close quietly
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
            except asyncio.CancelledError:
                # asyncio.run's teardown cancels handler tasks while
                # they await the close handshake; absorbing it lets the
                # task end cleanly instead of logging a traceback.
                pass

    async def _handle_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        """Serve one request; returns False when the connection closes."""
        request_line = await reader.readline()
        if not request_line:
            return False
        started = time.perf_counter()
        status = 500
        method, target, close_requested = "?", "?", False
        api_key: str | None = None
        body_bytes = 0
        try:
            method, target, http_version = _parse_request_line(request_line)
            headers = await _read_headers(reader)
            close_requested = (
                headers.get("connection", "").lower() == "close"
                or http_version == "HTTP/1.0"
            )
            api_key = headers.get("x-api-key")
            body = await _read_body(reader, headers)
            status, payload = await self._route(method, target, body, api_key)
        except _HttpError as error:
            status, payload = error.status, error.payload
            close_requested = close_requested or error.close
        except ServiceError as error:
            status, payload = _error_response(error)
        except Exception as error:  # noqa: BLE001 - boundary fence
            status, payload = _error_response(error)
            if not self._quiet:  # pragma: no cover - manual servers only
                _access_logger.error("unhandled error: %r", error)
        body_bytes = self._write_response(
            writer, status, payload, close=close_requested
        )
        await writer.drain()
        self._log_access(
            method=method,
            target=target,
            status=status,
            api_key=api_key,
            elapsed=time.perf_counter() - started,
            bytes_sent=body_bytes,
        )
        return not close_requested

    def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        *,
        close: bool,
    ) -> int:
        body = json.dumps(payload).encode("utf-8")
        reason = {200: "OK", 201: "Created"}.get(status, "X")
        head = [
            f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        retry_after = _retry_after_of(status, payload)
        if retry_after is not None:
            head.append(f"Retry-After: {retry_after}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("ascii") + body)
        return len(body)

    def _log_access(
        self,
        *,
        method: str,
        target: str,
        status: int,
        api_key: str | None,
        elapsed: float,
        bytes_sent: int,
    ) -> None:
        if self._access_log is None:
            return
        try:
            tenant = self._service.resolve_tenant(api_key=api_key).name
        except ServiceError:
            tenant = "?"
        self._access_log(
            {
                "ts": time.time(),
                "tenant": tenant,
                "method": method,
                "path": target,
                "status": status,
                "elapsed_ms": round(elapsed * 1000, 3),
                "bytes": bytes_sent,
            }
        )

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    async def _route(
        self, method: str, target: str, body: bytes, api_key: str | None
    ) -> tuple[int, dict]:
        path, _, raw_query = target.partition("?")
        params = urllib.parse.parse_qs(raw_query)
        if method == "GET":
            if path == "/health":
                return 200, {"status": "ok", "protocol": PROTOCOL_VERSION}
            if path == "/tables":
                tables = await self._call(self._service.describe_tables)
                return 200, {"tables": tables}
            if path == "/metrics":
                return 200, await self._call(self._service.metrics)
            if path == "/history":
                entries = await self._call(
                    self._service.history_entries,
                    _int_param(params, "limit", 50),
                    tenant=_str_param(params, "tenant"),
                    status=_str_param(params, "status"),
                )
                return 200, {"history": entries}
            # Parity with the threaded frontend: unknown GETs are 404s.
            raise _HttpError(404, {"error": {
                "status": 404, "code": "not_found",
                "message": f"no route {path!r}",
                "type": "ProtocolError",
            }})
        if method == "POST":
            payload = _parse_json_body(body)
            if path == "/explore":
                request = ExploreRequest.from_dict(payload)
                response = await self._call(
                    self._service.handle, request, api_key=api_key
                )
                return 200, response.to_dict()
            if path == "/append":
                append = AppendRequest.from_dict(payload)
                acknowledged = await self._call(
                    self._service.handle_append, append, api_key=api_key
                )
                return 200, acknowledged.to_dict()
            if path == "/tables":
                if not isinstance(payload, dict):
                    raise ProtocolError(
                        "expected a table-spec object, got "
                        f"{type(payload).__name__}"
                    )
                name = await self._call(
                    self._service.register,
                    payload,
                    overwrite=bool(payload.pop("overwrite", False)),
                )
                return 201, {"registered": name}
            raise ProtocolError(f"no route {path!r}")
        raise ProtocolError(f"unsupported method {method!r}")

    async def _call(self, fn, *args, **kwargs):
        """Run blocking service code off the loop."""
        loop = asyncio.get_running_loop()
        if kwargs:
            import functools

            fn = functools.partial(fn, *args, **kwargs)
            return await loop.run_in_executor(None, fn)
        return await loop.run_in_executor(None, fn, *args)


# ---------------------------------------------------------------------- #
# HTTP plumbing (shared by server and client)
# ---------------------------------------------------------------------- #


def _parse_request_line(line: bytes) -> tuple[str, str, str]:
    try:
        text = line.decode("ascii").strip()
        method, target, version = text.split(" ", 2)
    except ValueError as exc:
        raise _HttpError(
            400,
            error_to_dict(ProtocolError(f"malformed request line: {line!r}")),
            close=True,
        ) from exc
    return method.upper(), target, version.strip()


async def _read_headers(reader: asyncio.StreamReader) -> dict[str, str]:
    headers: dict[str, str] = {}
    total = 0
    while True:
        line = await reader.readline()
        total += len(line)
        if total > _MAX_HEAD_BYTES:
            raise _HttpError(
                431,
                error_to_dict(ProtocolError("request head too large")),
                close=True,
            )
        if line in (b"\r\n", b"\n", b""):
            return headers
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()


async def _read_body(
    reader: asyncio.StreamReader, headers: dict[str, str]
) -> bytes:
    length = int(headers.get("content-length", 0) or 0)
    if length <= 0:
        return b""
    if length > _MAX_BODY_BYTES:
        # Drain modest overshoots so the client can finish writing and
        # actually read the 413 (responding with the body unsent leaves
        # the client stuck on a broken pipe); anything larger is abuse
        # and the connection is simply dropped after the response.
        if length <= 4 * _MAX_BODY_BYTES:
            await reader.readexactly(length)
        raise _HttpError(
            413,
            error_to_dict(
                ProtocolError(
                    f"request body of {length} bytes exceeds the "
                    f"{_MAX_BODY_BYTES}-byte limit"
                )
            ),
            close=True,
        )
    return await reader.readexactly(length)


def _parse_json_body(body: bytes) -> dict:
    if not body:
        raise ProtocolError("request body required")
    try:
        return json.loads(body)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request body is not valid JSON: {exc}") from exc


def _retry_after_of(status: int, payload: dict) -> str | None:
    if status not in (429, 503):
        return None
    detail = payload.get("error", {}).get("detail", {})
    try:
        return retry_after_header(float(detail.get("retry_after", 0.0)))
    except (TypeError, ValueError):  # pragma: no cover - defensive
        return retry_after_header(0.0)


def _int_param(params: dict, name: str, default: int) -> int:
    values = params.get(name)
    if not values:
        return default
    try:
        return int(values[0])
    except ValueError as exc:
        raise ProtocolError(f"{name!r} must be an integer") from exc


def _str_param(params: dict, name: str) -> str | None:
    values = params.get(name)
    return values[0] if values else None


def serve_async(
    service: ExplorationService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    quiet: bool = True,
    access_log: AccessLogger | None = None,
) -> AsyncServiceServer:
    """Start an asyncio frontend for ``service`` (port 0 = ephemeral)."""
    return AsyncServiceServer(
        service, host, port, quiet=quiet, access_log=access_log
    ).start()


# ---------------------------------------------------------------------- #
# Async client
# ---------------------------------------------------------------------- #


class AsyncServiceClient:
    """A keep-alive JSON client for asyncio callers.

    One instance = one connection = one in-flight request at a time
    (HTTP/1.1 without pipelining); run many instances on one loop to
    simulate many clients.  The error surface matches the blocking
    :class:`~repro.service.client.ServiceClient`: server rejections
    resurrect the same typed :class:`ServiceError` subclasses.
    """

    def __init__(
        self,
        base_url: str,
        *,
        api_key: str | None = None,
        timeout: float = 30.0,
    ):
        parsed = urllib.parse.urlsplit(base_url.rstrip("/"))
        if parsed.scheme not in ("http", ""):
            raise ProtocolError(
                f"unsupported URL scheme {parsed.scheme!r} in {base_url!r}"
            )
        self._host = parsed.hostname or parsed.path or "localhost"
        self._port = parsed.port or 80
        self._api_key = api_key
        self._timeout = timeout
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    @property
    def base_url(self) -> str:
        """The normalized ``http://host:port`` this client talks to."""
        return f"http://{self._host}:{self._port}"

    async def _connect(self) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        if self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.open_connection(
                self._host, self._port
            )
        assert self._reader is not None and self._writer is not None
        return self._reader, self._writer

    async def aclose(self) -> None:
        """Close the connection (the client reconnects lazily)."""
        writer, self._reader, self._writer = self._writer, None, None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def __aenter__(self) -> "AsyncServiceClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()

    async def request(
        self, method: str, path: str, payload: dict | None = None
    ) -> dict:
        """One JSON round trip; raises the service's typed errors."""
        reused = self._writer is not None and not self._writer.is_closing()
        try:
            return await asyncio.wait_for(
                self._round_trip(method, path, payload), self._timeout
            )
        except (ConnectionError, asyncio.IncompleteReadError) as exc:
            await self.aclose()
            if not reused:
                raise RemoteServiceError(
                    f"cannot reach service at {self.base_url}: {exc}"
                ) from exc
            # Stale keep-alive socket: the request never reached a
            # handler, so one retry on a fresh connection is safe.
            try:
                return await asyncio.wait_for(
                    self._round_trip(method, path, payload), self._timeout
                )
            except (ConnectionError, asyncio.IncompleteReadError) as retry_exc:
                await self.aclose()
                raise RemoteServiceError(
                    f"cannot reach service at {self.base_url}: {retry_exc}"
                ) from retry_exc
        except asyncio.TimeoutError as exc:
            await self.aclose()
            raise RemoteServiceError(
                f"request to {self.base_url} timed out after "
                f"{self._timeout}s"
            ) from exc

    async def _round_trip(
        self, method: str, path: str, payload: dict | None
    ) -> dict:
        reader, writer = await self._connect()
        body = b""
        headers = [f"{method} {path} HTTP/1.1", f"Host: {self._host}"]
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers.append("Content-Type: application/json")
        headers.append(f"Content-Length: {len(body)}")
        if self._api_key is not None:
            headers.append(f"X-Api-Key: {self._api_key}")
        writer.write(("\r\n".join(headers) + "\r\n\r\n").encode("ascii") + body)
        await writer.drain()

        status_line = await reader.readline()
        if not status_line:
            raise asyncio.IncompleteReadError(b"", None)
        try:
            status = int(status_line.split(b" ", 2)[1])
        except (IndexError, ValueError) as exc:
            raise ProtocolError(
                f"malformed status line {status_line!r}"
            ) from exc
        response_headers = await _read_headers(reader)
        length = int(response_headers.get("content-length", 0) or 0)
        raw = await reader.readexactly(length) if length else b""
        if response_headers.get("connection", "").lower() == "close":
            await self.aclose()
        try:
            parsed = json.loads(raw) if raw else {}
        except json.JSONDecodeError as exc:
            if status < 400:
                raise ProtocolError(
                    f"server returned invalid JSON: {exc}"
                ) from exc
            parsed = {}
        if status >= 400:
            if not isinstance(parsed, dict) or "error" not in parsed:
                parsed = {"error": {"status": status, "code": "internal",
                                    "message": f"HTTP {status}"}}
            error = error_from_payload(parsed, status)
            retry_after = response_headers.get("retry-after")
            if (
                retry_after is not None
                and isinstance(error, ServiceError)
                and "retry_after_header" not in error.detail
            ):
                error.detail["retry_after_header"] = retry_after
            raise error
        if not isinstance(parsed, dict):
            raise ProtocolError(
                f"expected a JSON object body, got {type(parsed).__name__}"
            )
        return parsed

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #

    async def health(self) -> dict:
        """Liveness probe; raises on protocol-version mismatch."""
        payload = await self.request("GET", "/health")
        remote = payload.get("protocol")
        if remote != PROTOCOL_VERSION:
            raise ProtocolError(
                f"server speaks protocol {remote!r}, "
                f"client speaks {PROTOCOL_VERSION!r}"
            )
        return payload

    async def tables(self) -> dict[str, str]:
        """Registered tables (name → provenance)."""
        return (await self.request("GET", "/tables"))["tables"]

    async def metrics(self) -> dict:
        """The server's metrics snapshot."""
        return await self.request("GET", "/metrics")

    async def history(
        self,
        limit: int = 50,
        *,
        tenant: str | None = None,
        status: str | None = None,
    ) -> list[dict]:
        """Recent request-journal entries, newest first."""
        path = history_path(limit, tenant=tenant, status=status)
        return (await self.request("GET", path))["history"]

    async def register_table(self, generator: str, **params: object) -> str:
        """Register a generated table; returns its served name
        (see :meth:`ServiceClient.register_table`)."""
        payload = build_register_payload(generator, **params)
        return (await self.request("POST", "/tables", payload))["registered"]

    async def append(self, table: str, rows: dict) -> AppendResponse:
        """Append columnar rows to a served table
        (see :meth:`ServiceClient.append`)."""
        request = build_append_request(table, rows)
        payload = await self.request("POST", "/append", request.to_dict())
        return AppendResponse.from_dict(payload)

    async def explore(
        self,
        table: str,
        query: "str | dict | None" = None,
        config: "dict | AtlasConfig | None" = None,
        use_cache: bool = True,
        *,
        fidelity: "str | Fidelity | None" = None,
        parallelism: "str | Parallelism | int | None" = None,
        deadline_seconds: float | None = None,
        retry_busy: int = 0,
        busy_backoff: float = 0.05,
    ) -> ExploreResponse:
        """Run one exploration (see :meth:`ServiceClient.explore`).

        The full parameter surface of the blocking client — ``config``
        overrides, ``fidelity``, and ``parallelism`` coerce through the
        same :func:`~repro.service.requests.build_explore_request`, so
        the two clients cannot drift.  Busy retries sleep
        :func:`~repro.service.client.retry_delay` seconds (full first
        step, deterministic jitter, server hint as a floor) — an
        ``await asyncio.sleep``, so other clients on the same loop keep
        running.
        """
        request = build_explore_request(
            table,
            query,
            config,
            use_cache,
            fidelity=fidelity,
            parallelism=parallelism,
            deadline_seconds=deadline_seconds,
        )
        attempt = 0
        while True:
            try:
                payload = await self.request(
                    "POST", "/explore", request.to_dict()
                )
                return ExploreResponse.from_dict(payload)
            except AdmissionError as error:
                if attempt >= retry_busy:
                    raise
                attempt += 1
                await asyncio.sleep(
                    retry_delay(attempt, busy_backoff, error)
                )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<AsyncServiceClient {self.base_url}>"


async def gather_limited(
    limit: int, awaitables: "list[Awaitable]"
) -> list:
    """``asyncio.gather`` under a concurrency semaphore (benchmark aid)."""
    gate = asyncio.Semaphore(limit)

    async def run(awaitable: Awaitable):
        async with gate:
            return await awaitable

    return list(await asyncio.gather(*(run(a) for a in awaitables)))
