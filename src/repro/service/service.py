"""The exploration service core: shared contexts, a worker pool,
result caching, and admission control.

One long-lived :class:`ExplorationService` turns the Section-3 pipeline
into a multi-client system:

* **Shared statistics.**  Explores on the same (table, config) pair run
  through one shared :class:`~repro.engine.context.ExecutionContext`
  (bounded LRU registry), so masks, assignment vectors, and cut points
  memoized for one client's answer are reused verbatim for the next
  client — PR 1's cross-query cache, promoted to cross-*client*.
* **Result cache.**  Whole answers are kept in a thread-safe LRU keyed
  by the deterministic query fingerprint already used for per-query RNG
  derivation (plus table and config), so repeated traffic costs a
  dictionary lookup.
* **Bounded concurrency, fairly shared.**  Pipeline runs execute on a
  fixed worker pool; admission control bounds in-flight work *per
  tenant* (:class:`~repro.service.tenancy.AdmissionLedger`) and sheds
  the excess with a fast :class:`~repro.service.protocol.AdmissionError`
  (HTTP 429) instead of letting latency grow without bound.
* **Tenancy.**  Requests resolve to a :class:`~repro.service.tenancy.
  Tenant` (by API key over HTTP, by name in process); each tenant can
  carry a token-bucket rate limit and an in-flight cap, so one noisy
  key cannot starve the rest — unauthenticated traffic maps to the
  unlimited anonymous tenant and behaves exactly as before.
* **Deadlines.**  A request may carry ``deadline_seconds``; the run is
  cancelled cooperatively *between* pipeline stages
  (:mod:`repro.engine.cancel`) and answers 504 with proof of where it
  stopped — shared contexts stay consistent by construction.
* **History.**  Every request leaves a status-tracked row in the
  :class:`~repro.service.history.QueryHistory` journal (optionally
  file-backed, surviving restarts), served at ``/history``.
"""

from __future__ import annotations

import dataclasses
import time
import warnings
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from threading import Lock

from repro.core.config import AtlasConfig, Fidelity, Parallelism
from repro.dataset.table import Table
from repro.db.connection import Connection
from repro.engine.cancel import CancelToken, PipelineCancelled
from repro.engine.context import (
    ExecutionContext,
    order_sensitive_key,
    query_fingerprint,
)
from repro.engine.parallel import merge_shard_info, new_shard_aggregate
from repro.engine.pipeline import Pipeline
from repro.errors import MapError, StoreError
from repro.query.query import ConjunctiveQuery
from repro.service.cache import ResultCache
from repro.service.catalog import Catalog
from repro.service.history import QueryHistory
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import (
    PROTOCOL_VERSION,
    AdmissionError,
    AppendRequest,
    AppendResponse,
    DeadlineExceededError,
    ExploreRequest,
    ExploreResponse,
    ProtocolError,
    RateLimitError,
    ServiceError,
    apply_config_overrides,
    resolve_query_payload,
)
from repro.service.tenancy import AdmissionLedger, Tenant, TenantRegistry
from repro.store import TableStore


def result_cache_key(  # cache-key-of: ExploreRequest (exempt: use_cache, deadline_seconds)
    table: str,
    generation: int,
    version: int,
    config: AtlasConfig,
    query: ConjunctiveQuery,
) -> tuple:
    """The result-cache identity of one resolved explore request.

    Everything that can change an answer is a component, nothing else:

    * ``(table, generation, version)`` pins the exact data the answer
      was computed from — an append bumps the version, a re-register
      bumps the generation, and either makes every older entry
      unreachable (the PR-4 staleness fix).  This is why the key is
      built from *resolved* parts rather than the raw wire request:
      the request names a table, but the answer depends on which rows
      that name served at the time.
    * The fidelity spec is a *dedicated* component (it also travels
      inside the config key): an approximate and an exact answer for
      the same query fingerprint must never collide, even if a future
      config-key change drops or reorders fields.
    * The config key canonicalizes worker counts out
      (:meth:`ExplorationService._config_key`) — workers change
      wall-clock, never answers.
    * The query appears both as its order-insensitive fingerprint and
      its order-*sensitive* key: ``user_order`` cutting makes two
      set-equal queries with different value orders distinct answers.

    Rule R4 (atlas-lint) holds this builder to ``ExploreRequest``'s
    field set: a result-affecting request field that never reaches
    this function is reported at parse time.  ``use_cache`` is exempt
    — it controls whether the cache is consulted, not what is stored —
    and so is ``deadline_seconds``: a deadline decides whether an
    answer arrives, never which answer it is.
    """
    return (
        table,
        generation,
        version,
        config.fidelity.spec(),
        ExplorationService._config_key(config),
        query_fingerprint(query),
        order_sensitive_key(query),
    )


def _history_query_text(query: "str | dict | ConjunctiveQuery | None") -> str | None:
    """A compact, human-readable history rendering of a query payload."""
    if query is None:
        return None
    if isinstance(query, str):
        return query
    if isinstance(query, ConjunctiveQuery):
        return query.describe_inline()
    return str(query)


class ExplorationService:
    """A concurrent, caching front over the exploration pipeline.

    Parameters
    ----------
    max_workers:
        Pipeline runs executing in parallel.
    max_queue_depth:
        Runs allowed to *wait* beyond the executing ones; a request
        arriving past ``max_workers + max_queue_depth`` in-flight is
        rejected with :class:`AdmissionError` (HTTP 429).
    result_cache_size:
        Answers retained in the LRU result cache.
    max_contexts:
        (table, config) execution contexts kept alive; least recently
        used are dropped (their memoized statistics go with them).
    config:
        The default :class:`AtlasConfig`; per-request overrides are
        applied on top of it.
    pipeline:
        Stage composition to run; defaults to the Section-3 pipeline.
    tenants:
        :class:`~repro.service.tenancy.Tenant` definitions to register
        up front (more can be added via :meth:`register_tenant`).
    require_api_key:
        Reject unauthenticated requests with 401 instead of mapping
        them to the anonymous tenant.
    history:
        A :class:`~repro.service.history.QueryHistory`, a database
        path (making the journal survive restarts), or ``None`` for a
        fresh in-memory journal.
    store:
        A :class:`~repro.store.TableStore` (or a database path the
        service opens and owns) backing the catalog: tables registered
        with ``persist=True`` write through, appends journal, built
        sketch summaries round-trip — and every table already in the
        store is served immediately, warm-starting a restarted service.
    catalog:
        Share an existing :class:`~repro.service.catalog.Catalog`
        (e.g. with a REPL or a cluster coordinator) instead of building
        one; mutually exclusive with ``store``.
    """

    def __init__(
        self,
        *,
        max_workers: int = 4,
        max_queue_depth: int = 16,
        result_cache_size: int = 256,
        max_contexts: int = 32,
        config: AtlasConfig | None = None,
        pipeline: Pipeline | None = None,
        tenants: "tuple[Tenant, ...] | list[Tenant] | None" = None,
        require_api_key: bool = False,
        history: "QueryHistory | str | None" = None,
        store: "TableStore | str | None" = None,
        catalog: Catalog | None = None,
    ):
        if max_workers < 1:
            raise ServiceError(f"max_workers must be >= 1, got {max_workers}")
        if max_queue_depth < 0:
            raise ServiceError(
                f"max_queue_depth must be >= 0, got {max_queue_depth}"
            )
        self._config = config or AtlasConfig()
        self._pipeline = pipeline or Pipeline.default()
        self._results: ResultCache[ExploreResponse] = ResultCache(
            result_cache_size
        )
        self._metrics = ServiceMetrics()
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-service"
        )
        self._max_inflight = max_workers + max_queue_depth
        self._tenants = TenantRegistry(require_api_key=require_api_key)
        for tenant in tenants or ():
            self._tenants.register(tenant)
        self._admission = AdmissionLedger(self._max_inflight)
        if isinstance(history, QueryHistory):
            self._history = history
        else:
            self._history = QueryHistory(history or ":memory:")
        self._owns_store = False
        if catalog is not None:
            if store is not None:
                raise ServiceError(
                    "pass either store or catalog, not both (a catalog "
                    "already carries its store)"
                )
            self._catalog = catalog
        else:
            if isinstance(store, str):
                store = TableStore(store)
                self._owns_store = True
            self._catalog = Catalog(store=store)
        # The registry lock guards only the context LRU; the table
        # registry itself (sources, materializations, generations)
        # lives in the catalog behind its own lock.  Lock order is
        # catalog -> registry (appends advance contexts inside the
        # catalog's critical section), never the reverse — anything
        # needing catalog state must read it before taking _registry.
        self._registry = Lock()
        self._contexts: OrderedDict[tuple, ExecutionContext] = (
            OrderedDict()
        )  # guarded-by: _registry
        self._max_contexts = max_contexts
        self._started = time.monotonic()

    # ------------------------------------------------------------------ #
    # Table registration
    # ------------------------------------------------------------------ #

    @property
    def catalog(self) -> Catalog:
        """The table registry this service serves from (shareable)."""
        return self._catalog

    @property
    def store(self) -> "TableStore | None":
        """The persistent store behind the catalog, if any."""
        return self._catalog.store

    def register(
        self,
        name: "str | None" = None,
        source: "object | None" = None,
        *,
        overwrite: bool = False,
        persist: bool = False,
    ) -> "str | tuple[str, ...]":
        """Serve a table from any source shape — *the* registration verb.

        ``source`` may be a :class:`~repro.dataset.table.Table`, a
        generator-spec mapping (what ``POST /tables`` accepts), any
        :class:`~repro.service.sources.TableSource`, or a
        :mod:`repro.db` connection — a connection with ``name=None``
        registers every visible relation and returns the name tuple.
        ``register(table)`` (source first, no name) derives the name
        from the source.  ``persist=True`` writes the table through to
        the catalog's store; see :meth:`Catalog.register`.
        """
        result = self._catalog.register(
            name, source, overwrite=overwrite, persist=persist
        )
        names = result if isinstance(result, tuple) else (result,)
        with self._registry:
            # Re-registration invalidates any contexts (and through
            # them, memoized statistics) built over the old tenant.
            for key in [k for k in self._contexts if k[0] in names]:
                del self._contexts[key]
        return result

    def register_table(
        self, table: Table, name: str | None = None, *, overwrite: bool = False
    ) -> str:
        """Deprecated: use :meth:`register`\\ ``(name, table)``."""
        warnings.warn(
            "ExplorationService.register_table is deprecated; "
            "use register(name, table)",
            DeprecationWarning,
            stacklevel=2,
        )
        result = self.register(name, table, overwrite=overwrite)
        assert isinstance(result, str)
        return result

    def register_spec(self, spec: dict, *, overwrite: bool = False) -> str:
        """Deprecated: use :meth:`register`\\ ``(spec)``."""
        warnings.warn(
            "ExplorationService.register_spec is deprecated; "
            "use register(spec)",
            DeprecationWarning,
            stacklevel=2,
        )
        result = self.register(None, spec, overwrite=overwrite)
        assert isinstance(result, str)
        return result

    def register_connection(
        self, connection: Connection, *, overwrite: bool = False
    ) -> tuple[str, ...]:
        """Deprecated: use :meth:`register`\\ ``(connection)``."""
        warnings.warn(
            "ExplorationService.register_connection is deprecated; "
            "use register(connection)",
            DeprecationWarning,
            stacklevel=2,
        )
        result = self.register(None, connection, overwrite=overwrite)
        assert isinstance(result, tuple)
        return result

    def table_names(self) -> tuple[str, ...]:
        """Registered table names, registration order."""
        return self._catalog.names()

    def describe_tables(self) -> dict[str, str]:
        """Name → provenance line, for ``/tables`` and diagnostics."""
        return self._catalog.describe()

    def _resolve_table(self, name: str) -> Table:
        return self._catalog.resolve(name)

    def _resolve_with_generation(self, name: str) -> tuple[Table, int]:
        return self._catalog.resolve_with_generation(name)

    # ------------------------------------------------------------------ #
    # Tenancy and history
    # ------------------------------------------------------------------ #

    @property
    def max_inflight(self) -> int:
        """Total admission slots (``max_workers + max_queue_depth``)."""
        return self._max_inflight

    def register_tenant(self, tenant: Tenant) -> Tenant:
        """Add (or replace) a tenant definition; returns it."""
        return self._tenants.register(tenant)

    def resolve_tenant(
        self, tenant: str | None = None, api_key: str | None = None
    ) -> Tenant:
        """The principal a request runs as (401 on unknown keys)."""
        return self._tenants.resolve(tenant=tenant, api_key=api_key)

    @property
    def history(self) -> QueryHistory:
        """The per-request status journal behind ``/history``."""
        return self._history

    def history_entries(
        self,
        limit: int = 50,
        *,
        tenant: str | None = None,
        status: str | None = None,
    ) -> list[dict]:
        """Recent history rows (what ``GET /history`` returns)."""
        return self._history.recent(limit, tenant=tenant, status=status)

    # ------------------------------------------------------------------ #
    # Shared execution contexts
    # ------------------------------------------------------------------ #

    @staticmethod
    def _config_key(config: AtlasConfig) -> tuple:  # cache-key-of: AtlasConfig
        """Identity of a configuration *for caching purposes*.

        The worker count is canonicalized out of the parallelism spec:
        answers are bit-identical at any worker count (only the shard
        layout is statistical), so requests differing in workers alone
        must share one execution context — one O(table) statistics
        build — and one result-cache entry.
        """
        key = config.to_dict()
        parallelism = config.parallelism
        key["parallelism"] = Parallelism(
            workers=1, shards=parallelism.shards
        ).spec()
        return tuple(sorted(key.items()))

    def _context_for(
        self, table_name: str, table: Table, config: AtlasConfig
    ) -> ExecutionContext:
        key = (table_name, self._config_key(config))
        with self._registry:
            context = self._contexts.get(key)
            if context is not None:
                self._contexts.move_to_end(key)
                if context.version < table.version:
                    # The context was registered while an append was in
                    # flight and missed the maintenance pass; catch it
                    # up so an answer at an old version can never be
                    # computed for (and cached under) a newer one.
                    context.advance(table)
                return context
        # Cold context.  Ask the catalog for a persisted-summary factory
        # *before* taking the registry lock — the catalog lock may only
        # be taken first (appends advance contexts inside it).
        factory = self._catalog.warm_factory(table_name, table, config)
        fresh = ExecutionContext(table, config)
        with self._registry:
            context = self._contexts.get(key)
            if context is not None:
                # Another request installed one while we built; theirs
                # wins (its statistics may already be loaded).
                self._contexts.move_to_end(key)
                if context.version < table.version:
                    context.advance(table)
            else:
                context = fresh
                while len(self._contexts) >= self._max_contexts:
                    self._contexts.popitem(last=False)
                self._contexts[key] = context
        if factory is not None:
            try:
                context.adopt_stats(factory)
                self._metrics.count("warm_starts")
            except (StoreError, MapError):
                # An append raced the restore (summary version no longer
                # matches the context's table) — a fresh build is always
                # correct, so warm-start failures never fail an explore.
                pass
        return context

    # ------------------------------------------------------------------ #
    # Exploration
    # ------------------------------------------------------------------ #

    def explore(
        self,
        table: str,
        query: "str | dict | ConjunctiveQuery | None" = None,
        config: dict | AtlasConfig | None = None,
        use_cache: bool = True,
        fidelity: "str | Fidelity | None" = None,
        parallelism: "str | Parallelism | int | None" = None,
        *,
        tenant: str | None = None,
        api_key: str | None = None,
        deadline_seconds: float | None = None,
    ) -> ExploreResponse:
        """Answer one query; the in-process twin of ``POST /explore``.

        ``use_cache=False`` bypasses the result cache entirely (neither
        read nor written) — the cold path benchmarks use it.
        ``fidelity`` overrides the execution fidelity on top of
        ``config`` (a spec string or :class:`Fidelity`);
        ``parallelism`` overrides the multi-core execution the same way
        (a spec string, :class:`Parallelism`, or worker count).  A
        parallel request is *weighed* by the worker processes it asks
        for: admission control charges it ``min(workers, capacity)``
        in-flight slots, so concurrent clients cannot stack more
        sharded builds than the host has cores to give.

        ``tenant``/``api_key`` name the principal (in-process callers
        pass the tenant name; HTTP frontends forward the ``X-Api-Key``
        header); the tenant's token bucket, in-flight cap, and the
        fairness reservation are all enforced here.
        ``deadline_seconds`` bounds the run: past it, the pipeline is
        cancelled cooperatively *between stages* and the call raises
        :class:`DeadlineExceededError` whose ``detail`` proves where it
        stopped.
        """
        self._metrics.count("received")
        if self._admission.closed:
            raise ServiceError("service is shut down")
        principal = self._resolve_checked(tenant, api_key)
        entry = self._history.record(
            tenant=principal.name,
            table=table,
            query=_history_query_text(query),
            fidelity=None if fidelity is None else str(fidelity),
        )
        try:
            response = self._explore_admitted(
                principal,
                entry,
                table,
                query,
                config,
                use_cache,
                fidelity,
                parallelism,
                deadline_seconds,
            )
        except PipelineCancelled as cancelled:
            # The run stopped at a stage boundary; the shared context
            # and caches are exactly as consistent as after a finished
            # run (nothing partial is ever cached).
            self._metrics.count("deadline_exceeded")
            detail = {
                "stages_completed": cancelled.stages_completed,
                "next_stage": cancelled.next_stage,
                "deadline_seconds": deadline_seconds,
            }
            self._history.finish(entry, "deadline_exceeded", detail=detail)
            raise DeadlineExceededError(str(cancelled), detail=detail) from None
        except RateLimitError as error:
            self._metrics.count("rate_limited")
            self._history.finish(
                entry, "rate_limited", detail=dict(error.detail)
            )
            raise
        except AdmissionError as error:
            self._metrics.count("rejected")
            self._history.finish(entry, "rejected", detail=dict(error.detail))
            raise
        except Exception as error:
            self._metrics.count("failed")
            self._history.finish(entry, "failed", detail={"error": str(error)})
            raise
        self._history.finish(
            entry,
            "cached" if response.cached else "completed",
            elapsed=response.elapsed,
        )
        return response

    def _resolve_checked(
        self, tenant: str | None, api_key: str | None
    ) -> Tenant:
        """Resolve the principal, journaling auth rejections."""
        try:
            return self._tenants.resolve(tenant=tenant, api_key=api_key)
        except ServiceError as error:
            self._metrics.count("failed")
            self._history.record(
                tenant="?",
                table="?",
                status="unauthorized",
            )
            raise error

    def _explore_admitted(
        self,
        principal: Tenant,
        entry: int,
        table: str,
        query: "str | dict | ConjunctiveQuery | None",
        config: dict | AtlasConfig | None,
        use_cache: bool,
        fidelity: "str | Fidelity | None",
        parallelism: "str | Parallelism | int | None",
        deadline_seconds: float | None,
    ) -> ExploreResponse:
        # Rate limiting happens before any per-request work: a shed
        # request costs a lock and a few float operations.
        self._tenants.check_rate(principal)
        resolved_query = self._coerce_query(query)
        resolved_config = self._coerce_config(config)
        if fidelity is not None:
            resolved_config = resolved_config.replace(fidelity=fidelity)
        if parallelism is not None:
            resolved_config = resolved_config.replace(parallelism=parallelism)
        table_obj, generation = self._resolve_with_generation(table)

        cache_key = result_cache_key(
            table,
            generation,
            table_obj.version,
            resolved_config,
            resolved_query,
        )
        if use_cache:
            cached = self._results.get(cache_key)
            if cached is not None:
                self._metrics.count("cache_hits")
                return dataclasses.replace(cached, cached=True)

        cancel = (
            CancelToken.with_timeout(deadline_seconds)
            if deadline_seconds is not None
            else None
        )
        weight = self._admission_weight(table, resolved_config)
        # Slot-leak audit: nothing may run between a successful admit
        # and the try below — every later failure, including a worker
        # pool that refuses the submission, must reach the finally.
        self._admission.admit(principal, weight)
        try:
            future = self._pool.submit(
                self._run,
                table,
                table_obj,
                resolved_query,
                resolved_config,
                cache_key if use_cache else None,
                cancel,
            )
            return future.result()
        finally:
            self._admission.release(principal, weight)

    def _admission_weight(self, table_name: str, config: AtlasConfig) -> int:
        """In-flight slots a request occupies.

        A serial request costs one slot; a sharded-parallel request
        costs one per worker process its statistics build may fork
        (clamped to the in-flight capacity so a single over-sized
        request stays admittable on an idle service, and to the shard
        count since a pool never forks more workers than shards).

        Contexts are shared across worker counts (workers never change
        answers, so :meth:`_config_key` canonicalizes them out), which
        means the build runs with the worker count of whichever request
        *created* the context — so the charge is read from the live
        context when one exists, not from the request: a ``parallel:4``
        request served by a ``workers=1`` context costs 1 slot, and a
        ``parallel:1`` request whose shared context would fork 8
        workers on a rebuild costs 8.
        """
        parallelism = config.parallelism
        if not (parallelism.is_parallel and config.fidelity.is_sketch):
            return 1
        key = (table_name, self._config_key(config))
        with self._registry:
            context = self._contexts.get(key)
        if context is not None:
            parallelism = context.config.parallelism
        workers = min(parallelism.resolved_workers, parallelism.shards)
        return max(1, min(workers, self._max_inflight))

    def handle(
        self, request: ExploreRequest, *, api_key: str | None = None
    ) -> ExploreResponse:
        """Serve a wire-shaped request (what the HTTP frontends call)."""
        return self.explore(
            table=request.table,
            query=request.query,
            config=request.config,
            use_cache=request.use_cache,
            fidelity=request.fidelity,
            parallelism=request.parallelism,
            api_key=api_key,
            deadline_seconds=request.deadline_seconds,
        )

    # ------------------------------------------------------------------ #
    # Streaming
    # ------------------------------------------------------------------ #

    def append(self, table: str, rows: "dict | Table") -> AppendResponse:
        """Append rows to a served table; the twin of ``POST /append``.

        ``rows`` is a columnar mapping (or a same-schema table).  The
        whole transition is atomic with respect to the catalog: the
        delta is journaled to the store first if the table is persisted
        (durability before visibility), the materialized table and its
        source are replaced by the version-bumped successor, and every
        live execution context on the table is *maintained
        incrementally* — sketch backends merge delta sketches and top
        up reservoirs, exact backends drop their version-stale memo
        families — before new explores see the new version.  Old cache
        entries stay keyed to the old version and simply become
        unreachable.
        """

        def advance_contexts(new_table: Table) -> None:
            # Runs inside the catalog's critical section (lock order
            # catalog -> registry), so contexts advance through
            # versions in append order.
            with self._registry:
                for key, context in self._contexts.items():
                    if key[0] == table:
                        context.advance(new_table)

        current, new_table = self._catalog.append(
            table, rows, advance_contexts
        )
        self._metrics.count("appends")
        return AppendResponse(
            table=table,
            version=new_table.version,
            n_rows=new_table.n_rows,
            appended=new_table.n_rows - current.n_rows,
        )

    def handle_append(
        self, request: AppendRequest, *, api_key: str | None = None
    ) -> AppendResponse:
        """Serve a wire-shaped append (what the HTTP frontends call).

        Appends run under the same tenancy rules as explores: the key
        must resolve (401 otherwise when keys are required) and the
        tenant's token bucket is charged one request.
        """
        principal = self._tenants.resolve(api_key=api_key)
        self._tenants.check_rate(principal)
        return self.append(request.table, request.rows)

    def _run(
        self,
        table_name: str,
        table: Table,
        query: ConjunctiveQuery,
        config: AtlasConfig,
        cache_key: tuple | None,
        cancel: CancelToken | None = None,
    ) -> ExploreResponse:
        context = self._context_for(table_name, table, config)
        started = time.perf_counter()
        map_set = self._pipeline.run(query, context, cancel)
        elapsed = time.perf_counter() - started
        self._metrics.observe(map_set.timings, elapsed)
        response = ExploreResponse(
            map_set=map_set, cached=False, elapsed=elapsed
        )
        if cache_key is not None:
            self._results.put(cache_key, response)
        self._maybe_persist_summary(table_name, table, context, config)
        return response

    def _maybe_persist_summary(
        self,
        table_name: str,
        table: Table,
        context: ExecutionContext,
        config: AtlasConfig,
    ) -> None:
        """Write the run's built sketch state through to the store.

        Best-effort: the catalog skips tables that are not persisted,
        configurations that are not summarizable, versions that moved
        under the run, and keys already stored — and a store failure
        must never fail the explore that happened to trigger it.
        """
        if self._catalog.store is None:
            return
        if not config.fidelity.is_sketch or config.sample_size is not None:
            return
        if not self._catalog.is_persisted(table_name):
            return
        if context.table is not table:
            # An append advanced the context past the run's table;
            # asking for statistics over the stale object would build a
            # throwaway backend just to serialize it.  The next explore
            # at the new version persists instead.
            return
        try:
            backend = context.stats_for(table)
            if self._catalog.persist_summary(
                table_name, table, backend, config
            ):
                self._metrics.count("summaries_persisted")
        except (StoreError, MapError):
            pass

    def _coerce_query(
        self, query: "str | dict | ConjunctiveQuery | None"
    ) -> ConjunctiveQuery:
        if isinstance(query, ConjunctiveQuery):
            return query
        return resolve_query_payload(query)

    def _coerce_config(
        self, config: "dict | AtlasConfig | None"
    ) -> AtlasConfig:
        if isinstance(config, AtlasConfig):
            return config
        if config is None or isinstance(config, dict):
            return apply_config_overrides(self._config, config)
        raise ProtocolError(
            f"cannot interpret a {type(config).__name__} as a config"
        )

    # ------------------------------------------------------------------ #
    # Observability and lifecycle
    # ------------------------------------------------------------------ #

    def metrics(self) -> dict:
        """The ``/metrics`` snapshot (JSON-ready)."""
        snapshot = self._metrics.snapshot()
        snapshot["result_cache"] = self._results.snapshot()
        with self._registry:
            contexts = list(self._contexts.values())
            n_contexts = len(self._contexts)
        hits = sum(c.counters.hits for c in contexts)
        misses = sum(c.counters.misses for c in contexts)
        total = hits + misses
        # Per-backend-family breakdown: how much traffic each fidelity
        # serves and how its caches behave, aggregated over contexts.
        backends: dict[str, dict] = {}
        for context in contexts:
            for kind, stats in context.backend_snapshot().items():
                merged = backends.setdefault(
                    kind,
                    {"instances": 0, "hits": 0, "misses": 0, "usage": {}},
                )
                merged["instances"] += stats["instances"]
                merged["hits"] += stats["hits"]
                merged["misses"] += stats["misses"]
                for name, count in stats["usage"].items():
                    merged["usage"][name] = (
                        merged["usage"].get(name, 0) + count
                    )
                # Sharded builds report per-shard scan seconds; surface
                # them so operators can see the scan/merge split work.
                shard_info = stats.get("parallel")
                if shard_info:
                    merge_shard_info(
                        merged.setdefault(
                            "parallel", new_shard_aggregate()
                        ),
                        shard_info,
                    )
        for merged in backends.values():
            looked_up = merged["hits"] + merged["misses"]
            merged["hit_rate"] = (
                merged["hits"] / looked_up if looked_up else 0.0
            )
        snapshot["statistics_cache"] = {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / total if total else 0.0,
            "backends": backends,
        }
        snapshot["service"] = {
            "protocol": PROTOCOL_VERSION,
            "uptime_seconds": time.monotonic() - self._started,
            "pending": self._admission.pending_total(),
            "pending_by_tenant": self._admission.pending_by_tenant(),
            "max_inflight": self._max_inflight,
            "contexts": n_contexts,
            "tables": self.describe_tables(),
            "tenants": self._tenants.snapshot(),
        }
        snapshot["history"] = self._history.counts()
        return snapshot

    def close(self) -> None:
        """Stop accepting work and release the worker pool."""
        self._admission.close()
        self._pool.shutdown(wait=True)
        self._history.close()
        if self._owns_store and self._catalog.store is not None:
            # Only a store the service opened itself (path argument) is
            # closed here; an injected store or shared catalog belongs
            # to the caller.
            self._catalog.store.close()

    def __enter__(self) -> "ExplorationService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
