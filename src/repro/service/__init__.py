"""The exploration service: Section-3 map generation as a shared server.

The paper frames Atlas as an *interactive* system — many analysts
firing quasi-real-time queries at one database.  This package is that
deployment shape: a long-lived :class:`ExplorationService` owning
shared per-table :class:`~repro.engine.context.ExecutionContext`\\ s (so
statistics memoized for one client answer the next client's query), a
worker pool for concurrent explores, an LRU result cache keyed by the
deterministic query fingerprint, and admission control that sheds load
with fast 429-style rejections instead of unbounded queueing.

Layers, bottom up:

* :mod:`repro.service.protocol` — the JSON wire shapes (requests,
  answers, errors) built on the ``to_dict/from_dict`` contracts of
  :class:`~repro.core.config.AtlasConfig`,
  :class:`~repro.core.datamap.DataMap`, and
  :class:`~repro.query.query.ConjunctiveQuery`.
* :mod:`repro.service.cache` — the thread-safe LRU result cache.
* :mod:`repro.service.metrics` — request counters and per-stage
  latency percentiles fed by the pipeline's ``StageTimings``.
* :mod:`repro.service.sources` — table sources: in-memory tables,
  :mod:`repro.datagen` generator specs, :mod:`repro.db` connections,
  and :class:`~repro.store.TableStore`-persisted tables, all served
  through one endpoint.
* :mod:`repro.service.catalog` — the :class:`Catalog`: one named-table
  registry (sources, generations, persistence write-through) shared by
  the service, the cluster coordinator, and the REPL.
* :mod:`repro.service.tenancy` — per-tenant API keys, token-bucket
  rate limits, and the fairness-aware admission ledger.
* :mod:`repro.service.history` — the persistent per-request journal
  behind ``/history``.
* :mod:`repro.service.service` — the :class:`ExplorationService` core.
* :mod:`repro.service.server` — the threaded ``http.server`` frontend
  (the compatibility surface).
* :mod:`repro.service.async_server` — the event-loop frontend
  (:class:`AsyncServiceServer`) and :class:`AsyncServiceClient`.
* :mod:`repro.service.client` — the blocking :class:`ServiceClient`.

Quickstart::

    from repro.datagen import census_table
    from repro.service import ExplorationService, ServiceClient, serve

    service = ExplorationService()
    service.register(census_table(n_rows=20_000, seed=0))
    with serve(service) as server:
        client = ServiceClient(server.url)
        answer = client.explore("census", "Age: [17, 90]")
        print(answer.map_set.best.describe())
"""

from repro.service.async_server import (
    AsyncServiceClient,
    AsyncServiceServer,
    serve_async,
)
from repro.service.cache import ResultCache
from repro.service.catalog import Catalog
from repro.service.client import ServiceClient
from repro.service.history import QueryHistory
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import (
    PROTOCOL_VERSION,
    AdmissionError,
    AppendRequest,
    AppendResponse,
    AuthError,
    DeadlineExceededError,
    ExploreRequest,
    ExploreResponse,
    ProtocolError,
    RateLimitError,
    RemoteServiceError,
    ServiceError,
    UnknownTableError,
)
from repro.service.server import ServiceServer, serve
from repro.service.service import ExplorationService
from repro.service.tenancy import Tenant, TenantRegistry, TokenBucket
from repro.service.sources import (
    TABLE_GENERATORS,
    ConnectionSource,
    InMemorySource,
    StoreSource,
    TableSource,
    build_table,
)

__all__ = [
    "AdmissionError",
    "AppendRequest",
    "AppendResponse",
    "AsyncServiceClient",
    "AsyncServiceServer",
    "AuthError",
    "Catalog",
    "ConnectionSource",
    "DeadlineExceededError",
    "ExplorationService",
    "ExploreRequest",
    "ExploreResponse",
    "InMemorySource",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QueryHistory",
    "RateLimitError",
    "RemoteServiceError",
    "ResultCache",
    "ServiceClient",
    "ServiceError",
    "ServiceMetrics",
    "ServiceServer",
    "StoreSource",
    "TABLE_GENERATORS",
    "TableSource",
    "Tenant",
    "TenantRegistry",
    "TokenBucket",
    "UnknownTableError",
    "build_table",
    "serve",
    "serve_async",
]
