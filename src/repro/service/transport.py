"""Persistent JSON-over-HTTP transport for service and cluster clients.

The PR-2 :class:`~repro.service.client.ServiceClient` opened a fresh
TCP connection per request (``urllib.request.urlopen``).  That was fine
when one human drove one query at a time; the cluster coordinator makes
N shard calls *per query*, which puts connection setup on the hot path.
This module gives every client the same keep-alive transport:

* one :class:`http.client.HTTPConnection` **per thread** (a
  ``threading.local``), so the transport object stays safe to share
  across threads — the thread-safety contract ``ServiceClient`` has
  carried since PR 2 — while each thread reuses its socket across
  requests.  Every live connection is *also* tracked in a small
  lock-guarded registry with an epoch counter, so :meth:`HttpTransport.
  close` can drop **every** thread's socket (not just the caller's) and
  surviving threads reconnect lazily on their next request;
* reconnect-on-drop: a keep-alive socket the server closed while idle
  surfaces as ``RemoteDisconnected`` / ``BadStatusLine`` / a reset on
  the *next* request.  When that happens on a **reused** connection the
  transport reconnects and retries once; a failure on a freshly opened
  connection is never retried (the server is actually down, and blind
  replays of non-idempotent requests like ``/append`` would be unsafe
  — on a stale socket the request provably never reached a handler);
* the same typed-error mapping the per-request transport had: HTTP
  error statuses resurrect the server's typed
  :class:`~repro.service.protocol.ServiceError`, unreachable hosts
  raise :class:`~repro.service.protocol.RemoteServiceError`, bodies
  that are not JSON raise :class:`~repro.service.protocol.ProtocolError`.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import urllib.parse

from repro.service.protocol import (
    ProtocolError,
    RemoteServiceError,
    error_from_payload,
)

#: Connection-level failures that mean "this socket is dead", as opposed
#: to an HTTP response carrying an error status.
_DROP_ERRORS = (
    http.client.HTTPException,
    ConnectionError,
    socket.timeout,
    OSError,
)

#: The subset of :data:`_DROP_ERRORS` that specifically signals a stale
#: keep-alive socket the server reaped while idle — the only failures
#: where the request provably never reached a handler, and therefore the
#: only ones a reused connection may retry.  Timeouts are excluded on
#: purpose: a timed-out request *may* have reached the server, so a
#: blind replay of a non-idempotent call would be unsafe (and would
#: double the wait on a genuinely slow shard).
_STALE_ERRORS = (
    http.client.RemoteDisconnected,
    http.client.BadStatusLine,
    ConnectionResetError,
    BrokenPipeError,
)


class HttpTransport:
    """Keep-alive JSON transport to one ``http://host:port`` base URL."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        parsed = urllib.parse.urlsplit(base_url.rstrip("/"))
        if parsed.scheme not in ("http", ""):
            raise ProtocolError(
                f"unsupported URL scheme {parsed.scheme!r} in {base_url!r}"
            )
        host = parsed.hostname or parsed.path or "localhost"
        self._host = host
        self._port = parsed.port or 80
        self._base_url = f"http://{host}:{self._port}"
        self._timeout = timeout
        self._local = threading.local()
        self._lock = threading.Lock()
        #: Bumped by :meth:`close`; a thread-local connection from an
        #: older epoch is stale and must not be reused.
        self._epoch = 0  # guarded-by: _lock
        self._live: list[http.client.HTTPConnection] = []  # guarded-by: _lock

    @property
    def base_url(self) -> str:
        """The normalized ``http://host:port`` this transport talks to."""
        return self._base_url

    @property
    def timeout(self) -> float:
        """Per-request socket timeout in seconds."""
        return self._timeout

    # ------------------------------------------------------------------ #
    # Connection lifecycle (per thread)
    # ------------------------------------------------------------------ #

    def _connection(self) -> "tuple[http.client.HTTPConnection, bool]":
        """This thread's connection and whether it is being reused."""
        connection = getattr(self._local, "connection", None)
        with self._lock:
            epoch = self._epoch
        if connection is not None:
            if getattr(self._local, "epoch", -1) == epoch:
                return connection, True
            # close() ran since this thread last connected; its socket
            # was already closed by close(), so just forget it.
            self._local.connection = None
        connection = http.client.HTTPConnection(
            self._host, self._port, timeout=self._timeout
        )
        with self._lock:
            self._live.append(connection)
            self._local.epoch = self._epoch
        self._local.connection = connection
        return connection, False

    def _drop(self) -> None:
        """Discard this thread's connection (it will reconnect lazily)."""
        connection = getattr(self._local, "connection", None)
        self._local.connection = None
        if connection is None:
            return
        with self._lock:
            try:
                self._live.remove(connection)
            except ValueError:
                pass  # close() already swept it out of the registry
        try:
            connection.close()
        except Exception:  # pragma: no cover - close is best-effort
            pass

    def close(self) -> None:
        """Close **every** thread's connection.

        Earlier builds closed only the calling thread's socket and let
        other threads' keep-alive connections leak until garbage
        collection — a real file-descriptor leak for long-lived shard
        transports.  Now the registry is swept wholesale: the epoch
        bump makes surviving threads treat their thread-local
        connection as stale and reconnect lazily on their next request,
        so ``close()`` is safe to call while other threads are between
        requests.
        """
        with self._lock:
            self._epoch += 1
            doomed, self._live = self._live, []
        for connection in doomed:
            try:
                connection.close()
            except Exception:  # pragma: no cover - close is best-effort
                pass

    # ------------------------------------------------------------------ #
    # Requests
    # ------------------------------------------------------------------ #

    def request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        *,
        headers: dict | None = None,
    ) -> dict:
        """One JSON request/response round trip; raises typed errors.

        ``headers`` adds/overrides request headers (the clients use it
        for ``X-Api-Key``).  Error responses carrying a ``Retry-After``
        header surface it as ``error.detail["retry_after_header"]``.
        """
        body = None
        send_headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            send_headers["Content-Type"] = "application/json"
        if headers:
            send_headers.update(headers)
        connection, reused = self._connection()
        try:
            status, raw, retry_after = self._round_trip(
                connection, method, path, body, send_headers
            )
        except _DROP_ERRORS as exc:
            self._drop()
            if not reused or not isinstance(exc, _STALE_ERRORS):
                raise RemoteServiceError(
                    f"cannot reach service at {self._base_url}: {exc}"
                ) from exc
            # A reused keep-alive socket died — almost always the
            # server reaping an idle connection.  The request never
            # reached a handler, so one retry on a fresh socket is safe
            # for any method.
            connection, _ = self._connection()
            try:
                status, raw, retry_after = self._round_trip(
                    connection, method, path, body, send_headers
                )
            except _DROP_ERRORS as retry_exc:
                self._drop()
                raise RemoteServiceError(
                    f"cannot reach service at {self._base_url}: {retry_exc}"
                ) from retry_exc
        try:
            parsed = json.loads(raw) if raw else {}
        except json.JSONDecodeError as exc:
            if status >= 400:
                # An error status with an unparsable body still maps to
                # a typed failure (matching the PR-2 client's behavior).
                parsed = {}
            else:
                raise ProtocolError(
                    f"server returned invalid JSON: {exc}"
                ) from exc
        if status >= 400:
            if not isinstance(parsed, dict) or "error" not in parsed:
                parsed = {"error": {"status": status, "code": "internal",
                                    "message": f"HTTP {status}"}}
            error = error_from_payload(parsed, status)
            detail = getattr(error, "detail", None)
            if (
                retry_after is not None
                and isinstance(detail, dict)
                and "retry_after_header" not in detail
            ):
                detail["retry_after_header"] = retry_after
            raise error from None
        if not isinstance(parsed, dict):
            raise ProtocolError(
                f"expected a JSON object body, got {type(parsed).__name__}"
            )
        return parsed

    @staticmethod
    def _round_trip(
        connection: http.client.HTTPConnection,
        method: str,
        path: str,
        body: bytes | None,
        headers: dict,
    ) -> tuple[int, bytes, str | None]:
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        raw = response.read()  # drain fully so the socket can be reused
        return response.status, raw, response.getheader("Retry-After")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<HttpTransport {self._base_url}>"
