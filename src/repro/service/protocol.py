"""The JSON wire protocol of the exploration service.

Every shape that crosses the HTTP boundary lives here, as a symmetric
``to_dict``/``from_dict`` pair extending the serialization contract
pioneered by :class:`~repro.core.config.AtlasConfig`:

* :class:`ExploreRequest` — what a client asks,
* :class:`ExploreResponse` — a :class:`~repro.engine.pipeline.MapSet`
  answer plus service metadata (cache provenance, wall clock),
* :class:`ServiceError` and friends — typed errors carrying an HTTP
  status, serialized by :func:`error_to_dict` on the server and
  resurrected by :func:`error_from_payload` in the client, so a remote
  failure raises the *same* exception type a local call would.

The one lossy edge: a transported ``MapSet`` drops its ``clustering``
(the agglomeration tree is an engine-internal diagnostic, quadratic to
serialize); everything a client consumes — ranked maps, scores, covers,
per-stage timings, sample provenance — survives the round trip.
"""

from __future__ import annotations

import dataclasses

from repro.core.config import AtlasConfig
from repro.core.datamap import DataMap
from repro.core.ranking import RankedMap
from repro.engine.pipeline import MapSet, StageTimings
from repro.errors import AtlasError
from repro.query.query import ConjunctiveQuery

#: Bumped on incompatible wire changes; ``/health`` reports it and the
#: client refuses to talk across versions.
PROTOCOL_VERSION = 1


# ---------------------------------------------------------------------- #
# Errors
# ---------------------------------------------------------------------- #


class ServiceError(AtlasError):
    """Base of every service-layer failure; knows its HTTP face.

    ``detail`` is an optional JSON-ready dict of structured context
    that survives the wire round trip — e.g. a 429's ``retry_after``
    seconds, or a 504's ``stages_completed`` boundary proof — so
    clients can react programmatically instead of parsing messages.
    """

    status = 500
    code = "internal"

    def __init__(self, message: str = "", *, detail: dict | None = None):
        super().__init__(message)
        self.detail: dict = dict(detail) if detail else {}


class ProtocolError(ServiceError):
    """A request payload is malformed (bad JSON, missing fields)."""

    status = 400
    code = "bad_request"


class UnknownTableError(ServiceError):
    """The requested table is not registered with the service."""

    status = 404
    code = "unknown_table"


class AdmissionError(ServiceError):
    """Admission control shed the request: queue at capacity (HTTP 429).

    Deliberately cheap — raised before any pipeline work is queued, so
    an overloaded service answers in microseconds and clients can back
    off and retry (:meth:`repro.service.client.ServiceClient.explore`
    does).
    """

    status = 429
    code = "busy"


class RateLimitError(AdmissionError):
    """A tenant exceeded *its own* limit (rate or in-flight cap).

    Still HTTP 429 — and still caught by ``except AdmissionError:`` and
    the client's busy-retry — but the distinct code tells a client "you
    are over your limit" rather than "the service is full".  ``detail``
    carries ``retry_after`` seconds; the HTTP frontends surface it as a
    ``Retry-After`` header.
    """

    status = 429
    code = "rate_limited"


class AuthError(ServiceError):
    """The request's API key is missing or unknown (HTTP 401)."""

    status = 401
    code = "unauthorized"


class DeadlineExceededError(ServiceError):
    """A request's deadline fired before its pipeline finished (504).

    The pipeline stops *cooperatively between stages* (see
    :mod:`repro.engine.cancel`), so ``detail`` proves where:
    ``stages_completed`` fully ran, ``next_stage`` never started, and
    every statistic memoized so far remains valid for later requests.
    """

    status = 504
    code = "deadline_exceeded"


class RemoteServiceError(ServiceError):
    """A server-side failure with no more specific client-side type."""

    status = 500
    code = "internal"


class ShardUnavailableError(ServiceError):
    """A cluster shard server failed mid-query (HTTP 503).

    Raised by the :class:`repro.cluster.ClusterCoordinator` when a
    shard server times out or drops the connection after the one
    permitted retry; the message names the failed shard's index, row
    range, and URL so an operator knows *which* process to look at.
    Defined here — not in :mod:`repro.cluster` — so the error-code
    resurrection maps cover it without the client importing the
    cluster package.
    """

    status = 503
    code = "shard_unavailable"


class StaleShardError(ServiceError):
    """A shard server does not own the requested shard state (HTTP 409).

    The shard-server side of lazy ownership: a scan or append naming a
    ``(table, shard, version)`` the server has not been pushed — or an
    older version than it holds — answers 409, and the coordinator
    re-pushes the shard's columns and retries.  A coordinator restart
    therefore re-attaches to running servers without any handshake.
    """

    status = 409
    code = "stale_shard"


#: Wire ``code`` → exception type, for client-side resurrection.
_ERROR_CODES: dict[str, type[ServiceError]] = {
    cls.code: cls
    for cls in (ProtocolError, UnknownTableError, AdmissionError,
                RateLimitError, AuthError, DeadlineExceededError,
                RemoteServiceError, ShardUnavailableError, StaleShardError)
}


def _known_error_types() -> dict[str, type[Exception]]:
    """Exception classes a client may resurrect by transported name.

    The whitelist is every :class:`AtlasError` subclass the library
    defines plus the service errors above — the exact set a *local*
    call could raise, so ``except QueryError:`` works identically
    against the engine and against the wire.
    """
    import repro.errors as errors_module

    types: dict[str, type[Exception]] = {}
    for name in dir(errors_module):
        obj = getattr(errors_module, name)
        if isinstance(obj, type) and issubclass(obj, AtlasError):
            types[name] = obj
    for cls in (ProtocolError, UnknownTableError, AdmissionError,
                RateLimitError, AuthError, DeadlineExceededError,
                RemoteServiceError, ShardUnavailableError,
                StaleShardError, ServiceError):
        types[cls.__name__] = cls
    return types


_ERROR_TYPES = _known_error_types()


def error_to_dict(error: Exception) -> dict:
    """The wire form of an exception (see :func:`error_from_payload`)."""
    if isinstance(error, ServiceError):
        status, code = error.status, error.code
    elif isinstance(error, AtlasError):
        # Library errors are the caller's fault: bad query text, bad
        # config values, contradictory predicates.
        status, code = 400, "bad_request"
    else:
        status, code = 500, "internal"
    payload: dict = {
        "error": {
            "status": status,
            "code": code,
            "message": str(error),
            "type": type(error).__name__,
        }
    }
    detail = getattr(error, "detail", None)
    if detail:
        payload["error"]["detail"] = dict(detail)
    return payload


def error_from_payload(payload: dict, status: int) -> Exception:
    """Rebuild the typed exception a server serialized.

    The transported ``type`` name wins when it is a known library
    exception (so remote parse/config/query failures raise exactly what
    a local call would); otherwise the generic ``code`` mapping applies.
    """
    wire = payload.get("error", {}) if isinstance(payload, dict) else {}
    code = wire.get("code", "internal")
    message = wire.get("message", f"server returned HTTP {status}")
    cls = _ERROR_TYPES.get(wire.get("type"))
    if cls is None:
        cls = _ERROR_CODES.get(code, RemoteServiceError)
    error = cls(message)
    detail = wire.get("detail")
    if isinstance(error, ServiceError) and isinstance(detail, dict):
        error.detail = detail
    return error


# ---------------------------------------------------------------------- #
# Answer shapes
# ---------------------------------------------------------------------- #


def timings_to_dict(timings: StageTimings) -> dict:
    """Wire form of per-stage wall-clock seconds."""
    return {
        "sampling": timings.sampling,
        "candidates": timings.candidates,
        "clustering": timings.clustering,
        "merging": timings.merging,
        "ranking": timings.ranking,
        "extra": [[name, seconds] for name, seconds in timings.extra],
    }


def timings_from_dict(data: dict) -> StageTimings:
    """Inverse of :func:`timings_to_dict`."""
    try:
        return StageTimings(
            sampling=float(data["sampling"]),
            candidates=float(data["candidates"]),
            clustering=float(data["clustering"]),
            merging=float(data["merging"]),
            ranking=float(data["ranking"]),
            extra=tuple(
                (str(name), float(seconds))
                for name, seconds in data.get("extra", [])
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed timings payload: {exc}") from exc


def ranked_map_to_dict(entry: RankedMap) -> dict:
    """Wire form of one ranked result map."""
    return {
        "map": entry.map.to_dict(),
        "score": entry.score,
        "covers": list(entry.covers),
    }


def ranked_map_from_dict(data: dict) -> RankedMap:
    """Inverse of :func:`ranked_map_to_dict`."""
    try:
        return RankedMap(
            map=DataMap.from_dict(data["map"]),
            score=float(data["score"]),
            covers=tuple(float(c) for c in data["covers"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed ranked-map payload: {exc}") from exc


def map_set_to_dict(map_set: MapSet) -> dict:
    """Wire form of a whole answer (``clustering`` is not transported)."""
    return {
        "query": map_set.query.to_dict(),
        "ranked": [ranked_map_to_dict(r) for r in map_set.ranked],
        "timings": timings_to_dict(map_set.timings),
        "n_rows_used": map_set.n_rows_used,
        "fidelity": map_set.fidelity,
        "version": map_set.version,
    }


def map_set_from_dict(data: dict) -> MapSet:
    """Inverse of :func:`map_set_to_dict`."""
    if not isinstance(data, dict) or "ranked" not in data:
        raise ProtocolError(f"expected a map-set dict, got {data!r}")
    try:
        return MapSet(
            query=ConjunctiveQuery.from_dict(data["query"]),
            ranked=tuple(ranked_map_from_dict(r) for r in data["ranked"]),
            clustering=None,
            timings=timings_from_dict(data["timings"]),
            n_rows_used=int(data["n_rows_used"]),
            fidelity=str(data.get("fidelity", "exact")),
            version=int(data.get("version", 0)),
        )
    except KeyError as exc:
        raise ProtocolError(f"map-set payload missing field {exc}") from None


# ---------------------------------------------------------------------- #
# Payload coercion (shared by the wire path and in-process explores)
# ---------------------------------------------------------------------- #


def resolve_query_payload(query: "str | dict | None") -> ConjunctiveQuery:
    """A wire query payload as a parsed :class:`ConjunctiveQuery`.

    ``None`` means the whole table; strings are the paper's textual
    syntax; dicts are :meth:`ConjunctiveQuery.to_dict` shapes.
    """
    if query is None:
        return ConjunctiveQuery()
    if isinstance(query, str):
        from repro.query.parser import parse_query

        return parse_query(query)
    if isinstance(query, dict):
        return ConjunctiveQuery.from_dict(query)
    raise ProtocolError(
        f"cannot interpret a {type(query).__name__} as a query"
    )


def apply_config_overrides(
    base: AtlasConfig, overrides: dict | None
) -> AtlasConfig:
    """``base`` with a sparse wire dict of overrides applied."""
    if not overrides:
        return base
    merged = base.to_dict()
    unknown = set(overrides) - set(merged)
    if unknown:
        raise ProtocolError(
            f"unknown config overrides: {', '.join(sorted(map(str, unknown)))}"
        )
    merged.update(overrides)
    return AtlasConfig.from_dict(merged)


# ---------------------------------------------------------------------- #
# Request / response
# ---------------------------------------------------------------------- #


@dataclasses.dataclass(frozen=True)
class ExploreRequest:
    """One exploration call as it crosses the wire.

    ``query`` may be ``None`` (explore the whole table), a string in
    the paper's textual syntax, or a structured
    :meth:`~repro.query.query.ConjunctiveQuery.to_dict` payload.
    ``config`` holds :class:`AtlasConfig` *overrides* (a sparse dict),
    applied over the service's default configuration.  ``fidelity`` is
    a :meth:`~repro.core.config.Fidelity.spec` string (``"exact"``,
    ``"sketch[:rows[:eps]]"``) applied on top of ``config`` — the
    one-flag way for a client to trade accuracy for latency.
    ``parallelism`` is a :meth:`~repro.core.config.Parallelism.spec`
    string (``"serial"``, ``"parallel[:workers[:shards]]"``) applied
    the same way; admission control weighs a parallel request by the
    workers it asks for, so one client cannot monopolize the host's
    cores for free.
    """

    table: str
    query: str | dict | None = None
    config: dict | None = None
    use_cache: bool = True
    fidelity: str | None = None
    parallelism: str | None = None
    #: Seconds the server may spend before the run is cancelled
    #: cooperatively between pipeline stages (``None`` = no deadline).
    #: Never part of the result-cache key: a deadline changes whether
    #: an answer arrives, not what the answer is.
    deadline_seconds: float | None = None

    def to_dict(self) -> dict:
        out: dict = {"table": self.table, "use_cache": self.use_cache}
        if self.query is not None:
            out["query"] = self.query
        if self.config:
            out["config"] = dict(self.config)
        if self.fidelity is not None:
            out["fidelity"] = self.fidelity
        if self.parallelism is not None:
            out["parallelism"] = self.parallelism
        if self.deadline_seconds is not None:
            out["deadline_seconds"] = self.deadline_seconds
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "ExploreRequest":
        if not isinstance(data, dict):
            raise ProtocolError(
                f"expected a request object, got {type(data).__name__}"
            )
        table = data.get("table")
        if not isinstance(table, str) or not table:
            raise ProtocolError("request needs a non-empty 'table' name")
        query = data.get("query")
        if query is not None and not isinstance(query, (str, dict)):
            raise ProtocolError(
                "'query' must be a string in the paper's syntax or a "
                f"query dict, got {type(query).__name__}"
            )
        config = data.get("config")
        if config is not None and not isinstance(config, dict):
            raise ProtocolError("'config' must be an object of overrides")
        fidelity = data.get("fidelity")
        if fidelity is not None and not isinstance(fidelity, str):
            raise ProtocolError(
                "'fidelity' must be a spec string like 'exact' or "
                f"'sketch:20000', got {type(fidelity).__name__}"
            )
        parallelism = data.get("parallelism")
        if parallelism is not None and not isinstance(parallelism, str):
            raise ProtocolError(
                "'parallelism' must be a spec string like 'serial' or "
                f"'parallel:4', got {type(parallelism).__name__}"
            )
        deadline = data.get("deadline_seconds")
        if deadline is not None:
            if isinstance(deadline, bool) or not isinstance(
                deadline, (int, float)
            ):
                raise ProtocolError(
                    "'deadline_seconds' must be a positive number, got "
                    f"{type(deadline).__name__}"
                )
            deadline = float(deadline)
            if deadline <= 0:
                raise ProtocolError(
                    f"'deadline_seconds' must be > 0, got {deadline}"
                )
        return cls(
            table=table,
            query=query,
            config=config,
            use_cache=bool(data.get("use_cache", True)),
            fidelity=fidelity,
            parallelism=parallelism,
            deadline_seconds=deadline,
        )

    def resolve_query(self) -> ConjunctiveQuery:
        """The parsed query this request asks about."""
        return resolve_query_payload(self.query)

    def resolve_config(self, base: AtlasConfig) -> AtlasConfig:
        """``base`` with this request's overrides (fidelity and
        parallelism included) applied."""
        resolved = apply_config_overrides(base, self.config)
        if self.fidelity is not None:
            resolved = resolved.replace(fidelity=self.fidelity)
        if self.parallelism is not None:
            resolved = resolved.replace(parallelism=self.parallelism)
        return resolved


@dataclasses.dataclass(frozen=True)
class AppendRequest:
    """A streaming append as it crosses the wire.

    ``rows`` is columnar — ``{column name: [values...]}`` with every
    list the same length — matching :meth:`Table.append`'s mapping
    shape, so the server coerces values to the table's column kinds
    and rejects schema mismatches with a 400.
    """

    table: str
    rows: dict

    def to_dict(self) -> dict:
        return {"table": self.table, "rows": {
            name: list(values) for name, values in self.rows.items()
        }}

    @classmethod
    def from_dict(cls, data: dict) -> "AppendRequest":
        if not isinstance(data, dict):
            raise ProtocolError(
                f"expected an append object, got {type(data).__name__}"
            )
        table = data.get("table")
        if not isinstance(table, str) or not table:
            raise ProtocolError("append needs a non-empty 'table' name")
        rows = data.get("rows")
        if not isinstance(rows, dict) or not rows:
            raise ProtocolError(
                "append needs 'rows': a non-empty {column: [values...]} "
                "object"
            )
        lengths = set()
        for name, values in rows.items():
            if not isinstance(values, list):
                raise ProtocolError(
                    f"append column {name!r} must be a list of values, "
                    f"got {type(values).__name__}"
                )
            lengths.add(len(values))
        if len(lengths) > 1:
            raise ProtocolError(
                "append columns differ in length: "
                + ", ".join(f"{len(v)}" for v in rows.values())
            )
        return cls(table=table, rows={str(k): v for k, v in rows.items()})


@dataclasses.dataclass(frozen=True)
class AppendResponse:
    """The server's acknowledgement of a streaming append."""

    table: str
    #: The table's streaming version after the append.
    version: int
    #: Total rows after the append.
    n_rows: int
    #: Rows this request added.
    appended: int

    def to_dict(self) -> dict:
        return {
            "table": self.table,
            "version": self.version,
            "n_rows": self.n_rows,
            "appended": self.appended,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AppendResponse":
        if not isinstance(data, dict) or "version" not in data:
            raise ProtocolError(
                f"expected an append response object, got {data!r}"
            )
        try:
            return cls(
                table=str(data["table"]),
                version=int(data["version"]),
                n_rows=int(data["n_rows"]),
                appended=int(data["appended"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(
                f"malformed append response: {exc}"
            ) from exc


@dataclasses.dataclass(frozen=True)
class ExploreResponse:
    """A transported answer plus service-side provenance."""

    map_set: MapSet
    #: True when the answer came from the service's result cache.
    cached: bool
    #: Server-side wall-clock seconds for this request (cache hits
    #: report the *original* computation's time as ``computed_seconds``
    #: would be misleading; hits are near-free).
    elapsed: float

    def to_dict(self) -> dict:
        return {
            "map_set": map_set_to_dict(self.map_set),
            "cached": self.cached,
            "elapsed": self.elapsed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExploreResponse":
        if not isinstance(data, dict) or "map_set" not in data:
            raise ProtocolError(f"expected a response object, got {data!r}")
        return cls(
            map_set=map_set_from_dict(data["map_set"]),
            cached=bool(data.get("cached", False)),
            elapsed=float(data.get("elapsed", 0.0)),
        )
