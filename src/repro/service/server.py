"""The ``http.server`` frontend of the exploration service.

A deliberately small, stdlib-only HTTP surface over
:class:`~repro.service.service.ExplorationService`:

====== =========== ====================================================
Method Path        Meaning
====== =========== ====================================================
GET    /health     liveness + protocol version
GET    /tables     registered tables with provenance
POST   /tables     register a generated table (a ``build_table`` spec)
POST   /explore    run one exploration (an ``ExploreRequest`` payload)
POST   /append     append rows to a table (an ``AppendRequest`` payload)
GET    /metrics    counters, cache stats, per-stage latency percentiles
GET    /history    recent request journal (``?limit=&tenant=&status=``)
====== =========== ====================================================

Errors travel as the symmetric JSON payload of
:func:`~repro.service.protocol.error_to_dict`; admission-control and
rate-limit rejections answer ``429`` with a ``Retry-After`` hint taken
from the rejection's ``detail``.  API keys arrive in the ``X-Api-Key``
header.  The server is a ``ThreadingHTTPServer``: each connection gets
a thread, and the *service* bounds actual pipeline concurrency through
its worker pool — this frontend remains the compatibility surface next
to the event-loop :class:`~repro.service.async_server.
AsyncServiceServer`.
"""

from __future__ import annotations

import json
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.service.protocol import (
    PROTOCOL_VERSION,
    AppendRequest,
    ProtocolError,
    ExploreRequest,
    ServiceError,
    error_to_dict,
)
from repro.service.service import ExplorationService
from repro.service.tenancy import retry_after_header

#: Largest accepted request body; exploration payloads are tiny, so
#: anything bigger is a client bug or abuse.
_MAX_BODY_BYTES = 1 << 20


class _ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the service reference."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, service: ExplorationService, quiet: bool):
        super().__init__(address, _Handler)
        self.service = service
        self.quiet = quiet


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        service: ExplorationService = self.server.service
        path, _, raw_query = self.path.partition("?")
        try:
            if path == "/health":
                self._send(200, {"status": "ok", "protocol": PROTOCOL_VERSION})
            elif path == "/tables":
                self._send(200, {"tables": service.describe_tables()})
            elif path == "/metrics":
                self._send(200, service.metrics())
            elif path == "/history":
                params = urllib.parse.parse_qs(raw_query)
                try:
                    limit = int(params.get("limit", ["50"])[0])
                except ValueError as exc:
                    raise ProtocolError("'limit' must be an integer") from exc
                entries = service.history_entries(
                    limit,
                    tenant=params.get("tenant", [None])[0],
                    status=params.get("status", [None])[0],
                )
                self._send(200, {"history": entries})
            else:
                self._send(404, {"error": {
                    "status": 404, "code": "not_found",
                    "message": f"no route {path!r}",
                    "type": "ProtocolError",
                }})
        except Exception as error:
            self._send_error_payload(error)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        service: ExplorationService = self.server.service
        try:
            payload = self._read_json()
            api_key = self.headers.get("X-Api-Key")
            if self.path == "/explore":
                request = ExploreRequest.from_dict(payload)
                response = service.handle(request, api_key=api_key)
                self._send(200, response.to_dict())
            elif self.path == "/append":
                append = AppendRequest.from_dict(payload)
                acknowledged = service.handle_append(append, api_key=api_key)
                self._send(200, acknowledged.to_dict())
            elif self.path == "/tables":
                if not isinstance(payload, dict):
                    raise ProtocolError(
                        "expected a table-spec object, got "
                        f"{type(payload).__name__}"
                    )
                name = service.register(
                    payload, overwrite=bool(payload.pop("overwrite", False))
                )
                self._send(201, {"registered": name})
            else:
                raise ProtocolError(f"no route {self.path!r}")
        except Exception as error:
            self._send_error_payload(error)

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length <= 0:
            raise ProtocolError("request body required")
        if length > _MAX_BODY_BYTES:
            # The body stays unread; keeping the connection alive would
            # let it be misparsed as the next request line.
            self.close_connection = True
            raise ProtocolError(
                f"request body of {length} bytes exceeds the "
                f"{_MAX_BODY_BYTES}-byte limit"
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}") from exc

    def _send(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if status in (429, 503):
            detail = payload.get("error", {}).get("detail", {})
            try:
                hint = float(detail.get("retry_after", 0.0))
            except (TypeError, ValueError):  # pragma: no cover - defensive
                hint = 0.0
            self.send_header("Retry-After", retry_after_header(hint))
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_error_payload(self, error: Exception) -> None:
        payload = error_to_dict(error)
        status = payload["error"]["status"]
        if not self.server.quiet and not isinstance(error, ServiceError):
            # Unexpected failures still get a line in the log.
            self.log_error("unhandled error: %r", error)
        self._send(status, payload)

    def log_message(self, format: str, *args: object) -> None:
        if not self.server.quiet:  # pragma: no cover - manual servers only
            super().log_message(format, *args)


class ServiceServer:
    """A running HTTP frontend bound to one service.

    Usually created through :func:`serve`, which also starts the
    listener thread::

        with serve(service, port=0) as server:
            client = ServiceClient(server.url)
    """

    def __init__(
        self,
        service: ExplorationService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        quiet: bool = True,
    ):
        self._service = service
        self._http = _ServiceHTTPServer((host, port), service, quiet)
        self._thread: threading.Thread | None = None

    @property
    def service(self) -> ExplorationService:
        """The service being exposed."""
        return self._service

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (port 0 resolves here)."""
        return self._http.server_address[:2]

    @property
    def url(self) -> str:
        """Base URL clients should use."""
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ServiceServer":
        """Start serving on a daemon thread; returns self for chaining."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._http.serve_forever,
            name="repro-service-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self, *, close_service: bool = False) -> None:
        """Stop the listener (and optionally the service behind it)."""
        if self._thread is not None:
            self._http.shutdown()
            self._thread.join(timeout=5)
            self._thread = None
        self._http.server_close()
        if close_service:
            self._service.close()

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def serve(
    service: ExplorationService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    quiet: bool = True,
) -> ServiceServer:
    """Start an HTTP frontend for ``service`` (port 0 = ephemeral)."""
    return ServiceServer(service, host, port, quiet=quiet).start()
