"""Multi-tenant identity, rate limiting, and fair admission.

PR 2's admission control was one global in-flight gate: any client
could fill every slot and starve the rest.  This module gives the
service per-tenant identity and fairness:

* a :class:`Tenant` names a principal (optionally keyed by an API key)
  with its own token-bucket rate limit and in-flight cap;
* a :class:`TokenBucket` enforces sustained request rates with bounded
  bursts, answering *how long to wait* when it rejects — the number the
  HTTP frontends ship as ``Retry-After``;
* an :class:`AdmissionLedger` replaces the single global ``_pending``
  counter with per-tenant accounting: the global capacity still bounds
  total pipeline work, each tenant is additionally bounded by its own
  cap, and when several tenants are active at once a single tenant may
  not occupy the slots that would leave the other *active* tenants
  without at least one each.

Every rejection is cheap (a lock and a few integer comparisons, no
pipeline work queued), so a saturated service sheds in microseconds —
the property the E23 saturation benchmark measures at 64–256 clients.
"""

from __future__ import annotations

import dataclasses
import math
import time
from threading import Lock
from typing import Callable

from repro.service.protocol import (
    AdmissionError,
    AuthError,
    RateLimitError,
    ServiceError,
)

#: The implicit tenant of unauthenticated requests.  It keeps PR-2
#: semantics exactly: no rate limit, the full global in-flight
#: allowance — single-user deployments never notice tenancy exists.
ANONYMOUS = "anonymous"


class TokenBucket:
    """A classic token bucket over a monotonic clock.

    ``rate`` tokens/second refill up to ``burst`` capacity;
    :meth:`try_acquire` either takes the tokens (returns 0.0) or
    returns the seconds after which the acquisition would succeed —
    never blocking, so it is safe under the admission lock.
    """

    def __init__(
        self,
        rate: float,
        burst: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0:
            raise ServiceError(f"token rate must be > 0, got {rate}")
        self._rate = float(rate)
        self._burst = float(burst) if burst is not None else max(1.0, rate)
        if self._burst < 1.0:
            raise ServiceError(
                f"burst must allow at least one request, got {self._burst}"
            )
        self._clock = clock
        self._lock = Lock()
        self._tokens = self._burst  # guarded-by: _lock
        self._updated = clock()  # guarded-by: _lock

    @property
    def rate(self) -> float:
        """Sustained tokens per second."""
        return self._rate

    @property
    def burst(self) -> float:
        """Bucket capacity (maximum burst)."""
        return self._burst

    def try_acquire(self, tokens: float = 1.0) -> float:
        """Take ``tokens`` now if available.

        Returns ``0.0`` on success, otherwise the seconds until the
        bucket will hold enough tokens (a ``Retry-After`` hint).
        """
        with self._lock:
            now = self._clock()
            elapsed = max(0.0, now - self._updated)
            self._tokens = min(self._burst, self._tokens + elapsed * self._rate)
            self._updated = now
            if self._tokens >= tokens:
                self._tokens -= tokens
                return 0.0
            return (tokens - self._tokens) / self._rate


@dataclasses.dataclass(frozen=True)
class Tenant:
    """One principal the service knows about.

    ``rate``/``burst`` feed a :class:`TokenBucket` (``None`` = no rate
    limit); ``max_inflight`` caps this tenant's concurrent admission
    slots (``None`` = the service-wide limit).  ``api_key`` is the
    shared secret the HTTP frontends read from ``X-Api-Key``; tenants
    without one can only be named by in-process callers.
    """

    name: str
    api_key: str | None = None
    rate: float | None = None
    burst: float | None = None
    max_inflight: int | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ServiceError("a tenant needs a non-empty name")
        if self.rate is not None and self.rate <= 0:
            raise ServiceError(
                f"tenant {self.name!r}: rate must be > 0, got {self.rate}"
            )
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ServiceError(
                f"tenant {self.name!r}: max_inflight must be >= 1, "
                f"got {self.max_inflight}"
            )

    def build_bucket(
        self, clock: Callable[[], float] = time.monotonic
    ) -> TokenBucket | None:
        """This tenant's rate limiter, or ``None`` when unlimited."""
        if self.rate is None:
            return None
        return TokenBucket(self.rate, self.burst, clock=clock)


class TenantRegistry:
    """API-key resolution plus per-tenant token buckets.

    Unauthenticated requests resolve to :data:`ANONYMOUS` unless
    ``require_api_key`` is set, in which case they are rejected with a
    401 :class:`AuthError` — the multi-tenant deployments E23 models
    hand every client a key.
    """

    def __init__(self, *, require_api_key: bool = False):
        self._lock = Lock()
        self._require_key = require_api_key
        self._tenants: dict[str, Tenant] = {}  # guarded-by: _lock
        self._keys: dict[str, str] = {}  # guarded-by: _lock
        self._buckets: dict[str, TokenBucket] = {}  # guarded-by: _lock
        self.register(Tenant(ANONYMOUS))

    def register(self, tenant: Tenant) -> Tenant:
        """Add (or replace) a tenant; returns it for chaining."""
        with self._lock:
            previous = self._tenants.get(tenant.name)
            if previous is not None and previous.api_key is not None:
                self._keys.pop(previous.api_key, None)
            if tenant.api_key is not None:
                owner = self._keys.get(tenant.api_key)
                if owner is not None and owner != tenant.name:
                    raise ServiceError(
                        f"API key of tenant {tenant.name!r} is already "
                        f"bound to tenant {owner!r}"
                    )
                self._keys[tenant.api_key] = tenant.name
            self._tenants[tenant.name] = tenant
            bucket = tenant.build_bucket()
            if bucket is not None:
                self._buckets[tenant.name] = bucket
            else:
                self._buckets.pop(tenant.name, None)
        return tenant

    def get(self, name: str) -> Tenant:
        """The tenant named ``name``; 401 when unknown."""
        with self._lock:
            tenant = self._tenants.get(name)
        if tenant is None:
            raise AuthError(f"unknown tenant {name!r}")
        return tenant

    def names(self) -> tuple[str, ...]:
        """Registered tenant names, registration order."""
        with self._lock:
            return tuple(self._tenants)

    def resolve(
        self, tenant: str | None = None, api_key: str | None = None
    ) -> Tenant:
        """The principal behind a request.

        An explicit ``tenant`` name wins (in-process callers); else the
        ``api_key`` is looked up; else :data:`ANONYMOUS` — unless keys
        are required, which turns anonymous *and* unknown-key requests
        into 401s.
        """
        if tenant is not None:
            return self.get(tenant)
        if api_key is not None:
            with self._lock:
                name = self._keys.get(api_key)
            if name is None:
                raise AuthError("unknown API key")
            return self.get(name)
        if self._require_key:
            raise AuthError(
                "this service requires an API key (X-Api-Key header)"
            )
        return self.get(ANONYMOUS)

    def check_rate(self, tenant: Tenant, tokens: float = 1.0) -> None:
        """Charge the tenant's bucket; 429 with Retry-After when empty."""
        with self._lock:
            bucket = self._buckets.get(tenant.name)
        if bucket is None:
            return
        retry_after = bucket.try_acquire(tokens)
        if retry_after > 0.0:
            raise RateLimitError(
                f"tenant {tenant.name!r} exceeded its rate limit of "
                f"{bucket.rate:g} req/s (burst {bucket.burst:g}); retry "
                f"in {retry_after:.3f}s",
                detail={"retry_after": retry_after, "tenant": tenant.name},
            )

    def snapshot(self) -> dict:
        """Per-tenant limits for ``/metrics`` (no secrets)."""
        with self._lock:
            return {
                name: {
                    "rate": tenant.rate,
                    "burst": tenant.burst,
                    "max_inflight": tenant.max_inflight,
                    "keyed": tenant.api_key is not None,
                }
                for name, tenant in self._tenants.items()
            }


class AdmissionLedger:
    """Fairness-aware in-flight accounting, replacing the global gate.

    Three rules, checked in order under one lock:

    1. **Global capacity.**  Total charged weight never exceeds
       ``max_inflight`` (exactly the PR-2 bound on pipeline work).
    2. **Tenant cap.**  A tenant never holds more than its own
       ``max_inflight`` (default: the global limit, so single-tenant
       deployments behave as before).
    3. **Active-tenant reservation.**  While *other* tenants hold
       slots, a tenant may not occupy the slots that would leave fewer
       than one per other active tenant — a burst from one key cannot
       wedge the service against every other key that is mid-request.

    Every admission **must** be released exactly once; callers wrap the
    admit/release pair in ``try``/``finally`` (the PR-9 slot-leak audit:
    no code path between :meth:`admit` and the release may raise
    without the ``finally`` seeing it).
    """

    def __init__(self, max_inflight: int):
        self._max_inflight = max_inflight
        self._lock = Lock()
        self._pending: dict[str, int] = {}  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock

    @property
    def max_inflight(self) -> int:
        """Total weight the ledger will admit at once."""
        return self._max_inflight

    def close(self) -> None:
        """Reject every future admission (service shutdown)."""
        with self._lock:
            self._closed = True

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has been called."""
        with self._lock:
            return self._closed

    def pending_total(self) -> int:
        """Currently admitted weight across all tenants."""
        with self._lock:
            return sum(self._pending.values())

    def pending_by_tenant(self) -> dict[str, int]:
        """Currently admitted weight per tenant (non-zero entries)."""
        with self._lock:
            return dict(self._pending)

    def admit(self, tenant: Tenant, weight: int = 1) -> None:
        """Charge ``weight`` slots to ``tenant`` or raise a 429.

        Raises :class:`AdmissionError` (global gate / reservation) —
        per-tenant caps raise :class:`RateLimitError` so clients can
        tell "the service is full" from "you are over *your* limit".
        """
        with self._lock:
            if self._closed:
                raise ServiceError("service is shut down")
            total = sum(self._pending.values())
            mine = self._pending.get(tenant.name, 0)
            # An *explicit* per-tenant cap answers as "you are over your
            # limit"; tenants without one are only bounded by fairness
            # and the global gate below ("the service is full").
            cap = tenant.max_inflight
            if cap is not None and mine + weight > cap:
                raise RateLimitError(
                    f"tenant {tenant.name!r} is at its in-flight cap "
                    f"({mine} slots used, request weighs {weight}, cap "
                    f"{cap}); retry shortly",
                    detail={"retry_after": 0.05, "tenant": tenant.name},
                )
            # Fairness before raw capacity: while others are mid-request
            # the requester's allowance shrinks below the global limit,
            # so the *last* slots stay takeable only by those other
            # tenants — a burst cannot wedge the service against every
            # key that is currently active.
            others_active = sum(
                1
                for name, used in self._pending.items()
                if used > 0 and name != tenant.name
            )
            reserved_cap = max(1, self._max_inflight - others_active)
            if others_active and mine + weight > reserved_cap:
                raise AdmissionError(
                    f"tenant {tenant.name!r} would starve {others_active} "
                    f"other active tenant(s) (fair cap {reserved_cap}, "
                    f"request weighs {weight}); retry shortly",
                    detail={"retry_after": 0.05, "tenant": tenant.name},
                )
            if total + weight > self._max_inflight:
                raise AdmissionError(
                    f"service at capacity ({total} in-flight slots used, "
                    f"request weighs {weight}, limit {self._max_inflight}); "
                    "retry shortly",
                    detail={"retry_after": 0.05, "tenant": tenant.name},
                )
            self._pending[tenant.name] = mine + weight

    def release(self, tenant: Tenant, weight: int = 1) -> None:
        """Return ``weight`` slots; the ``finally`` side of every admit."""
        with self._lock:
            remaining = self._pending.get(tenant.name, 0) - weight
            if remaining > 0:
                self._pending[tenant.name] = remaining
            else:
                self._pending.pop(tenant.name, None)


def retry_after_header(retry_after: float) -> str:
    """``Retry-After`` header value for a rejection hint (whole seconds,
    rounded up so clients never retry early; minimum 1)."""
    return str(max(1, math.ceil(retry_after)))
