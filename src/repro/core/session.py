"""Exploration sessions: the Figure-1 interaction loop.

After Atlas answers a query with maps, the user "can pick one and submit
it for further exploration" (drill into a region — the region becomes the
new query and is itself broken down) or "request a new map" (move down
the ranked list).  :class:`ExplorationSession` keeps that loop's state: a
breadcrumb stack of queries, the current map set, and a cursor into it.
"""

from __future__ import annotations

import dataclasses

from repro.core.atlas import Atlas, MapSet
from repro.core.config import AtlasConfig
from repro.core.datamap import DataMap
from repro.dataset.table import Table
from repro.errors import MapError
from repro.query.query import ConjunctiveQuery


@dataclasses.dataclass(frozen=True)
class SessionStep:
    """One breadcrumb entry: the query explored and the answer obtained."""

    query: ConjunctiveQuery
    map_set: MapSet


class ExplorationSession:
    """Stateful drill-down / next-map loop over one table.

    The session keeps an :class:`~repro.core.personalize.InterestProfile`
    fed by every submitted query, so :meth:`personalized_maps` can
    re-rank the current answer by learned interest (§5.2 future work).
    """

    def __init__(
        self,
        table: Table,
        config: AtlasConfig | None = None,
        *,
        engine: Atlas | None = None,
    ):
        from repro.core.personalize import InterestProfile

        # The Atlas adapter keeps one ExecutionContext alive, so every
        # drill-down in this session reuses the statistics (masks,
        # assignment vectors, cut points) of earlier answers.  Passing
        # ``engine`` shares an existing context (the fluent facade does).
        self._atlas = engine if engine is not None else Atlas(table, config)
        self._history: list[SessionStep] = []
        self._cursor = 0
        self._profile = InterestProfile()

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #

    @property
    def atlas(self) -> Atlas:
        """The underlying engine."""
        return self._atlas

    @property
    def depth(self) -> int:
        """Number of drill-down levels currently on the stack."""
        return len(self._history)

    @property
    def current(self) -> SessionStep:
        """The step being looked at."""
        if not self._history:
            raise MapError("session not started; call start() first")
        return self._history[-1]

    @property
    def current_map(self) -> DataMap:
        """The map the cursor points at."""
        ranked = self.current.map_set.ranked
        if not ranked:
            raise MapError("current map set is empty")
        return ranked[self._cursor].map

    def breadcrumb(self) -> list[str]:
        """Human-readable trail of the queries explored so far."""
        return [step.query.describe_inline() for step in self._history]

    # ------------------------------------------------------------------ #
    # The Figure-1 interaction verbs
    # ------------------------------------------------------------------ #

    def start(self, query: ConjunctiveQuery | None = None) -> MapSet:
        """Begin (or restart) the session at ``query``."""
        self._history = []
        self._cursor = 0
        return self._push(query or ConjunctiveQuery())

    def drill(self, region_index: int) -> MapSet:
        """Submit a region of the current map for further exploration."""
        regions = self.current_map.regions
        if not 0 <= region_index < len(regions):
            raise MapError(
                f"region index {region_index} out of range "
                f"(map has {len(regions)} regions)"
            )
        return self._push(regions[region_index])

    def next_map(self) -> DataMap:
        """Request a new map: advance the cursor (wraps around)."""
        ranked = self.current.map_set.ranked
        if not ranked:
            raise MapError("current map set is empty")
        self._cursor = (self._cursor + 1) % len(ranked)
        return ranked[self._cursor].map

    def back(self) -> MapSet:
        """Pop one drill-down level (error at the root)."""
        if len(self._history) <= 1:
            raise MapError("already at the root of the exploration")
        self._history.pop()
        self._cursor = 0
        return self.current.map_set

    def reconfigure(self, **changes: object) -> MapSet:
        """Change engine configuration mid-session, keeping the trail.

        Rebuilds the engine with the updated config and re-answers every
        query on the breadcrumb at the new configuration, so the
        drill-down history, the breadcrumb, and the learned interest
        profile all survive a mid-session switch (the REPL's
        ``fidelity`` command rides on this).  Returns the re-answered
        current map set.
        """
        if not self._history:
            raise MapError("session not started; call start() first")
        new_config = self._atlas.config.replace(**changes)
        queries = [step.query for step in self._history]
        # Keep the engine's stage composition — only the config changes.
        self._atlas = Atlas(
            self._atlas.table, new_config, pipeline=self._atlas.pipeline
        )
        # Re-answer, not re-submit: the profile already observed these
        # queries once; a config change is not new user intent.
        self._history = [
            SessionStep(query=query, map_set=self._atlas.explore(query))
            for query in queries
        ]
        self._cursor = 0
        return self.current.map_set

    # ------------------------------------------------------------------ #
    # Streaming
    # ------------------------------------------------------------------ #

    def append(self, rows) -> Table:
        """Append rows to the session's table (incremental maintenance).

        The drill-down history keeps showing the answers it was built
        from — maps are snapshots until :meth:`refresh` re-explores
        them against the new version.  Returns the new table.
        """
        return self._atlas.append(rows)

    def refresh(self) -> MapSet:
        """Re-explore the whole breadcrumb against the current version.

        Every query on the stack is re-answered through the (already
        advanced) shared context, so the trail, the cursor map set, and
        the learned interest profile all survive an append.  Re-answer,
        not re-submit: the profile observed these queries once; new
        data is not new user intent.  Returns the refreshed current
        map set.
        """
        if not self._history:
            raise MapError("session not started; call start() first")
        self._history = [
            SessionStep(query=step.query, map_set=self._atlas.explore(step.query))
            for step in self._history
        ]
        self._cursor = 0
        return self.current.map_set

    @property
    def profile(self):
        """The interest profile learned from this session's queries."""
        return self._profile

    def personalized_maps(self, blend: float = 0.3):
        """The current maps re-ranked by entropy + learned interest."""
        from repro.core.personalize import personalized_rank

        return personalized_rank(
            [r.map for r in self.current.map_set.ranked],
            self._atlas.table,
            self._profile,
            blend=blend,
        )

    def _push(self, query: ConjunctiveQuery) -> MapSet:
        map_set = self._atlas.explore(query)
        self._history.append(SessionStep(query=query, map_set=map_set))
        self._cursor = 0
        self._profile.observe_query(query)
        return map_set
