"""Map clustering (paper Section 3.2, step 2 of the framework).

Groups candidate maps that "describe the same aspect of the data":
pairwise VI distances over the data, then agglomerative clustering with a
stop threshold.  Two convenience vetoes implement the Section-2
constraints *during* clustering, exactly the "hierarchical algorithms let
us control the size of the clusters" argument:

* a cluster never grows past ``max_predicates`` maps — merged regions get
  one predicate per clustered attribute;
* a cluster never grows so large that the merged map would exceed
  ``max_regions`` regions (region count of a merge is the product of the
  members' region counts, before empty regions are dropped).
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Sequence

from repro.core.config import AtlasConfig
from repro.core.datamap import DataMap
from repro.core.distance import MapDistanceMatrix, distance_matrix  # noqa: F401 - re-exported
from repro.core.linkage import AgglomerationResult, agglomerate
from repro.dataset.table import Table


@dataclasses.dataclass(frozen=True)
class MapClustering:
    """Outcome of the clustering step."""

    clusters: tuple[tuple[DataMap, ...], ...]
    matrix: MapDistanceMatrix
    agglomeration: AgglomerationResult

    @property
    def n_clusters(self) -> int:
        """Number of clusters formed."""
        return len(self.clusters)

    @property
    def n_merges(self) -> int:
        """Number of merge operations performed (Figure 4 counts these)."""
        return self.agglomeration.n_merges


def cluster_maps(
    candidates: Sequence[DataMap],
    table: Table,
    config: AtlasConfig | None = None,
) -> MapClustering:
    """Cluster candidate maps by statistical dependency (VI distance)."""
    candidates = tuple(candidates)
    matrix = distance_matrix(candidates, table)
    return cluster_maps_from_matrix(candidates, matrix, config)


def cluster_maps_from_matrix(
    candidates: Sequence[DataMap],
    matrix: MapDistanceMatrix,
    config: AtlasConfig | None = None,
) -> MapClustering:
    """Cluster candidates given precomputed distances.

    Used by the SQL-only engine, whose distance matrix comes from
    COUNT(*) statements rather than in-memory assignment vectors.
    """
    config = config or AtlasConfig()
    candidates = tuple(candidates)
    region_counts = [m.n_regions for m in candidates]

    def can_merge(a: tuple[int, ...], b: tuple[int, ...]) -> bool:
        if len(a) + len(b) > config.max_predicates:
            return False
        product_regions = math.prod(region_counts[i] for i in a + b)
        return product_regions <= config.max_regions

    # The threshold is expressed on normalized VI so it is scale-free
    # across maps with different region counts.
    result = agglomerate(
        matrix.normalized,
        threshold=config.dependence_threshold,
        linkage=config.linkage,
        can_merge=can_merge,
    )
    clusters = tuple(
        tuple(candidates[i] for i in cluster) for cluster in result.clusters
    )
    return MapClustering(clusters=clusters, matrix=matrix, agglomeration=result)
