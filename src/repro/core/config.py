"""Atlas engine configuration.

Every "knob" the paper names gets a field here, with the paper's value as
the default:

* ``max_regions = 8`` — "a map with more than 8 regions is hard to read"
  (Section 2).
* ``max_predicates = 3`` — "queries should be simple, with very few
  predicates (we target less than 3)" (Section 2); interpreted as at most
  3 restrictive predicates per region query.
* ``n_splits = 2`` — "we choose to restrict the number of partitions per
  attribute to two" (Section 3.1).
* ``max_maps = 12`` — a data map answer is "a small set of database
  queries (less than a dozen)" (abstract); we cap the ranked result list.

The open parameters the paper flags are exposed too: the cutting
strategies (Section 3.1), the linkage (Section 3.2), the dependence
threshold ("it is not yet clear how to set this parameter", Section 3.2),
and the merge method (Section 3.3 proposes both product and composition).
"""

from __future__ import annotations

import dataclasses
import enum

from repro.errors import ConfigError


class NumericCutStrategy(enum.Enum):
    """How CUT splits an ordinal attribute (Section 3.1 / 5.1)."""

    MEDIAN = "median"          # equi-depth; "currently, we use the median"
    EQUIWIDTH = "equiwidth"    # "fast and intuitive"
    TWO_MEANS = "twomeans"     # "intra-cluster distance ... as in K-means"
    SKETCH = "sketch"          # one-pass GK approximate quantiles (§5.1)


class CategoricalCutStrategy(enum.Enum):
    """How CUT splits a categorical attribute (Section 3.1)."""

    FREQUENCY = "frequency"    # "use the frequency of occurrence of each value"
    ALPHABETIC = "alphabetic"  # "a simple alphabetic order"
    USER_ORDER = "user_order"  # "the order in which the user gives them"


class MergeMethod(enum.Enum):
    """How candidates of one cluster are combined (Section 3.3)."""

    PRODUCT = "product"
    COMPOSITION = "composition"


class Linkage(enum.Enum):
    """Agglomeration rule for map clustering (Section 3.2 favours SLINK)."""

    SINGLE = "single"
    COMPLETE = "complete"
    AVERAGE = "average"


@dataclasses.dataclass(frozen=True)
class Fidelity:
    """Execution fidelity: exact statistics, or a bounded sketch budget.

    The paper's interactivity requirement (Sections 1/2/5.1) argues for
    answering from approximate statistics when exact full-table scans
    are too slow.  A ``Fidelity`` names the trade-off in one value the
    whole system threads end to end — engine, core scoring, service,
    REPL:

    * ``exact`` — every statistic is computed from full-table masks
      (the historical behavior).
    * ``sketch`` — statistics are answered by a
      :class:`~repro.engine.backends.SketchBackend` from a bounded
      reservoir sample of ``budget_rows`` rows plus one-pass
      frequency/quantile sketches with rank error ``epsilon``.

    The wire form is a compact spec string (``"exact"``,
    ``"sketch"``, ``"sketch:20000"``, ``"sketch:20000:0.01"``) so it
    stays hashable inside serialized configs and cache keys.
    """

    mode: str = "exact"
    #: Reservoir sample budget (rows) for the sketch backend.
    budget_rows: int = 20_000
    #: Rank-error fraction for the one-pass quantile sketches.
    epsilon: float = 0.005

    def __post_init__(self) -> None:
        if self.mode not in ("exact", "sketch"):
            raise ConfigError(
                f"fidelity mode must be 'exact' or 'sketch', got {self.mode!r}"
            )
        if self.budget_rows < 1:
            raise ConfigError(
                f"fidelity budget_rows must be >= 1, got {self.budget_rows}"
            )
        if not 0.0 < self.epsilon < 0.5:
            raise ConfigError(
                f"fidelity epsilon must be in (0, 0.5), got {self.epsilon}"
            )

    @property
    def is_exact(self) -> bool:
        """True when statistics come from full-table scans."""
        return self.mode == "exact"

    @property
    def is_sketch(self) -> bool:
        """True when statistics come from bounded samples and sketches."""
        return self.mode == "sketch"

    @classmethod
    def exact(cls) -> "Fidelity":
        """Full-fidelity execution (the default)."""
        return cls(mode="exact")

    @classmethod
    def sketch(
        cls, budget_rows: int = 20_000, epsilon: float = 0.005
    ) -> "Fidelity":
        """Approximate execution under a row/epsilon budget."""
        return cls(mode="sketch", budget_rows=budget_rows, epsilon=epsilon)

    def spec(self) -> str:
        """Compact, parseable wire form (inverse of :meth:`parse`).

        The epsilon uses ``repr`` — the shortest digits that parse back
        to the same float — so ``parse(spec())`` is an exact round trip
        and the serde contract of :class:`AtlasConfig` holds for any
        epsilon.
        """
        if self.is_exact:
            return "exact"
        return f"sketch:{self.budget_rows}:{self.epsilon!r}"

    @classmethod
    def parse(cls, text: str) -> "Fidelity":
        """Build a fidelity from a spec string.

        Accepted shapes: ``"exact"``, ``"sketch"``,
        ``"sketch:<rows>"``, ``"sketch:<rows>:<epsilon>"``.
        """
        parts = text.strip().split(":")
        mode = parts[0].strip().lower()
        if mode == "exact":
            if len(parts) > 1:
                raise ConfigError(
                    f"'exact' fidelity takes no arguments, got {text!r}"
                )
            return cls.exact()
        if mode != "sketch":
            raise ConfigError(
                f"unknown fidelity {text!r}; expected 'exact' or "
                "'sketch[:rows[:epsilon]]'"
            )
        if len(parts) > 3:
            raise ConfigError(f"malformed fidelity spec {text!r}")
        try:
            budget = int(parts[1]) if len(parts) > 1 and parts[1] else 20_000
            epsilon = float(parts[2]) if len(parts) > 2 and parts[2] else 0.005
        except ValueError as exc:
            raise ConfigError(f"malformed fidelity spec {text!r}: {exc}") from exc
        return cls.sketch(budget_rows=budget, epsilon=epsilon)


#: Row-range shards a parallel execution partitions a table into.  A
#: *fixed* default — independent of the worker count — because shard
#: boundaries are part of the statistical recipe (per-shard RNG streams
#: and merge order), while workers are pure execution: the same config
#: must produce bit-identical answers on a laptop and a 64-core server.
DEFAULT_SHARDS = 8


@dataclasses.dataclass(frozen=True)
class Parallelism:
    """Multi-core execution: worker processes over row-range shards.

    The scan/merge split of :mod:`repro.engine.parallel` in one value
    threaded end to end (engine, facade, service, REPL), like
    :class:`Fidelity`:

    * ``workers`` — processes building per-shard statistics
      concurrently; ``"auto"`` resolves to ``os.cpu_count()`` at run
      time.  Workers never affect results, only wall-clock.
    * ``shards`` — row-range partitions of the table.  Shards *do*
      affect the statistics (each shard draws its own deterministic
      RNG stream and the per-shard summaries are merged in shard
      order), so they default to a fixed machine-independent count.

    The wire form is a compact spec string (``"serial"``,
    ``"parallel"``, ``"parallel:4"``, ``"parallel:auto:16"``,
    ``"cluster:2"``) so it stays hashable inside serialized configs and
    cache keys.

    ``mode`` distinguishes *where* the scan runs — ``"local"`` worker
    processes or ``"cluster"`` shard servers (:mod:`repro.cluster`) —
    without touching the statistical recipe: shard boundaries, per-shard
    RNG streams, and merge order are identical in both modes, so a
    cluster run is bit-identical to a local run with the same shard
    count.  In cluster mode ``workers`` counts shard *servers* the
    coordinator fans out to (``"auto"`` = every attached server).
    """

    #: Worker processes (``>= 1``) or ``"auto"`` (= ``os.cpu_count()``).
    #: In cluster mode: shard servers (``"auto"`` = all attached).
    workers: int | str = 1
    #: Row-range shards; ``1`` is the unsharded legacy path.
    shards: int = 1
    #: Execution venue: ``"local"`` worker processes, or ``"cluster"``
    #: shard servers behind a :class:`repro.cluster.ClusterCoordinator`.
    mode: str = "local"

    def __post_init__(self) -> None:
        if isinstance(self.workers, str):
            if self.workers != "auto":
                raise ConfigError(
                    f"parallelism workers must be an int >= 1 or 'auto', "
                    f"got {self.workers!r}"
                )
        elif not isinstance(self.workers, int) or self.workers < 1:
            raise ConfigError(
                f"parallelism workers must be >= 1, got {self.workers!r}"
            )
        if not isinstance(self.shards, int) or self.shards < 1:
            raise ConfigError(
                f"parallelism shards must be >= 1, got {self.shards!r}"
            )
        if self.mode not in ("local", "cluster"):
            raise ConfigError(
                f"parallelism mode must be 'local' or 'cluster', "
                f"got {self.mode!r}"
            )
        if self.mode == "cluster" and self.shards < 2:
            raise ConfigError(
                "cluster parallelism needs shards >= 2 (the scan/merge "
                f"split is what gets distributed), got {self.shards}"
            )

    @property
    def is_parallel(self) -> bool:
        """True when execution is sharded (the scan/merge split runs)."""
        return self.shards > 1

    @property
    def is_cluster(self) -> bool:
        """True when the scan fans out to shard servers over HTTP."""
        return self.mode == "cluster"

    @property
    def resolved_workers(self) -> int:
        """The concrete worker count (``"auto"`` resolved on this host)."""
        import os

        if self.workers == "auto":
            return max(1, os.cpu_count() or 1)
        return int(self.workers)

    @classmethod
    def serial(cls) -> "Parallelism":
        """Single-core, unsharded execution (the default)."""
        return cls(workers=1, shards=1)

    @classmethod
    def of(
        cls, workers: int | str = "auto", shards: int | None = None
    ) -> "Parallelism":
        """Sharded execution with ``workers`` processes.

        ``shards`` defaults to :data:`DEFAULT_SHARDS` — *not* to the
        worker count — so answers are bit-identical for any ``workers``.
        """
        return cls(
            workers=workers,
            shards=DEFAULT_SHARDS if shards is None else shards,
        )

    @classmethod
    def cluster(
        cls, servers: int | str = "auto", shards: int | None = None
    ) -> "Parallelism":
        """Scatter/gather over ``servers`` shard servers.

        ``shards`` defaults to :data:`DEFAULT_SHARDS`, exactly as in
        :meth:`of` — the shard layout (and therefore every answer) is
        the same whether the scan runs on local workers or on a
        cluster.
        """
        return cls(
            workers=servers,
            shards=DEFAULT_SHARDS if shards is None else shards,
            mode="cluster",
        )

    def spec(self) -> str:
        """Compact, parseable wire form (inverse of :meth:`parse`)."""
        if self.is_cluster:
            return f"cluster:{self.workers}:{self.shards}"
        if not self.is_parallel and self.workers == 1:
            return "serial"
        return f"parallel:{self.workers}:{self.shards}"

    @classmethod
    def parse(cls, text: str) -> "Parallelism":
        """Build a parallelism from a spec string.

        Accepted shapes: ``"serial"``, ``"parallel"``,
        ``"parallel:<workers|auto>"``,
        ``"parallel:<workers|auto>:<shards>"``, and the same tail
        shapes under ``"cluster"`` (where the middle component counts
        shard servers instead of worker processes).
        """
        parts = text.strip().split(":")
        mode = parts[0].strip().lower()
        if mode == "serial":
            if len(parts) > 1:
                raise ConfigError(
                    f"'serial' parallelism takes no arguments, got {text!r}"
                )
            return cls.serial()
        if mode not in ("parallel", "cluster"):
            raise ConfigError(
                f"unknown parallelism {text!r}; expected 'serial', "
                "'parallel[:workers[:shards]]', or "
                "'cluster[:servers[:shards]]'"
            )
        if len(parts) > 3:
            raise ConfigError(f"malformed parallelism spec {text!r}")
        workers: int | str = "auto"
        if len(parts) > 1 and parts[1]:
            raw = parts[1].strip().lower()
            if raw == "auto":
                workers = "auto"
            else:
                try:
                    workers = int(raw)
                except ValueError as exc:
                    raise ConfigError(
                        f"malformed parallelism spec {text!r}: {exc}"
                    ) from exc
        shards = DEFAULT_SHARDS
        if len(parts) > 2 and parts[2]:
            try:
                shards = int(parts[2])
            except ValueError as exc:
                raise ConfigError(
                    f"malformed parallelism spec {text!r}: {exc}"
                ) from exc
        if mode == "cluster":
            return cls(workers=workers, shards=shards, mode="cluster")
        return cls(workers=workers, shards=shards)


def _coerce_fidelity(value: object) -> Fidelity:
    """Normalize the ``fidelity`` config field to a :class:`Fidelity`."""
    if isinstance(value, Fidelity):
        return value
    if isinstance(value, str):
        return Fidelity.parse(value)
    raise ConfigError(
        f"expected a Fidelity or spec string, got {type(value).__name__}"
    )


def _coerce_parallelism(value: object) -> Parallelism:
    """Normalize the ``parallelism`` config field to a :class:`Parallelism`.

    Accepts a :class:`Parallelism`, a spec string, or a bare worker
    count (``4`` ⇒ 4 workers over the default shard layout; ``1``
    keeps the default shard layout too, so a worker-count sweep
    compares bit-identical statistics).
    """
    if isinstance(value, Parallelism):
        return value
    if isinstance(value, bool):
        raise ConfigError(
            "expected a Parallelism, spec string, or worker count, got a bool"
        )
    if isinstance(value, int):
        return Parallelism.of(workers=value)
    if isinstance(value, str):
        return Parallelism.parse(value)
    raise ConfigError(
        f"expected a Parallelism, spec string, or worker count, "
        f"got {type(value).__name__}"
    )


def _coerce_strategy(value: object, enum_cls: type[enum.Enum]) -> object:
    """Normalize a strategy field to its enum member when one matches.

    Strings naming an enum *value* (``"median"``) become the member;
    any other string is kept verbatim — it is a key into the
    :mod:`repro.engine.registry` registries, where custom strategies
    live.  Only values are matched, never member names: a custom
    strategy registered as ``"TWO_MEANS"`` must not be silently
    shadowed by ``NumericCutStrategy.TWO_MEANS``.  Anything else is a
    configuration error.
    """
    if isinstance(value, enum_cls):
        return value
    if isinstance(value, str):
        try:
            return enum_cls(value)
        except ValueError:
            return value
    raise ConfigError(
        f"expected a {enum_cls.__name__} or strategy name, "
        f"got {type(value).__name__}"
    )


#: Strategy fields and the enum each one aliases.
_STRATEGY_FIELDS: dict[str, type[enum.Enum]] = {
    "numeric_strategy": NumericCutStrategy,
    "categorical_strategy": CategoricalCutStrategy,
    "merge_method": MergeMethod,
    "linkage": Linkage,
}


@dataclasses.dataclass(frozen=True)
class AtlasConfig:
    """All tunables of the map-generation pipeline.

    Strategy fields accept an enum member or a string registry key
    (:mod:`repro.engine.registry`); strings matching a built-in are
    normalized to the enum, custom names pass through untouched.
    """

    max_regions: int = 8
    max_predicates: int = 3
    n_splits: int = 2
    max_maps: int = 12
    numeric_strategy: NumericCutStrategy | str = NumericCutStrategy.MEDIAN
    categorical_strategy: CategoricalCutStrategy | str = (
        CategoricalCutStrategy.FREQUENCY
    )
    merge_method: MergeMethod | str = MergeMethod.PRODUCT
    linkage: Linkage | str = Linkage.SINGLE
    #: Two maps cluster together when their Rajski distance
    #: (``VI / H(joint)``, 1 ⇔ independent) falls below this value, i.e.
    #: when they share at least ``1 − threshold`` of their joint
    #: information.  The paper leaves this parameter open (§3.2).
    dependence_threshold: float = 0.95
    #: Regions whose cover falls below this fraction are dropped from
    #: merged maps (0 keeps everything with non-zero cover).
    min_region_cover: float = 0.0
    #: When set, the pipeline runs on a uniform sample of this many rows
    #: (the Section-5.1 "sampling and refinement" speed lever).
    sample_size: int | None = None
    #: ε for the sketch cutting strategy.
    sketch_epsilon: float = 0.005
    #: Execution fidelity: ``exact`` full-table statistics, or a
    #: ``sketch`` row/epsilon budget answered by the sketch backend.
    #: Accepts a :class:`Fidelity` or a spec string (``"sketch:20000"``).
    fidelity: Fidelity | str = Fidelity()
    #: Multi-core execution: worker processes over row-range shards
    #: (:mod:`repro.engine.parallel`), or shard servers over the same
    #: shard layout (:mod:`repro.cluster`).  Accepts a
    #: :class:`Parallelism`, a spec string (``"parallel:4"``,
    #: ``"cluster:2"``), or a bare worker count.
    #: Applies to sketch-fidelity statistics; exact execution ignores
    #: it (exact masks are row-backed and cannot be shard-merged).
    parallelism: Parallelism | str | int = Parallelism()
    #: Columnar scan kernels (:mod:`repro.engine.kernels`): ``"auto"``
    #: picks numpy when importable, ``"numpy"`` / ``"python"`` force a
    #: path.  Both produce bit-identical sketch contents (the
    #: differential suite pins them together), so — like ``workers`` —
    #: this is a pure wall-clock knob and stays out of cache keys and
    #: the cluster wire protocol.
    kernels: str = "auto"
    #: Random seed for sampling and tie-breaking randomness.
    seed: int = 0

    def __post_init__(self) -> None:
        for field_name, enum_cls in _STRATEGY_FIELDS.items():
            normalized = _coerce_strategy(getattr(self, field_name), enum_cls)
            object.__setattr__(self, field_name, normalized)
        object.__setattr__(self, "fidelity", _coerce_fidelity(self.fidelity))
        object.__setattr__(
            self, "parallelism", _coerce_parallelism(self.parallelism)
        )
        if self.max_regions < 2:
            raise ConfigError(f"max_regions must be >= 2, got {self.max_regions}")
        if self.max_predicates < 1:
            raise ConfigError(
                f"max_predicates must be >= 1, got {self.max_predicates}"
            )
        if self.n_splits < 2:
            raise ConfigError(f"n_splits must be >= 2, got {self.n_splits}")
        if self.n_splits > self.max_regions:
            raise ConfigError(
                f"n_splits ({self.n_splits}) cannot exceed "
                f"max_regions ({self.max_regions})"
            )
        if self.max_maps < 1:
            raise ConfigError(f"max_maps must be >= 1, got {self.max_maps}")
        if not 0.0 <= self.dependence_threshold <= 1.0:
            raise ConfigError(
                "dependence_threshold must be in [0, 1], "
                f"got {self.dependence_threshold}"
            )
        if not 0.0 <= self.min_region_cover < 1.0:
            raise ConfigError(
                f"min_region_cover must be in [0, 1), got {self.min_region_cover}"
            )
        if self.sample_size is not None and self.sample_size < 1:
            raise ConfigError(
                f"sample_size must be >= 1 or None, got {self.sample_size}"
            )
        if not 0.0 < self.sketch_epsilon < 0.5:
            raise ConfigError(
                f"sketch_epsilon must be in (0, 0.5), got {self.sketch_epsilon}"
            )
        # Mirrors repro.engine.kernels.KERNEL_MODES; kept literal here
        # because core.config sits below the engine layer.
        if self.kernels not in ("auto", "numpy", "python"):
            raise ConfigError(
                "kernels must be 'auto', 'numpy', or 'python', "
                f"got {self.kernels!r}"
            )

    def replace(self, **changes: object) -> "AtlasConfig":
        """Return a copy with the given fields changed."""
        unknown = set(changes) - {f.name for f in dataclasses.fields(self)}
        if unknown:
            raise ConfigError(
                f"unknown config fields: {', '.join(sorted(map(str, unknown)))}"
            )
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]

    def to_dict(self) -> dict[str, object]:
        """Plain-JSON form: enums serialized by their string values.

        The inverse of :meth:`from_dict`; lets a configuration travel
        over the SQL gateway and future service boundaries.
        """
        out: dict[str, object] = {}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if isinstance(value, enum.Enum):
                value = value.value
            elif isinstance(value, (Fidelity, Parallelism)):
                value = value.spec()
            out[field.name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "AtlasConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown keys raise :class:`ConfigError` (a silently dropped
        knob is a misconfigured engine); strategy strings are coerced
        back to enum members by ``__post_init__``.
        """
        field_names = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - field_names
        if unknown:
            raise ConfigError(
                f"unknown config keys: {', '.join(sorted(map(str, unknown)))}; "
                f"known: {', '.join(sorted(field_names))}"
            )
        return cls(**data)  # type: ignore[arg-type]


#: The configuration the paper describes verbatim.
PAPER_DEFAULTS = AtlasConfig()
