"""The Atlas engine: answer a query with a ranked list of data maps.

This is the end-to-end pipeline of Section 3 — candidates, clustering,
merging, ranking — wrapped in the DBMS-front-end shape of Figure 1: the
engine holds a table (the DBMS layer), takes a conjunctive query, and
returns a :class:`MapSet` of ranked maps instead of tuples.

Per-stage wall-clock timings are recorded on every call because the
paper's core non-functional requirement is quasi-real-time latency
(Sections 1, 2, 5.1); the latency benchmarks read them directly.
"""

from __future__ import annotations

import dataclasses
import time
from collections.abc import Iterator

import numpy as np

from repro.core.candidates import generate_candidates
from repro.core.clustering import MapClustering, cluster_maps
from repro.core.config import AtlasConfig
from repro.core.datamap import DataMap
from repro.core.merge import merge_cluster
from repro.core.ranking import RankedMap, rank_maps
from repro.dataset.table import Table
from repro.errors import MapError
from repro.query.query import ConjunctiveQuery


@dataclasses.dataclass(frozen=True)
class StageTimings:
    """Wall-clock seconds spent in each pipeline stage."""

    sampling: float
    candidates: float
    clustering: float
    merging: float
    ranking: float

    @property
    def total(self) -> float:
        """Total pipeline time."""
        return (
            self.sampling
            + self.candidates
            + self.clustering
            + self.merging
            + self.ranking
        )


@dataclasses.dataclass(frozen=True)
class MapSet:
    """The answer to a query: ranked maps plus pipeline metadata."""

    query: ConjunctiveQuery
    ranked: tuple[RankedMap, ...]
    clustering: MapClustering | None
    timings: StageTimings
    n_rows_used: int

    @property
    def maps(self) -> tuple[DataMap, ...]:
        """The ranked maps, best first."""
        return tuple(r.map for r in self.ranked)

    @property
    def best(self) -> DataMap:
        """The top-ranked map."""
        if not self.ranked:
            raise MapError("the map set is empty (no attribute could be cut)")
        return self.ranked[0].map

    def __len__(self) -> int:
        return len(self.ranked)

    def __iter__(self) -> Iterator[RankedMap]:
        return iter(self.ranked)

    def describe(self) -> str:
        """Multi-line rendering of the whole result set."""
        if not self.ranked:
            return "(no maps)"
        blocks = []
        for rank, entry in enumerate(self.ranked, start=1):
            blocks.append(
                f"#{rank} score={entry.score:.3f}\n{entry.map.describe()}"
            )
        return "\n\n".join(blocks)


class Atlas:
    """Active DBMS front-end: generates and ranks data maps from a query.

    Parameters
    ----------
    table:
        The dataset being explored (one relation; use
        :meth:`repro.dataset.Catalog.star_around` for multi-table data).
    config:
        Engine tunables; defaults to the paper's values.
    """

    def __init__(self, table: Table, config: AtlasConfig | None = None):
        if table.n_rows == 0:
            raise MapError("cannot explore an empty table")
        self._table = table
        self._config = config or AtlasConfig()
        self._rng = np.random.default_rng(self._config.seed)

    @property
    def table(self) -> Table:
        """The dataset being explored."""
        return self._table

    @property
    def config(self) -> AtlasConfig:
        """Engine configuration."""
        return self._config

    def explore(self, query: ConjunctiveQuery | None = None) -> MapSet:
        """Run the full Section-3 pipeline for ``query``.

        ``None`` (or an empty query) means "map the whole table": every
        dimension column becomes CUT scope.
        """
        query = query or ConjunctiveQuery()

        started = time.perf_counter()
        scope = self._scope_table(query)
        t_sampling = time.perf_counter() - started

        started = time.perf_counter()
        candidates = generate_candidates(scope, query, self._config)
        t_candidates = time.perf_counter() - started

        if not candidates:
            timings = StageTimings(t_sampling, t_candidates, 0.0, 0.0, 0.0)
            return MapSet(
                query=query,
                ranked=(),
                clustering=None,
                timings=timings,
                n_rows_used=scope.n_rows,
            )

        started = time.perf_counter()
        # Definition 2 takes "a random tuple in this set" — the set the
        # user query describes.  Restricting the distance estimation to
        # those tuples matters on dirty data: otherwise every row that
        # fails the user query escapes *all* maps at once, and that
        # shared escape outcome manufactures dependency between every
        # candidate pair (measured in the E13 robustness experiment).
        described = query.mask(scope)
        cluster_scope = scope if described.all() else scope.select(described)
        if cluster_scope.n_rows == 0:
            cluster_scope = scope
        clustering = cluster_maps(candidates, cluster_scope, self._config)
        t_clustering = time.perf_counter() - started

        started = time.perf_counter()
        merged = [
            merge_cluster(cluster, scope, self._config)
            for cluster in clustering.clusters
        ]
        merged = [m for m in merged if not m.is_trivial]
        t_merging = time.perf_counter() - started

        started = time.perf_counter()
        ranked = rank_maps(merged, scope, max_maps=self._config.max_maps)
        t_ranking = time.perf_counter() - started

        timings = StageTimings(
            t_sampling, t_candidates, t_clustering, t_merging, t_ranking
        )
        return MapSet(
            query=query,
            ranked=tuple(ranked),
            clustering=clustering,
            timings=timings,
            n_rows_used=scope.n_rows,
        )

    def _scope_table(self, query: ConjunctiveQuery) -> Table:
        """Apply the Section-5.1 sampling lever, if configured.

        Cutting and distances are computed over the rows the user query
        describes; restricting to the query's mask happens inside CUT, so
        here we only down-sample the table when asked to.
        """
        if (
            self._config.sample_size is not None
            and self._config.sample_size < self._table.n_rows
        ):
            return self._table.sample(self._config.sample_size, rng=self._rng)
        return self._table
