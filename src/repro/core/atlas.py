"""The Atlas engine: answer a query with a ranked list of data maps.

This is the DBMS-front-end shape of Figure 1 — the engine holds a table
(the DBMS layer), takes a conjunctive query, and returns a
:class:`MapSet` of ranked maps instead of tuples.  Since the engine
refactor, Atlas is a thin adapter over :class:`repro.engine.Pipeline`:
the Section-3 stages (scope → candidates → clustering → merging →
ranking), per-stage timing, and the memoized statistics cache all live
in :mod:`repro.engine`, and Atlas simply binds a table + configuration
into a persistent :class:`~repro.engine.context.ExecutionContext` so
consecutive queries (an interactive drill-down, say) reuse each other's
masks, assignment vectors, and cut points.

:class:`MapSet` and :class:`StageTimings` are re-exported here for
backward compatibility; they are defined in
:mod:`repro.engine.pipeline`.
"""

from __future__ import annotations

from repro.core.config import AtlasConfig
from repro.dataset.table import Table
from repro.engine.context import ExecutionContext
from repro.engine.pipeline import MapSet, Pipeline, StageTimings  # noqa: F401 - re-exported
from repro.errors import MapError
from repro.query.query import ConjunctiveQuery

__all__ = ["Atlas", "MapSet", "StageTimings"]


class Atlas:
    """Active DBMS front-end: generates and ranks data maps from a query.

    Parameters
    ----------
    table:
        The dataset being explored (one relation; use
        :meth:`repro.dataset.Catalog.star_around` for multi-table data).
    config:
        Engine tunables; defaults to the paper's values.
    context:
        Optional pre-existing execution context to share statistics
        with (the fluent facade passes its own so sessions and batches
        hit one cache); must be bound to the same table.
    pipeline:
        Optional custom stage composition; defaults to the native
        Section-3 pipeline.
    """

    def __init__(
        self,
        table: Table,
        config: AtlasConfig | None = None,
        *,
        context: ExecutionContext | None = None,
        pipeline: Pipeline | None = None,
    ):
        if table.n_rows == 0:
            raise MapError("cannot explore an empty table")
        self._table = table
        if context is not None:
            if context.table is not table:
                raise MapError(
                    "the shared context is bound to a different table"
                )
            # The pipeline reads configuration from the context; a
            # conflicting explicit config would be silently ignored,
            # so reject it instead.
            if config is not None and config != context.config:
                raise MapError(
                    "config conflicts with the shared context's config; "
                    "pass one or the other"
                )
            self._config = context.config
            self._context = context
        else:
            self._config = config or AtlasConfig()
            self._context = ExecutionContext(table, self._config)
        self._pipeline = pipeline or Pipeline.default()

    @property
    def table(self) -> Table:
        """The dataset being explored."""
        return self._table

    @property
    def config(self) -> AtlasConfig:
        """Engine configuration."""
        return self._config

    @property
    def context(self) -> ExecutionContext:
        """The execution context carrying the shared statistics cache."""
        return self._context

    @property
    def pipeline(self) -> Pipeline:
        """The stage composition queries run through."""
        return self._pipeline

    def explore(self, query: ConjunctiveQuery | None = None) -> MapSet:
        """Run the full Section-3 pipeline for ``query``.

        ``None`` (or an empty query) means "map the whole table": every
        dimension column becomes CUT scope.  Sampling (when configured)
        draws from a per-query child generator, so identical calls
        return identical maps.
        """
        return self._pipeline.run(query or ConjunctiveQuery(), self._context)

    # ------------------------------------------------------------------ #
    # Streaming
    # ------------------------------------------------------------------ #

    def append(self, rows) -> Table:
        """Append rows to the table and advance the engine onto them.

        ``rows`` takes the shapes :meth:`Table.append` accepts (a
        columnar mapping or a same-schema table).  The shared execution
        context maintains its statistics incrementally — sketch
        backends merge delta sketches and top up their reservoirs,
        exact backends drop version-stale memos — so subsequent
        explores answer at the new version without a cold start.
        Returns the new (version-bumped) table.

        The append builds on the *context's* table — the live version —
        so engines sharing one context (a fluent explorer and its
        session) can interleave appends without forking history.
        """
        return self.advance(self._context.table.append(rows))

    def advance(self, new_table: Table) -> Table:
        """Rebind the engine to an externally appended table version."""
        self._context.advance(new_table)
        self._table = new_table
        return new_table
