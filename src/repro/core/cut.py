"""The CUT primitive (paper Definition 1, Section 3.1).

``CUT_k(Q)`` splits the range ``S_k`` covered by the k-th predicate of a
conjunctive query into ``M`` disjoint sub-ranges whose union is ``S_k``,
producing a map of ``M`` regions.  The paper fixes ``M = 2`` by default
(Section 3.1, "Number of splits") but the implementation supports any M.

Cutting strategies (Section 3.1 / 5.1):

* numeric — ``median`` (equi-depth; the prototype's default per §5.1),
  ``equiwidth``, ``twomeans`` (exact 1-D intra-cluster-distance split),
  ``sketch`` (one-pass Greenwald–Khanna approximate quantiles);
* categorical — ``frequency``, ``alphabetic``, ``user_order``; labels are
  laid out in the chosen order and greedily grouped into M contiguous
  blocks of balanced cover mass.

When a region's values cannot be split (constant column, empty region,
all-missing), CUT degrades to the *trivial map* ``{Q}`` rather than
raising: candidate generation simply skips trivial maps.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.config import (
    AtlasConfig,
    CategoricalCutStrategy,  # noqa: F401 - legacy alias, re-exported
    NumericCutStrategy,  # noqa: F401 - legacy alias, re-exported
)
from repro.core.datamap import DataMap
from repro.dataset.column import CategoricalColumn, NumericColumn
from repro.dataset.table import Table
from repro.engine.registry import (
    CATEGORICAL_ORDERS,
    NUMERIC_CUTS,
    register_categorical_cut,
    register_numeric_cut,
)
from repro.errors import MapError
from repro.query.predicate import (
    RangePredicate,
    SetPredicate,
)
from repro.query.query import ConjunctiveQuery
from repro.sketch.quantile import GKQuantileSketch


def cut(
    table: Table,
    query: ConjunctiveQuery,
    attribute: str,
    config: AtlasConfig | None = None,
    n_splits: int | None = None,
    *,
    region_mask: np.ndarray | None = None,
) -> DataMap:
    """Apply ``CUT_attribute`` to ``query`` over ``table``.

    Returns a :class:`DataMap` of at most ``n_splits`` regions based on
    ``attribute`` (exactly the paper's Definition 1), or the trivial map
    ``{query}`` when no split is possible.  ``region_mask`` lets callers
    that already evaluated the query (the engine's statistics cache)
    skip re-evaluating it here.
    """
    config = config or AtlasConfig()
    splits = config.n_splits if n_splits is None else int(n_splits)
    if splits < 2:
        raise MapError(f"CUT needs at least 2 splits, got {splits}")

    column = table.column(attribute)
    if region_mask is None:
        region_mask = query.mask(table)

    if isinstance(column, NumericColumn):
        regions = _cut_numeric(
            column, region_mask, query, attribute, splits, config
        )
    elif isinstance(column, CategoricalColumn):
        regions = _cut_categorical(
            column, region_mask, query, attribute, splits, config
        )
    else:  # pragma: no cover - no other column kinds exist
        raise MapError(f"cannot CUT column kind {column.kind}")

    if not regions:
        return DataMap([query], attributes=[attribute], label=f"cut:{attribute}")
    return DataMap(regions, attributes=[attribute], label=f"cut:{attribute}")


# --------------------------------------------------------------------- #
# Numeric cutting
# --------------------------------------------------------------------- #


def _cut_numeric(
    column: NumericColumn,
    region_mask: np.ndarray,
    query: ConjunctiveQuery,
    attribute: str,
    splits: int,
    config: AtlasConfig,
) -> list[ConjunctiveQuery]:
    values = column.data[region_mask]
    values = values[~np.isnan(values)]
    if values.size < 2:
        return []
    low, high = float(values.min()), float(values.max())
    if low == high:
        return []

    points = NUMERIC_CUTS.get(config.numeric_strategy)(values, splits, config)

    parent = query.predicate_on(attribute)
    points = _clean_cut_points(points, parent, low, high)
    if not points:
        return []
    sub_predicates = _numeric_subpredicates(parent, attribute, points)
    return [query.with_predicate(pred) for pred in sub_predicates]


def numeric_cut_points_median(values: np.ndarray, splits: int) -> list[float]:
    """Equi-depth cut points: quantiles at ``j / splits``."""
    quantiles = [j / splits for j in range(1, splits)]
    return [float(q) for q in np.quantile(values, quantiles)]


def numeric_cut_points_equiwidth(values: np.ndarray, splits: int) -> list[float]:
    """Equi-width cut points over the observed value range."""
    low, high = float(values.min()), float(values.max())
    return [low + (high - low) * j / splits for j in range(1, splits)]


def numeric_cut_points_sketch(
    values: np.ndarray, splits: int, epsilon: float
) -> list[float]:
    """One-pass approximate equi-depth cut points via a GK sketch (§5.1).

    Built with the canonical sorted-batch construction (one ``np.sort``
    + :meth:`GKQuantileSketch.from_sorted`) — the values are already an
    in-memory column, so sorting here is the whole "one pass".
    """
    sketch = GKQuantileSketch.from_sorted(np.sort(values), epsilon=epsilon)
    return [sketch.query(j / splits) for j in range(1, splits)]


def numeric_cut_points_kmeans(values: np.ndarray, splits: int) -> list[float]:
    """Intra-cluster-distance cut points ("as in K-means", Section 3.1).

    For 2 splits this is the *exact* 1-D 2-means split found by a sorted
    prefix scan; for more splits, Lloyd iterations refine equi-depth
    seeds, and cut points fall midway between adjacent clusters.
    """
    ordered = np.sort(values)
    if splits == 2:
        point = _exact_two_means_point(ordered)
        return [] if point is None else [point]
    return _lloyd_1d_cut_points(ordered, splits)


def _exact_two_means_point(ordered: np.ndarray) -> float | None:
    """Boundary minimizing total within-cluster sum of squares (exact)."""
    n = ordered.size
    if n < 2 or ordered[0] == ordered[-1]:
        return None
    prefix = np.cumsum(ordered)
    prefix_sq = np.cumsum(ordered * ordered)
    sizes_left = np.arange(1, n, dtype=np.float64)          # 1 .. n-1
    sum_left = prefix[:-1]
    sq_left = prefix_sq[:-1]
    sse_left = sq_left - (sum_left * sum_left) / sizes_left
    sizes_right = n - sizes_left
    sum_right = prefix[-1] - sum_left
    sq_right = prefix_sq[-1] - sq_left
    sse_right = sq_right - (sum_right * sum_right) / sizes_right
    total = sse_left + sse_right
    # Only boundaries between distinct values produce a real split.
    valid = ordered[:-1] < ordered[1:]
    if not valid.any():
        return None
    total = np.where(valid, total, np.inf)
    best = int(np.argmin(total))
    return float((ordered[best] + ordered[best + 1]) / 2.0)


def _lloyd_1d_cut_points(ordered: np.ndarray, splits: int) -> list[float]:
    """Lloyd's algorithm in 1-D with equi-depth seeding."""
    seeds = np.quantile(ordered, [(j + 0.5) / splits for j in range(splits)])
    centroids = np.unique(seeds.astype(np.float64))
    for _ in range(50):
        # Assign by nearest centroid; in 1-D boundaries are midpoints.
        boundaries = (centroids[:-1] + centroids[1:]) / 2.0
        labels = np.searchsorted(boundaries, ordered)
        updated = np.array(
            [
                ordered[labels == k].mean() if (labels == k).any() else centroids[k]
                for k in range(centroids.size)
            ]
        )
        if np.allclose(updated, centroids):
            break
        centroids = np.sort(updated)
    boundaries = (centroids[:-1] + centroids[1:]) / 2.0
    return [float(b) for b in boundaries]


def _clean_cut_points(
    points: list[float],
    parent: object,
    low: float,
    high: float,
) -> list[float]:
    """Deduplicate, sort, and keep only points strictly inside the range."""
    lower, upper = low, high
    if isinstance(parent, RangePredicate):
        lower = max(lower, parent.low)
        upper = min(upper, parent.high)
    cleaned: list[float] = []
    for point in sorted(set(float(p) for p in points)):
        if math.isnan(point):
            continue
        if lower < point < upper or (point == lower and point < upper):
            # A point equal to the lower bound still splits when the
            # left side keeps at least the bound value itself (closed).
            if point != lower:
                cleaned.append(point)
            elif isinstance(parent, RangePredicate) and parent.closed_low:
                cleaned.append(point)
            elif not isinstance(parent, RangePredicate):
                cleaned.append(point)
    # Points equal to `low` make a left region of only the minimum value;
    # that is a legal (if extreme) split.  Points >= upper are useless.
    return [p for p in cleaned if p < upper]


def _numeric_subpredicates(
    parent: object, attribute: str, points: list[float]
) -> list[RangePredicate]:
    """Build the partition ``[low, c1], (c1, c2], ..., (c_m, high]``."""
    if isinstance(parent, RangePredicate):
        low, high = parent.low, parent.high
        closed_low, closed_high = parent.closed_low, parent.closed_high
    else:
        low, high = float("-inf"), float("inf")
        closed_low, closed_high = False, False

    boundaries = [low] + list(points) + [high]
    predicates: list[RangePredicate] = []
    for index in range(len(boundaries) - 1):
        seg_low = boundaries[index]
        seg_high = boundaries[index + 1]
        seg_closed_low = closed_low if index == 0 else False
        seg_closed_high = closed_high if index == len(boundaries) - 2 else True
        predicates.append(
            RangePredicate(attribute, seg_low, seg_high, seg_closed_low, seg_closed_high)
        )
    return predicates


# --------------------------------------------------------------------- #
# Categorical cutting
# --------------------------------------------------------------------- #


def _cut_categorical(
    column: CategoricalColumn,
    region_mask: np.ndarray,
    query: ConjunctiveQuery,
    attribute: str,
    splits: int,
    config: AtlasConfig,
) -> list[ConjunctiveQuery]:
    parent = query.predicate_on(attribute)
    if isinstance(parent, SetPredicate):
        admitted = list(parent.ordered_values)
    else:
        admitted = list(column.categories)
    if len(admitted) < 2:
        return []

    codes = column.codes[region_mask]
    counts_by_code = np.bincount(
        codes[codes >= 0], minlength=len(column.categories)
    )
    label_counts = {
        cat: int(counts_by_code[code])
        for code, cat in enumerate(column.categories)
    }
    # Labels admitted by the predicate but absent from the column get 0.
    counts = {label: label_counts.get(label, 0) for label in admitted}

    ordered = ordered_labels(config.categorical_strategy, admitted, counts)
    groups = balanced_label_groups(ordered, counts, splits)
    if len(groups) < 2:
        return []
    return [
        query.with_predicate(SetPredicate(attribute, group)) for group in groups
    ]


def ordered_labels(
    strategy: object, admitted: list[str], counts: dict[str, int]
) -> list[str]:
    """Lay out categorical labels per the configured ordering strategy.

    Shared by the native and SQL-only engines; ``strategy`` may be a
    registry name or a :class:`CategoricalCutStrategy` member.
    """
    return CATEGORICAL_ORDERS.get(strategy)(list(admitted), counts)


def balanced_label_groups(
    ordered: list[str], counts: dict[str, int], splits: int
) -> list[list[str]]:
    """Greedy contiguous grouping of labels into mass-balanced blocks.

    Walks the labels in the given order and closes a block once its mass
    reaches the remaining-average target, always leaving enough labels for
    the remaining blocks.  All labels end up in exactly one block, so the
    blocks partition the admitted set (Definition 1's union constraint).
    """
    splits = min(splits, len(ordered))
    total = sum(counts[label] for label in ordered)
    groups: list[list[str]] = []
    current: list[str] = []
    current_mass = 0
    remaining_mass = total
    for index, label in enumerate(ordered):
        current.append(label)
        current_mass += counts[label]
        blocks_left = splits - len(groups)
        labels_left = len(ordered) - index - 1
        target = remaining_mass / blocks_left if blocks_left else float("inf")
        must_close = labels_left == blocks_left - 1 and blocks_left > 1
        if blocks_left > 1 and (current_mass >= target or must_close):
            groups.append(current)
            remaining_mass -= current_mass
            current = []
            current_mass = 0
    if current:
        groups.append(current)
    return [g for g in groups if g]


# --------------------------------------------------------------------- #
# Built-in strategy registrations
# --------------------------------------------------------------------- #
# The enums in :mod:`repro.core.config` are aliases: each member's value
# is the registry key registered here, so string and enum dispatch are
# interchangeable and third parties can add strategies without touching
# this module.


@register_numeric_cut("median")
def _median_strategy(values, splits, config):
    """Equi-depth splits — "currently, we use the median" (§5.1)."""
    return numeric_cut_points_median(values, splits)


@register_numeric_cut("equiwidth")
def _equiwidth_strategy(values, splits, config):
    """Equi-width splits — "fast and intuitive" (§3.1)."""
    return numeric_cut_points_equiwidth(values, splits)


@register_numeric_cut("twomeans")
def _twomeans_strategy(values, splits, config):
    """Intra-cluster-distance splits "as in K-means" (§3.1)."""
    return numeric_cut_points_kmeans(values, splits)


@register_numeric_cut("sketch")
def _sketch_strategy(values, splits, config):
    """One-pass GK approximate quantile splits (§5.1)."""
    return numeric_cut_points_sketch(values, splits, config.sketch_epsilon)


@register_categorical_cut("frequency")
def _frequency_order(labels, counts):
    """Most frequent first (ties alphabetic) — the §3.1 default."""
    return sorted(labels, key=lambda lab: (-counts[lab], lab))


@register_categorical_cut("alphabetic")
def _alphabetic_order(labels, counts):
    """"A simple alphabetic order" (§3.1)."""
    return sorted(labels)


@register_categorical_cut("user_order")
def _user_order(labels, counts):
    """"The order in which the user gives them" (§3.1)."""
    return list(labels)
