"""Ranking the result set (paper Section 3.4, step 4).

Maps are ranked "by decreasing order of entropy" of their cover
distribution: maps with many queries score high, ties favour the most
balanced map, and maps revealing small outlier subsets sink to the end.

Covers are renormalized over the regions (escaped tuples excluded) so the
score reflects *how the map partitions what it covers*; a map covering
nothing scores zero.  Ties after entropy break deterministically: fewer
attributes first (simpler map), then label.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Sequence

import numpy as np

from repro.core.datamap import DataMap
from repro.core.information import entropy
from repro.dataset.table import Table


@dataclasses.dataclass(frozen=True)
class RankedMap:
    """One result map with its ranking score."""

    map: DataMap
    score: float
    covers: tuple[float, ...]

    @property
    def label(self) -> str:
        """Display label of the underlying map."""
        return self.map.label


def map_entropy(data_map: DataMap, table: Table) -> float:
    """Entropy (nats) of the map's renormalized cover distribution."""
    covers = data_map.covers(table)
    total = float(covers.sum())
    if total <= 0.0:
        return 0.0
    return entropy(covers / total)


def rank_maps(
    maps: Sequence[DataMap],
    table: Table,
    max_maps: int | None = None,
    covers_fn: "Callable[[DataMap], np.ndarray] | None" = None,
) -> list[RankedMap]:
    """Rank maps by decreasing entropy (Section 3.4).

    ``max_maps`` truncates the ranked list (the abstract promises "less
    than a dozen" queries per map and a small list of maps).
    ``covers_fn`` overrides how covers are measured — the engine's
    ranking stage passes its memoized statistics cache — so the score
    formula and tie-breaking live in exactly one place.
    """
    if covers_fn is None:
        covers_fn = lambda m: m.covers(table)  # noqa: E731
    ranked: list[RankedMap] = []
    for data_map in maps:
        covers = covers_fn(data_map)
        total = float(covers.sum())
        score = float(entropy(covers / total)) if total > 0 else 0.0
        ranked.append(
            RankedMap(
                map=data_map,
                score=score,
                covers=tuple(float(c) for c in covers),
            )
        )
    ranked.sort(
        key=lambda r: (-r.score, len(r.map.attributes), r.map.label)
    )
    if max_maps is not None:
        ranked = ranked[:max_maps]
    return ranked


def balance(covers: Sequence[float]) -> float:
    """Balance score in [0, 1]: entropy over its maximum for that size.

    1 means perfectly even covers; used by tests and benches to verify
    the tie-breaking claim of Section 3.4.
    """
    covers = np.asarray(covers, dtype=np.float64)
    covers = covers[covers > 0]
    if covers.size <= 1:
        return 1.0
    h = entropy(covers / covers.sum())
    return float(h / np.log(covers.size))
