"""Pairwise map distances (paper Section 3.2, "Distance").

The distance between two maps is the Variation of Information between
their underlying variables (Definition 2), estimated from the table.
:class:`MapDistanceMatrix` assigns every tuple to its region once per map
and reuses the assignment vectors for all pairs — the paper's §5.1 point
that CUT/assignment "is called many times" and must be cheap.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from repro.core.contingency import joint_distribution_from_assignments
from repro.core.datamap import DataMap
from repro.core.information import rajski_distance, variation_of_information
from repro.dataset.table import Table
from repro.errors import MapError


@dataclasses.dataclass(frozen=True)
class MapDistanceMatrix:
    """Symmetric VI distances between candidate maps.

    Attributes
    ----------
    maps:
        The candidate maps, indexing the matrix.
    distances:
        ``distances[i, j]`` = VI between maps i and j (nats).
    normalized:
        Rajski distances ``VI / H(joint)`` in [0, 1] (1 ⇔ independent);
        the clustering threshold is expressed on this scale.
    """

    maps: tuple[DataMap, ...]
    distances: np.ndarray
    normalized: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.maps)
        if self.distances.shape != (n, n) or self.normalized.shape != (n, n):
            raise MapError("distance matrix shape does not match map count")

    def distance(self, i: int, j: int) -> float:
        """VI distance between maps ``i`` and ``j``."""
        return float(self.distances[i, j])

    def closest_pair(self) -> tuple[int, int]:
        """Indices of the closest distinct pair (ties: lowest indices)."""
        n = len(self.maps)
        if n < 2:
            raise MapError("need at least two maps for a closest pair")
        masked = self.distances + np.diag(np.full(n, np.inf))
        flat = int(np.argmin(masked))
        return divmod(flat, n)


def distance_matrix(maps: Sequence[DataMap], table: Table) -> MapDistanceMatrix:
    """Compute all pairwise VI distances over ``table``."""
    maps = tuple(maps)
    if not maps:
        raise MapError("need at least one map")
    if table.n_rows == 0:
        raise MapError("cannot compute distances on an empty table")
    assignments = [m.assign(table) for m in maps]
    n = len(maps)
    raw = np.zeros((n, n), dtype=np.float64)
    scaled = np.zeros((n, n), dtype=np.float64)
    for i in range(n):
        for j in range(i + 1, n):
            joint = joint_distribution_from_assignments(
                assignments[i], assignments[j],
                maps[i].n_regions, maps[j].n_regions,
            )
            raw[i, j] = raw[j, i] = variation_of_information(joint)
            scaled[i, j] = scaled[j, i] = rajski_distance(joint)
    return MapDistanceMatrix(maps=maps, distances=raw, normalized=scaled)


def map_vi(map_a: DataMap, map_b: DataMap, table: Table) -> float:
    """Convenience: VI between two maps over ``table``."""
    joint = joint_distribution_from_assignments(
        map_a.assign(table), map_b.assign(table),
        map_a.n_regions, map_b.n_regions,
    )
    return variation_of_information(joint)


def map_nvi(map_a: DataMap, map_b: DataMap, table: Table) -> float:
    """Convenience: Rajski distance in [0, 1] between two maps."""
    joint = joint_distribution_from_assignments(
        map_a.assign(table), map_b.assign(table),
        map_a.n_regions, map_b.n_regions,
    )
    return rajski_distance(joint)
