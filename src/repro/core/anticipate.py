"""Anticipative computation (paper Section 5.1).

"The idea of this approach is to perform calculations offline, by
anticipating what the user will ask.  There are two periods during which
this is possible: before the first query, and during the idle time
between each query."

The paper leaves "deciding what to compute" open; the natural policy in
the Figure-1 interaction model is: *after every answer, the user's next
query is one of the displayed regions* — so during idle time we
precompute the map sets of the regions of the top-ranked maps.

:class:`AnticipativeExplorer` wraps an :class:`~repro.core.atlas.Atlas`
with a query-keyed cache plus that prefetch policy.  ``prefetch()`` is
explicitly callable (simulating the idle period); ``explore()`` serves
from the cache when it can.
"""

from __future__ import annotations

import dataclasses

from repro.core.atlas import Atlas, MapSet
from repro.core.config import AtlasConfig
from repro.dataset.table import Table
from repro.query.query import ConjunctiveQuery


@dataclasses.dataclass
class CacheStats:
    """Hit/miss counters for the anticipative cache."""

    hits: int = 0
    misses: int = 0
    prefetched: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of explore() calls served from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class AnticipativeExplorer:
    """Atlas with idle-time prefetching of likely next queries."""

    def __init__(
        self,
        table: Table,
        config: AtlasConfig | None = None,
        top_maps_to_prefetch: int = 2,
        max_cache_entries: int = 256,
    ):
        self._atlas = Atlas(table, config)
        self._top_maps = int(top_maps_to_prefetch)
        self._max_entries = int(max_cache_entries)
        self._cache: dict[ConjunctiveQuery, MapSet] = {}
        self.stats = CacheStats()

    @property
    def atlas(self) -> Atlas:
        """The wrapped engine."""
        return self._atlas

    @property
    def cache_size(self) -> int:
        """Number of cached answers."""
        return len(self._cache)

    def explore(self, query: ConjunctiveQuery | None = None) -> MapSet:
        """Answer a query, from cache when anticipated."""
        query = query or ConjunctiveQuery()
        cached = self._cache.get(query)
        if cached is not None:
            self.stats.hits += 1
            return cached
        self.stats.misses += 1
        result = self._atlas.explore(query)
        self._remember(query, result)
        return result

    def prefetch(self, answer: MapSet) -> int:
        """Idle-time work: precompute the drill-downs of ``answer``.

        Every region of the ``top_maps_to_prefetch`` best maps is a
        likely next query; compute and cache each one not already
        cached.  Returns the number of queries computed.
        """
        computed = 0
        for entry in answer.ranked[: self._top_maps]:
            for region in entry.map.regions:
                if region in self._cache:
                    continue
                self._remember(region, self._atlas.explore(region))
                self.stats.prefetched += 1
                computed += 1
        return computed

    def explore_and_prefetch(
        self, query: ConjunctiveQuery | None = None
    ) -> MapSet:
        """Answer, then use the idle period to anticipate the next step."""
        result = self.explore(query)
        self.prefetch(result)
        return result

    def _remember(self, query: ConjunctiveQuery, result: MapSet) -> None:
        if len(self._cache) >= self._max_entries:
            # Drop the oldest entry (insertion order = arrival order).
            oldest = next(iter(self._cache))
            del self._cache[oldest]
        self._cache[query] = result
