"""Merging maps within a cluster (paper Section 3.3, step 3).

Two operators:

* :func:`product` — Definition 3.  ``M1 × M2`` intersects each region of
  M1 with each region of M2.  Associative and commutative, so it extends
  to any number of maps.  Contradictory intersections (provably empty
  queries) and zero-cover regions are dropped — the definition permits
  them but they carry no information and waste the region budget.
* :func:`composition` — Definition 4.  ``M1 ∘ M2`` re-CUTs every region
  of M1 on the attributes M2 is based on.  With a data-adaptive cutting
  strategy the cut points differ per region, which is what lets
  composition "reveal the clusters in the data" (Section 3.3.2).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.config import AtlasConfig
from repro.core.cut import cut
from repro.core.datamap import DataMap
from repro.dataset.table import Table
from repro.engine.registry import MERGES, register_merge
from repro.errors import MapError
from repro.query.query import ConjunctiveQuery


def product(
    maps: Sequence[DataMap],
    table: Table | None = None,
    min_region_cover: float = 0.0,
) -> DataMap:
    """The product operator ``M1 × M2 × ...`` (Definition 3).

    When ``table`` is given, regions whose cover is ``<= min_region_cover``
    are dropped (empty intersections carry no tuples).  Without a table
    the full syntactic product is returned, minus provably contradictory
    combinations.
    """
    maps = list(maps)
    if not maps:
        raise MapError("product of zero maps is undefined")
    if len(maps) == 1:
        return maps[0]

    regions: list[ConjunctiveQuery] = list(maps[0].regions)
    for other in maps[1:]:
        combined: list[ConjunctiveQuery] = []
        for left in regions:
            for right in other.regions:
                conjunction = left.conjoin(right)
                if conjunction is not None:
                    combined.append(conjunction)
        regions = combined
    if not regions:
        raise MapError("product produced no satisfiable region")

    attributes: list[str] = []
    for m in maps:
        for attr in m.attributes:
            if attr not in attributes:
                attributes.append(attr)
    label = " × ".join(m.label for m in maps)
    merged = DataMap(regions, attributes=attributes, label=label)
    if table is not None:
        merged = merged.drop_empty_regions(table, min_cover=min_region_cover)
    return merged


def composition(
    maps: Sequence[DataMap],
    table: Table,
    config: AtlasConfig | None = None,
    base_query: ConjunctiveQuery | None = None,
) -> DataMap:
    """The composition operator ``M1 ∘ M2 ∘ ...`` (Definition 4).

    Each region of the first map is recursively CUT on the attributes of
    the remaining maps; cut points are computed *within the region*, so a
    data-adaptive strategy (e.g. ``twomeans``) adapts to local structure.

    ``base_query`` only disambiguates the parent ranges of the first map's
    own attribute; regions carry their predicates so it is optional.
    """
    config = config or AtlasConfig()
    maps = list(maps)
    if not maps:
        raise MapError("composition of zero maps is undefined")
    if len(maps) == 1:
        return maps[0]

    base, *rest = maps
    rest_attributes: list[str] = []
    for m in rest:
        for attr in m.attributes:
            if attr not in rest_attributes and attr not in base.attributes:
                rest_attributes.append(attr)

    regions: list[ConjunctiveQuery] = list(base.regions)
    for attribute in rest_attributes:
        refined: list[ConjunctiveQuery] = []
        for region in regions:
            sub_map = cut(table, region, attribute, config)
            refined.extend(sub_map.regions)
        regions = refined

    attributes = list(base.attributes) + rest_attributes
    label = " ∘ ".join(m.label for m in maps)
    merged = DataMap(regions, attributes=attributes, label=label)
    return merged.drop_empty_regions(table, min_cover=config.min_region_cover)


def merge_cluster(
    cluster: Sequence[DataMap],
    table: Table,
    config: AtlasConfig | None = None,
) -> DataMap:
    """Merge one cluster with the configured method (Section 3.3).

    Dispatches through the :data:`~repro.engine.registry.MERGES`
    registry, so ``config.merge_method`` may name a custom operator.
    """
    config = config or AtlasConfig()
    return MERGES.get(config.merge_method)(cluster, table, config)


@register_merge("product")
def _product_merge(
    cluster: Sequence[DataMap], table: Table, config: AtlasConfig
) -> DataMap:
    """Definition 3: intersect regions pairwise."""
    return product(cluster, table, min_region_cover=config.min_region_cover)


@register_merge("composition")
def _composition_merge(
    cluster: Sequence[DataMap], table: Table, config: AtlasConfig
) -> DataMap:
    """Definition 4: re-CUT each region on the partners' attributes."""
    return composition(cluster, table, config)
