"""Candidate map generation (paper Section 3.1, step 1 of the framework).

Candidates are "several simple maps, each based on a single attribute",
obtained by applying ``CUT_k`` to every predicate of the user query.  When
the user query carries no predicates at all, every DIMENSION column of the
table (Section-5.2 cardinality guard applied) is cut instead — the "just
give me a feel for the data" entry point.

Trivial maps (attributes that would not split: constant columns, single
category) are silently skipped, as are attributes classified KEY or TEXT.
"""

from __future__ import annotations

from repro.core.config import AtlasConfig
from repro.core.cut import cut
from repro.core.datamap import DataMap
from repro.dataset.table import Table
from repro.dataset.types import ColumnRole
from repro.query.query import ConjunctiveQuery


def candidate_attributes(table: Table, query: ConjunctiveQuery) -> list[str]:
    """Attributes eligible for CUT: query scope ∩ mappable columns."""
    if len(query) > 0:
        scope = [a for a in query.attributes if a in table]
    else:
        scope = list(table.column_names)
    return [
        attr
        for attr in scope
        if table.column(attr).role() is ColumnRole.DIMENSION
    ]


def generate_candidates(
    table: Table,
    query: ConjunctiveQuery,
    config: AtlasConfig | None = None,
) -> list[DataMap]:
    """Produce one single-attribute candidate map per eligible attribute."""
    config = config or AtlasConfig()
    candidates: list[DataMap] = []
    for attribute in candidate_attributes(table, query):
        candidate = cut(table, query, attribute, config)
        if candidate.is_trivial:
            continue
        candidates.append(candidate)
    return candidates
