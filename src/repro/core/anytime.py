"""Anytime map generation (paper Section 5.1, "Sampling and refinement").

The paper sketches "an anytime variation of our framework: the quality of
the results would improve as computation time increases.  It would
continually take small samples of the data and update a set of
approximate results.  This way, the user would have instant results and
the system could interrupt the exploration after a timeout."

:class:`AnytimeExplorer` implements exactly that contract:

* a :class:`~repro.sketch.reservoir.GrowingSample` yields nested uniform
  samples of geometrically increasing size;
* each *tick* re-runs the full pipeline on the current sample and
  publishes an :class:`AnytimeResult` snapshot;
* a *stability* score — 1 − normalized VI between the current and the
  previous top map, measured on the current sample — quantifies result
  convergence, so callers can stop on stability, on timeout, or on
  sample exhaustion (whichever comes first).
"""

from __future__ import annotations

import dataclasses
import time
from collections.abc import Iterator

from repro.core.config import AtlasConfig
from repro.core.distance import map_nvi
from repro.dataset.table import Table
from repro.engine.context import ExecutionContext
from repro.engine.pipeline import MapSet, Pipeline
from repro.errors import MapError
from repro.query.query import ConjunctiveQuery
from repro.sketch.reservoir import GrowingSample


@dataclasses.dataclass(frozen=True)
class AnytimeResult:
    """One published snapshot of the anytime computation."""

    tick: int
    sample_size: int
    elapsed: float
    map_set: MapSet
    #: 1 − nVI(previous top map, current top map) on the current sample;
    #: 1.0 when the top map did not change, 0.0 on the first tick.
    stability: float

    @property
    def converged(self) -> bool:
        """True when the top map was identical to the previous tick's."""
        return self.stability >= 0.999


class AnytimeExplorer:
    """Anytime wrapper around the Atlas pipeline.

    Parameters
    ----------
    table:
        Full dataset (the engine never scans more of it than the sample).
    query:
        The query being explored (None = whole table).
    config:
        Engine configuration used on every tick (``sample_size`` inside it
        is ignored — the growing sample replaces it).
    initial_size, growth_factor:
        Sampling schedule.
    """

    def __init__(
        self,
        table: Table,
        query: ConjunctiveQuery | None = None,
        config: AtlasConfig | None = None,
        initial_size: int = 1000,
        growth_factor: float = 2.0,
        pipeline: Pipeline | None = None,
    ):
        if table.n_rows == 0:
            raise MapError("cannot explore an empty table")
        self._table = table
        self._query = query or ConjunctiveQuery()
        base = config or AtlasConfig()
        self._config = base.replace(sample_size=None)
        self._sample = GrowingSample(
            table,
            initial_size=initial_size,
            growth_factor=growth_factor,
            rng=self._config.seed,
        )
        # One shared pipeline; each tick binds a fresh context because
        # the sample table changes (contexts key their statistics cache
        # by table).
        self._pipeline = pipeline or Pipeline.default()

    def ticks(self) -> Iterator[AnytimeResult]:
        """Yield snapshots of increasing sample size until exhaustion.

        The caller is free to stop consuming at any point — that is the
        anytime contract.  The final tick runs on the full table.
        """
        started = time.perf_counter()
        previous_top = None
        tick = 0
        while True:
            sample = self._sample.current()
            context = ExecutionContext(sample, self._config)
            map_set = self._pipeline.run(self._query, context)

            if previous_top is None or not map_set.ranked:
                stability = 0.0
            else:
                stability = 1.0 - map_nvi(previous_top, map_set.best, sample)
            if map_set.ranked:
                previous_top = map_set.best

            yield AnytimeResult(
                tick=tick,
                sample_size=sample.n_rows,
                elapsed=time.perf_counter() - started,
                map_set=map_set,
                stability=stability,
            )
            if self._sample.exhausted:
                return
            self._sample.grow()
            tick += 1

    def run(
        self,
        timeout: float | None = None,
        stability_target: float | None = None,
    ) -> AnytimeResult:
        """Consume ticks until timeout / stability / exhaustion.

        Returns the last published snapshot.  ``timeout`` is checked
        *between* ticks (a tick is never aborted mid-flight), matching
        the paper's "interrupt the exploration after a timeout".
        """
        last: AnytimeResult | None = None
        for result in self.ticks():
            last = result
            if timeout is not None and result.elapsed >= timeout:
                break
            if (
                stability_target is not None
                and result.tick > 0
                and result.stability >= stability_target
            ):
                break
        assert last is not None  # ticks() always yields at least once
        return last
