"""Anytime map generation (paper Section 5.1, "Sampling and refinement").

The paper sketches "an anytime variation of our framework: the quality of
the results would improve as computation time increases.  It would
continually take small samples of the data and update a set of
approximate results.  This way, the user would have instant results and
the system could interrupt the exploration after a timeout."

:class:`AnytimeExplorer` implements exactly that contract with
*progressive fidelity escalation*:

* early ticks run the full pipeline at **sketch fidelity** — a
  :class:`~repro.engine.backends.SketchBackend` answers every statistic
  from a bounded reservoir whose budget grows geometrically, so the
  first answer arrives in bounded time regardless of table size;
* the final tick runs at the configured **target fidelity** (exact by
  default), refining the approximate answer into the one a plain
  ``explore()`` would return;
* reservoir budgets are *nested* (each backend samples the first ``k``
  entries of one deterministic per-``(seed, table)`` permutation), so
  anytime results are comparable across ticks;
* a *stability* score — 1 − normalized VI between the current and the
  previous top map, measured on the rows the current tick scanned —
  quantifies result convergence, so callers can stop on stability, on
  timeout, or on escalation completing (whichever comes first).

``progressive=False`` restores the legacy schedule (exact pipeline runs
over materialized :class:`~repro.sketch.reservoir.GrowingSample`
tables), now seeded through the context's deterministic per-query
child RNG.
"""

from __future__ import annotations

import dataclasses
import time
from collections.abc import Iterator

from repro.core.config import AtlasConfig, Fidelity
from repro.core.distance import map_nvi
from repro.dataset.table import Table
from repro.engine.context import ExecutionContext
from repro.engine.pipeline import MapSet, Pipeline
from repro.errors import MapError
from repro.query.query import ConjunctiveQuery
from repro.sketch.reservoir import GrowingSample


@dataclasses.dataclass(frozen=True)
class AnytimeResult:
    """One published snapshot of the anytime computation."""

    tick: int
    sample_size: int
    elapsed: float
    map_set: MapSet
    #: 1 − nVI(previous top map, current top map) on the current sample;
    #: 1.0 when the top map did not change, 0.0 on the first tick.
    stability: float
    #: Fidelity spec this snapshot was computed at (provenance).
    fidelity: str = "exact"

    @property
    def converged(self) -> bool:
        """True when the top map was identical to the previous tick's."""
        return self.stability >= 0.999


class AnytimeExplorer:
    """Anytime wrapper around the Atlas pipeline.

    Parameters
    ----------
    table:
        Full dataset (the engine never scans more of it than the
        current budget).
    query:
        The query being explored (None = whole table).
    config:
        Engine configuration used on every tick (``sample_size`` inside
        it is ignored — the growing budget replaces it).  Its
        ``fidelity`` is the escalation *target*: the final tick runs at
        it (exact by default), earlier ticks at growing sketch budgets.
    initial_size, growth_factor:
        Budget schedule.
    progressive:
        True (default) escalates fidelity through sketch backends on
        the full table; False restores the legacy exact-over-growing-
        samples schedule.
    """

    def __init__(
        self,
        table: Table,
        query: ConjunctiveQuery | None = None,
        config: AtlasConfig | None = None,
        initial_size: int = 1000,
        growth_factor: float = 2.0,
        pipeline: Pipeline | None = None,
        progressive: bool = True,
    ):
        if table.n_rows == 0:
            raise MapError("cannot explore an empty table")
        if initial_size < 1:
            raise MapError(f"initial_size must be >= 1, got {initial_size}")
        if growth_factor <= 1.0:
            raise MapError(f"growth_factor must be > 1, got {growth_factor}")
        self._table = table
        self._query = query or ConjunctiveQuery()
        base = config or AtlasConfig()
        self._config = base.replace(sample_size=None)
        self._initial_size = int(initial_size)
        self._growth_factor = float(growth_factor)
        self._progressive = bool(progressive)
        # One shared pipeline; each tick binds a fresh context because
        # the measured rows change (contexts key their statistics cache
        # by table and configuration).
        self._pipeline = pipeline or Pipeline.default()

    def _schedule(self) -> Iterator[tuple[Table, AtlasConfig, bool]]:
        """Yield ``(table, config, is_final)`` per tick.

        Progressive mode grows a sketch budget geometrically on the
        full table and finishes at the configured target fidelity;
        nested reservoirs make consecutive answers comparable.  Legacy
        mode materializes nested growing samples and runs the base
        configuration on each.
        """
        # Snapshot the table up front: an advance() landing mid-run
        # must not switch versions between ticks — anytime snapshots
        # are only comparable against the same rows.
        table = self._table
        target = self._config.fidelity
        if self._progressive:
            if target.is_sketch:
                final_budget = min(target.budget_rows, table.n_rows)
                epsilon = target.epsilon
            else:
                final_budget = table.n_rows
                epsilon = Fidelity().epsilon
            budget = min(self._initial_size, final_budget)
            while budget < final_budget:
                yield (
                    table,
                    self._config.replace(
                        fidelity=Fidelity.sketch(
                            budget_rows=budget, epsilon=epsilon
                        )
                    ),
                    False,
                )
                budget = min(
                    max(budget + 1, int(budget * self._growth_factor)),
                    final_budget,
                )
            yield table, self._config, True
            return
        # Legacy schedule: exact pipeline over nested growing samples,
        # seeded through the deterministic per-query child generator.
        # Fidelity is pinned to exact — the sample *is* the
        # approximation here; a sketch backend on top would sample the
        # sample, compounding error for no speedup.
        config = self._config.replace(fidelity=Fidelity.exact())
        rng = ExecutionContext(table, config).child_rng(self._query)
        sample = GrowingSample(
            table,
            initial_size=self._initial_size,
            growth_factor=self._growth_factor,
            rng=rng,
        )
        while True:
            yield sample.current(), config, sample.exhausted
            if sample.exhausted:
                return
            sample.grow()

    def advance(self, new_table: Table) -> None:
        """Re-target the explorer at an appended version of its table.

        Takes effect at the next :meth:`ticks` / :meth:`run` call (a
        schedule already being consumed keeps its version — anytime
        snapshots must stay comparable across ticks).  Streaming
        drivers call this between batches so a re-run answers against
        fresh rows.
        """
        if new_table.version <= self._table.version:
            raise MapError(
                f"cannot advance from version {self._table.version} to "
                f"{new_table.version}; versions must increase"
            )
        if new_table.column_names != self._table.column_names:
            raise MapError("cannot advance onto a different schema")
        self._table = new_table

    def ticks(self) -> Iterator[AnytimeResult]:
        """Yield snapshots of increasing fidelity until escalation ends.

        The caller is free to stop consuming at any point — that is the
        anytime contract.  The final tick runs at the configured target
        fidelity (exact on the full table by default).
        """
        started = time.perf_counter()
        previous_top = None
        for tick, (table, config, final) in enumerate(self._schedule()):
            context = ExecutionContext(table, config)
            map_set = self._pipeline.run(self._query, context)
            # Stability is measured on the rows this tick actually
            # scanned — the backend's effective table.
            measured = context.stats().effective_table

            if previous_top is None or not map_set.ranked:
                stability = 0.0
            else:
                stability = 1.0 - map_nvi(previous_top, map_set.best, measured)
            if map_set.ranked:
                previous_top = map_set.best

            yield AnytimeResult(
                tick=tick,
                sample_size=map_set.n_rows_used,
                elapsed=time.perf_counter() - started,
                map_set=map_set,
                stability=stability,
                fidelity=map_set.fidelity,
            )
            if final:
                return

    def run(
        self,
        timeout: float | None = None,
        stability_target: float | None = None,
    ) -> AnytimeResult:
        """Consume ticks until timeout / stability / escalation ends.

        Returns the last published snapshot.  ``timeout`` is checked
        *between* ticks (a tick is never aborted mid-flight), matching
        the paper's "interrupt the exploration after a timeout".
        """
        last: AnytimeResult | None = None
        for result in self.ticks():
            last = result
            if timeout is not None and result.elapsed >= timeout:
                break
            if (
                stability_target is not None
                and result.tick > 0
                and result.stability >= stability_target
            ):
                break
        assert last is not None  # ticks() always yields at least once
        return last
