"""Agglomerative hierarchical clustering over a precomputed distance matrix.

Section 3.2 favours agglomerative methods ("such as SLINK") because the
number of clusters is unknown a priori and the hierarchy lets the engine
control cluster sizes.  This module provides the generic agglomeration
loop with single (SLINK-equivalent result), complete, and average linkage,
a merge-constraint hook, and a stop threshold.

The implementation is the O(n³) textbook loop — candidate-map counts are
bounded by the attribute count of a query (a handful), so asymptotics are
irrelevant here and clarity wins.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Sequence

import numpy as np

from repro.core.config import Linkage
from repro.engine.registry import LINKAGES, register_linkage
from repro.errors import MapError


@dataclasses.dataclass(frozen=True)
class MergeStep:
    """One agglomeration step: clusters ``a`` and ``b`` merged at ``distance``."""

    a: tuple[int, ...]
    b: tuple[int, ...]
    distance: float


@dataclasses.dataclass(frozen=True)
class AgglomerationResult:
    """Final clusters (as index tuples) plus the merge history."""

    clusters: tuple[tuple[int, ...], ...]
    steps: tuple[MergeStep, ...]

    @property
    def n_merges(self) -> int:
        """Number of merge operations performed (Figure 4 reports this)."""
        return len(self.steps)


def _cluster_distance(
    members_a: Sequence[int],
    members_b: Sequence[int],
    distances: np.ndarray,
    linkage: "Linkage | str",
) -> float:
    block = distances[np.ix_(members_a, members_b)]
    return float(LINKAGES.get(linkage)(block))


def agglomerate(
    distances: np.ndarray,
    threshold: float,
    linkage: "Linkage | str" = Linkage.SINGLE,
    can_merge: Callable[[tuple[int, ...], tuple[int, ...]], bool] | None = None,
) -> AgglomerationResult:
    """Merge clusters bottom-up until no pair is close and allowed.

    Parameters
    ----------
    distances:
        Symmetric (n, n) distance matrix.
    threshold:
        Pairs at distance strictly greater than this never merge —
        the Section-3.2 "point after which two maps are too far away".
    linkage:
        Cluster-distance rule.
    can_merge:
        Optional veto: called with the two member tuples; returning False
        blocks that merge (used for the map-size convenience caps).  A
        blocked pair may merge later through other clusters, but is
        re-checked each round.
    """
    distances = np.asarray(distances, dtype=np.float64)
    n = distances.shape[0]
    if distances.shape != (n, n):
        raise MapError(f"distance matrix must be square, got {distances.shape}")
    if n == 0:
        return AgglomerationResult(clusters=(), steps=())
    if not np.allclose(distances, distances.T, atol=1e-9):
        raise MapError("distance matrix must be symmetric")

    clusters: list[tuple[int, ...]] = [(i,) for i in range(n)]
    steps: list[MergeStep] = []

    while len(clusters) > 1:
        best: tuple[float, int, int] | None = None
        for i in range(len(clusters)):
            for j in range(i + 1, len(clusters)):
                d = _cluster_distance(clusters[i], clusters[j], distances, linkage)
                if d > threshold:
                    continue
                if can_merge is not None and not can_merge(clusters[i], clusters[j]):
                    continue
                if best is None or d < best[0]:
                    best = (d, i, j)
        if best is None:
            break
        d, i, j = best
        merged = tuple(sorted(clusters[i] + clusters[j]))
        steps.append(MergeStep(a=clusters[i], b=clusters[j], distance=d))
        clusters = [
            c for k, c in enumerate(clusters) if k not in (i, j)
        ] + [merged]

    ordered = tuple(sorted(clusters, key=lambda c: c[0]))
    return AgglomerationResult(clusters=ordered, steps=tuple(steps))


def dendrogram(
    distances: np.ndarray, linkage: "Linkage | str" = Linkage.SINGLE
) -> AgglomerationResult:
    """Full agglomeration to a single cluster (no threshold, no veto).

    This is the "exhaustive solution (for instance, a dendrogram)" the
    paper contrasts Atlas against in Section 2; the baselines package
    exposes it for the comparison benchmarks.
    """
    return agglomerate(distances, threshold=float("inf"), linkage=linkage)


# --------------------------------------------------------------------- #
# Built-in linkage registrations (the Linkage enum members are aliases)
# --------------------------------------------------------------------- #


@register_linkage("single")
def _single_linkage(block: np.ndarray) -> float:
    """SLINK-equivalent: distance of the closest member pair (§3.2)."""
    return float(block.min())


@register_linkage("complete")
def _complete_linkage(block: np.ndarray) -> float:
    """Distance of the farthest member pair."""
    return float(block.max())


@register_linkage("average")
def _average_linkage(block: np.ndarray) -> float:
    """Mean pairwise distance (UPGMA)."""
    return float(block.mean())
