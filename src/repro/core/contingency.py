"""Joint contingency tables between maps (support for Definition 2).

Each map induces an *underlying variable*: the region index of a random
tuple (plus an escape outcome for uncovered tuples).  The statistical
dependency between two maps is read off the joint distribution of their
underlying variables, estimated by counting tuples per (region_i,
region_j) cell in one vectorized pass.
"""

from __future__ import annotations

import numpy as np

from repro.core.datamap import DataMap
from repro.dataset.table import Table
from repro.errors import MapError


def joint_counts(assignment_a: np.ndarray, assignment_b: np.ndarray,
                 n_regions_a: int, n_regions_b: int) -> np.ndarray:
    """Joint count table from two assignment vectors.

    Escape assignments (−1) are folded into an extra final row/column, so
    the table has shape ``(n_regions_a + 1, n_regions_b + 1)`` and its sum
    equals the number of tuples.
    """
    if assignment_a.shape != assignment_b.shape:
        raise MapError(
            f"assignment length mismatch: {assignment_a.shape} vs "
            f"{assignment_b.shape}"
        )
    rows = np.where(assignment_a < 0, n_regions_a, assignment_a)
    cols = np.where(assignment_b < 0, n_regions_b, assignment_b)
    flat = rows * (n_regions_b + 1) + cols
    counts = np.bincount(flat, minlength=(n_regions_a + 1) * (n_regions_b + 1))
    return counts.reshape(n_regions_a + 1, n_regions_b + 1)


def joint_distribution(
    map_a: DataMap, map_b: DataMap, table: Table
) -> np.ndarray:
    """Joint probability table of two maps' underlying variables."""
    if table.n_rows == 0:
        raise MapError("cannot estimate a joint distribution on an empty table")
    counts = joint_counts(
        map_a.assign(table), map_b.assign(table),
        map_a.n_regions, map_b.n_regions,
    )
    return counts.astype(np.float64) / table.n_rows


def joint_distribution_from_assignments(
    assignment_a: np.ndarray,
    assignment_b: np.ndarray,
    n_regions_a: int,
    n_regions_b: int,
) -> np.ndarray:
    """Joint probability table from precomputed assignments.

    The pipeline assigns every tuple once per map and reuses the vectors
    for all pairwise distances — the main §5.1 "algorithm optimization".
    """
    counts = joint_counts(assignment_a, assignment_b, n_regions_a, n_regions_b)
    total = counts.sum()
    if total == 0:
        raise MapError("cannot normalize an empty contingency table")
    return counts.astype(np.float64) / total
