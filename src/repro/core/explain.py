"""Region explanations (paper Section 5.2, "Real life users").

"One research direction would be to explain why a region is
interesting, by charting the attributes of the subset versus those of
the whole database."  This module implements that chart: for a region
query, every column of the table is compared between the region's
tuples and the full table —

* numeric columns: mean shift in global-standard-deviation units, and
  the relative change of the mean;
* categorical columns: the *lift* of each label (region frequency over
  global frequency) with the largest absolute log-lift reported.

Attributes are ranked by a common surprise score so the most distinctive
ones chart first.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.dataset.column import CategoricalColumn, NumericColumn
from repro.dataset.table import Table
from repro.errors import MapError
from repro.query.query import ConjunctiveQuery


@dataclasses.dataclass(frozen=True)
class NumericContrast:
    """How a numeric attribute differs inside a region."""

    attribute: str
    region_mean: float
    global_mean: float
    shift_in_sd: float

    @property
    def surprise(self) -> float:
        """Magnitude of the standardized shift."""
        return abs(self.shift_in_sd)

    def describe(self) -> str:
        direction = "higher" if self.shift_in_sd > 0 else "lower"
        return (
            f"{self.attribute}: mean {self.region_mean:.4g} vs "
            f"{self.global_mean:.4g} overall "
            f"({abs(self.shift_in_sd):.2f} sd {direction})"
        )


@dataclasses.dataclass(frozen=True)
class CategoricalContrast:
    """How a categorical attribute differs inside a region."""

    attribute: str
    label: str
    region_frequency: float
    global_frequency: float

    @property
    def lift(self) -> float:
        """Region frequency over global frequency."""
        if self.global_frequency == 0.0:
            return float("inf")
        return self.region_frequency / self.global_frequency

    @property
    def surprise(self) -> float:
        """|log2 lift|, capped for labels absent on one side."""
        lift = self.lift
        if lift == 0.0 or math.isinf(lift):
            return 10.0
        return abs(math.log2(lift))

    def describe(self) -> str:
        return (
            f"{self.attribute} = {self.label!r}: "
            f"{self.region_frequency * 100:.1f}% of the region vs "
            f"{self.global_frequency * 100:.1f}% overall "
            f"(lift {self.lift:.2f})"
        )


@dataclasses.dataclass(frozen=True)
class RegionExplanation:
    """The full chart for one region."""

    query: ConjunctiveQuery
    n_region_rows: int
    n_total_rows: int
    contrasts: tuple[NumericContrast | CategoricalContrast, ...]

    @property
    def cover(self) -> float:
        """Fraction of the table inside the region."""
        return self.n_region_rows / self.n_total_rows if self.n_total_rows else 0.0

    def top(self, k: int = 3) -> tuple[NumericContrast | CategoricalContrast, ...]:
        """The k most surprising contrasts."""
        return self.contrasts[:k]

    def describe(self, k: int = 3) -> str:
        lines = [
            f"Region {self.query.describe_inline()} — "
            f"{self.n_region_rows} rows ({self.cover * 100:.1f}%)"
        ]
        for contrast in self.top(k):
            lines.append(f"  {contrast.describe()}")
        return "\n".join(lines)


def explain_region(
    table: Table,
    region: ConjunctiveQuery,
    skip_attributes: tuple[str, ...] = (),
) -> RegionExplanation:
    """Chart a region's attributes against the whole table.

    ``skip_attributes`` usually holds the attributes the region query
    already restricts — their contrast is definitional, not insightful.
    """
    mask = region.mask(table)
    n_region = int(mask.sum())
    if n_region == 0:
        raise MapError("cannot explain an empty region")

    contrasts: list[NumericContrast | CategoricalContrast] = []
    for column in table.columns:
        if column.name in skip_attributes:
            continue
        if isinstance(column, NumericColumn):
            contrast = _numeric_contrast(column, mask)
        elif isinstance(column, CategoricalColumn):
            contrast = _categorical_contrast(column, mask)
        else:  # pragma: no cover - no other kinds exist
            continue
        if contrast is not None:
            contrasts.append(contrast)

    contrasts.sort(key=lambda c: -c.surprise)
    return RegionExplanation(
        query=region,
        n_region_rows=n_region,
        n_total_rows=table.n_rows,
        contrasts=tuple(contrasts),
    )


def _numeric_contrast(
    column: NumericColumn, mask: np.ndarray
) -> NumericContrast | None:
    data = column.data
    inside = data[mask]
    inside = inside[~np.isnan(inside)]
    overall = data[~np.isnan(data)]
    if inside.size == 0 or overall.size == 0:
        return None
    sd = float(overall.std())
    region_mean = float(inside.mean())
    global_mean = float(overall.mean())
    shift = 0.0 if sd == 0.0 else (region_mean - global_mean) / sd
    return NumericContrast(
        attribute=column.name,
        region_mean=region_mean,
        global_mean=global_mean,
        shift_in_sd=shift,
    )


def _categorical_contrast(
    column: CategoricalColumn, mask: np.ndarray
) -> CategoricalContrast | None:
    codes = column.codes
    inside = codes[mask]
    inside = inside[inside >= 0]
    overall = codes[codes >= 0]
    if inside.size == 0 or overall.size == 0:
        return None
    n_categories = len(column.categories)
    inside_freq = np.bincount(inside, minlength=n_categories) / inside.size
    global_freq = np.bincount(overall, minlength=n_categories) / overall.size

    best: CategoricalContrast | None = None
    for code, label in enumerate(column.categories):
        if global_freq[code] == 0.0 and inside_freq[code] == 0.0:
            continue
        contrast = CategoricalContrast(
            attribute=column.name,
            label=label,
            region_frequency=float(inside_freq[code]),
            global_frequency=float(global_freq[code]),
        )
        if best is None or contrast.surprise > best.surprise:
            best = contrast
    return best


def explain_map(
    table: Table, regions: "list[ConjunctiveQuery]", skip_cut_attributes: bool = True
) -> list[RegionExplanation]:
    """Explain every region of a map.

    When ``skip_cut_attributes`` is set, the attributes a region's own
    query restricts are excluded from its chart.
    """
    explanations = []
    for region in regions:
        skip = (
            tuple(p.attribute for p in region.predicates if p.is_restrictive)
            if skip_cut_attributes
            else ()
        )
        explanations.append(explain_region(table, region, skip))
    return explanations
