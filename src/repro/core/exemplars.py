"""Region exemplars (paper Section 5.2, "Real life users").

"It could be interesting to describe the regions with random or, if
possible, representative examples."  Two selectors:

* :func:`random_examples` — uniform sample of region rows;
* :func:`representative_examples` — the region's most *typical* rows:
  the ones minimizing a normalized distance to the region's per-column
  centre (median for numeric columns, modal label for categorical ones).
"""

from __future__ import annotations

import numpy as np

from repro.dataset.column import CategoricalColumn, NumericColumn
from repro.dataset.table import Table
from repro.errors import MapError
from repro.query.query import ConjunctiveQuery


def random_examples(
    table: Table,
    region: ConjunctiveQuery,
    k: int = 3,
    rng: np.random.Generator | int | None = None,
) -> Table:
    """A uniform sample of ``k`` rows from the region."""
    member_rows = np.nonzero(region.mask(table))[0]
    if member_rows.size == 0:
        raise MapError("region has no rows to exemplify")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    chosen = rng.choice(
        member_rows, size=min(k, member_rows.size), replace=False
    )
    return table.take(np.sort(chosen), name=f"{table.name}_examples")


def representative_examples(
    table: Table, region: ConjunctiveQuery, k: int = 3
) -> Table:
    """The ``k`` most typical rows of the region.

    Typicality is the sum over columns of a normalized deviation from
    the region's centre: ``|x − median| / (global std)`` for numeric
    columns, ``0/1`` match against the modal label for categorical ones.
    Missing values count as a full deviation, so fully-populated typical
    rows win over holey ones.
    """
    member_rows = np.nonzero(region.mask(table))[0]
    if member_rows.size == 0:
        raise MapError("region has no rows to exemplify")

    deviation = np.zeros(member_rows.size, dtype=np.float64)
    for column in table.columns:
        if isinstance(column, NumericColumn):
            values = column.data[member_rows]
            valid = values[~np.isnan(values)]
            if valid.size == 0:
                continue
            centre = float(np.median(valid))
            global_values = column.data[~np.isnan(column.data)]
            scale = float(global_values.std()) or 1.0
            per_row = np.abs(values - centre) / scale
            per_row[np.isnan(values)] = 1.0
            deviation += per_row
        elif isinstance(column, CategoricalColumn):
            codes = column.codes[member_rows]
            present = codes[codes >= 0]
            if present.size == 0:
                continue
            counts = np.bincount(present, minlength=len(column.categories))
            modal = int(np.argmax(counts))
            deviation += (codes != modal).astype(np.float64)

    order = np.argsort(deviation, kind="stable")
    chosen = member_rows[order[: min(k, member_rows.size)]]
    return table.take(chosen, name=f"{table.name}_representatives")
