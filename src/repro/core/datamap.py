"""The DataMap: a set of region queries over a dataset (paper Section 2).

``M = {Q_0, ..., Q_M}`` — each region is a conjunctive query; together
they partition (a subset of) the data described by the user query.  The
map also knows which attributes it "is based on" (Definition 4 needs
this for composition) and can compute its *underlying variable*
(Definition 2): the region index of a random tuple, with an explicit
escape outcome for tuples matching no region (missing values, dropped
empty intersections).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.dataset.table import Table
from repro.errors import MapError, QueryError
from repro.query.query import ConjunctiveQuery

#: Region index assigned to tuples covered by no region of the map.
ESCAPE = -1


def assign_regions(regions, n_rows, mask_of) -> np.ndarray:
    """Region index per row: first matching region wins, else ESCAPE.

    The single implementation behind :meth:`DataMap.assign` and the
    engine's cached :meth:`~repro.engine.context.TableStats.assignment`
    — ``mask_of`` abstracts how a region's row mask is obtained.
    """
    assignment = np.full(n_rows, ESCAPE, dtype=np.int64)
    unassigned = np.ones(n_rows, dtype=bool)
    for index, region in enumerate(regions):
        hit = mask_of(region) & unassigned
        assignment[hit] = index
        unassigned &= ~hit
        if not unassigned.any():
            break
    return assignment


def covers_from_assignment(assignment: np.ndarray, n_regions: int) -> np.ndarray:
    """Per-region cover fractions from an assignment vector."""
    if assignment.size == 0:
        return np.zeros(n_regions, dtype=np.float64)
    counts = np.bincount(assignment[assignment >= 0], minlength=n_regions)
    return counts.astype(np.float64) / assignment.size


class DataMap:
    """An immutable set of region queries.

    Parameters
    ----------
    regions:
        The region queries.  Order is preserved (display order).
    attributes:
        The attributes this map is "based on" — the ones its CUTs split.
        Defaults to the union of attributes over the regions.
    label:
        Human-readable name used in rendered output.
    """

    __slots__ = ("_regions", "_attributes", "_label")

    def __init__(
        self,
        regions: Sequence[ConjunctiveQuery],
        attributes: Sequence[str] | None = None,
        label: str | None = None,
    ):
        regions = tuple(regions)
        if not regions:
            raise MapError("a data map needs at least one region")
        if attributes is None:
            seen: list[str] = []
            for region in regions:
                for attr in region.attributes:
                    if attr not in seen:
                        seen.append(attr)
            attributes = seen
        self._regions = regions
        self._attributes = tuple(attributes)
        self._label = label if label is not None else ", ".join(self._attributes)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def regions(self) -> tuple[ConjunctiveQuery, ...]:
        """The region queries."""
        return self._regions

    @property
    def attributes(self) -> tuple[str, ...]:
        """Attributes the map is based on (used by composition)."""
        return self._attributes

    @property
    def label(self) -> str:
        """Display label."""
        return self._label

    @property
    def n_regions(self) -> int:
        """Number of regions (the paper caps this at 8)."""
        return len(self._regions)

    @property
    def max_predicates(self) -> int:
        """Largest restrictive-predicate count over the regions."""
        return max(r.n_predicates for r in self._regions)

    @property
    def is_trivial(self) -> bool:
        """True when the map has a single region (no split happened)."""
        return len(self._regions) == 1

    def __len__(self) -> int:
        return len(self._regions)

    def __iter__(self):
        return iter(self._regions)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DataMap):
            return NotImplemented
        return set(self._regions) == set(other._regions)

    def __hash__(self) -> int:
        return hash(frozenset(self._regions))

    def relabel(self, label: str) -> "DataMap":
        """Same map with a new display label."""
        return DataMap(self._regions, self._attributes, label)

    # ------------------------------------------------------------------ #
    # The underlying variable (Definition 2)
    # ------------------------------------------------------------------ #

    def assign(self, table: Table) -> np.ndarray:
        """Region index per row of ``table`` (``ESCAPE`` when uncovered).

        Rows matching several regions (possible only for maps that violate
        the CUT disjointness contract) are assigned to the first matching
        region in display order, which keeps the result a function.
        """
        return assign_regions(
            self._regions, table.n_rows, lambda region: region.mask(table)
        )

    def covers(self, table: Table) -> np.ndarray:
        """Cover ``C(Q)`` of each region against ``table`` (Section 3)."""
        if table.n_rows == 0:
            return np.zeros(len(self._regions), dtype=np.float64)
        return covers_from_assignment(self.assign(table), len(self._regions))

    def distribution(self, table: Table) -> np.ndarray:
        """Distribution of the underlying variable including escape mass.

        Index ``i`` is region ``i``; the last entry is the escape outcome.
        Always sums to 1 on a non-empty table.
        """
        if table.n_rows == 0:
            raise MapError("cannot take a distribution over an empty table")
        covers = self.covers(table)
        escape = max(0.0, 1.0 - float(covers.sum()))
        return np.concatenate([covers, [escape]])

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #

    def drop_empty_regions(
        self, table: Table, min_cover: float = 0.0
    ) -> "DataMap":
        """Remove regions whose cover is ``<= min_cover`` (keeps >= 1)."""
        covers = self.covers(table)
        kept = [
            region
            for region, cover in zip(self._regions, covers)
            if cover > min_cover
        ]
        if not kept:
            # Keep the largest region rather than returning an empty map.
            kept = [self._regions[int(np.argmax(covers))]]
        return DataMap(kept, self._attributes, self._label)

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        """Plain-JSON form: regions, attributes, and label.

        The inverse of :meth:`from_dict`, mirroring
        :meth:`repro.core.config.AtlasConfig.to_dict` — this is how maps
        cross the service boundary (:mod:`repro.service.protocol`).
        Region order, the based-on attribute tuple, and the display
        label all survive the round trip.
        """
        return {
            "regions": [region.to_dict() for region in self._regions],
            "attributes": list(self._attributes),
            "label": self._label,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DataMap":
        """Rebuild a map from :meth:`to_dict` output."""
        if not isinstance(data, dict) or "regions" not in data:
            raise MapError(
                f"expected a data-map dict with a 'regions' list, got {data!r}"
            )
        attributes = data.get("attributes")
        try:
            return cls(
                [ConjunctiveQuery.from_dict(r) for r in data["regions"]],
                attributes=tuple(attributes) if attributes is not None else None,
                label=data.get("label"),
            )
        except (MapError, QueryError):
            raise
        except TypeError as exc:
            raise MapError(f"malformed data-map dict: {exc}") from exc

    def describe(self) -> str:
        """Multi-line rendering: one region per paragraph."""
        blocks = [
            f"Region {i}:\n{_indent(region.describe())}"
            for i, region in enumerate(self._regions)
        ]
        return f"Map [{self._label}]\n" + "\n".join(blocks)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<DataMap {self._label!r} regions={len(self._regions)}>"


def _indent(text: str, prefix: str = "  ") -> str:
    return "\n".join(prefix + line for line in text.splitlines())
