"""Information-theoretic quantities (paper Section 3.2 and 3.4).

* :func:`entropy` — Shannon entropy, the ranking score of Section 3.4.
* :func:`mutual_information` — the dependency measure the paper starts
  from (Cover & Thomas), *not* a metric (no triangle inequality).
* :func:`variation_of_information` — Meilă's VI, the paper's preferred
  distance: ``VI(X, Y) = H(X) + H(Y) − 2 I(X; Y)``, a true metric.
* :func:`normalized_vi` — VI divided by its maximum ``log(n_outcomes)``,
  handy for scale-free thresholds.

All quantities are in nats by default; pass ``base=2`` for bits.  Zero
probabilities contribute zero (the usual ``0 log 0 = 0`` convention).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import MapError


def _validate_distribution(p: np.ndarray, name: str) -> np.ndarray:
    p = np.asarray(p, dtype=np.float64)
    if p.size == 0:
        raise MapError(f"{name}: empty distribution")
    if (p < -1e-12).any():
        raise MapError(f"{name}: negative probabilities")
    total = float(p.sum())
    if not math.isclose(total, 1.0, rel_tol=0, abs_tol=1e-6):
        raise MapError(f"{name}: probabilities sum to {total}, expected 1")
    return np.clip(p, 0.0, None)


def entropy(p: np.ndarray, base: float | None = None) -> float:
    """Shannon entropy ``H(p)`` of a distribution."""
    p = _validate_distribution(p, "entropy")
    positive = p[p > 0]
    h = float(-(positive * np.log(positive)).sum())
    return h / math.log(base) if base else h


def entropy_of_counts(counts: np.ndarray, base: float | None = None) -> float:
    """Entropy of the empirical distribution of a count vector."""
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum()
    if total <= 0:
        raise MapError("entropy_of_counts: all counts are zero")
    return entropy(counts / total, base=base)


def joint_entropy(joint: np.ndarray, base: float | None = None) -> float:
    """Entropy ``H(X, Y)`` of a joint probability table."""
    return entropy(np.asarray(joint, dtype=np.float64).ravel(), base=base)


def marginals(joint: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Row and column marginals of a joint probability table."""
    joint = np.asarray(joint, dtype=np.float64)
    if joint.ndim != 2:
        raise MapError(f"joint table must be 2-D, got shape {joint.shape}")
    return joint.sum(axis=1), joint.sum(axis=0)


def mutual_information(joint: np.ndarray, base: float | None = None) -> float:
    """Mutual information ``I(X; Y)`` from a joint probability table.

    Computed as ``H(X) + H(Y) − H(X, Y)`` and clamped to be non-negative
    (floating-point noise can push it a hair below zero).
    """
    row, col = marginals(joint)
    value = (
        entropy(row, base=base)
        + entropy(col, base=base)
        - joint_entropy(joint, base=base)
    )
    return max(0.0, value)


def variation_of_information(
    joint: np.ndarray, base: float | None = None
) -> float:
    """Meilă's Variation of Information: ``H(X|Y) + H(Y|X)``.

    A true metric on the space of partitions (symmetric, zero iff the
    partitions are identical up to relabelling, triangle inequality) —
    exactly the property Section 3.2 wants over raw mutual information.
    """
    row, col = marginals(joint)
    h_joint = joint_entropy(joint, base=base)
    value = 2.0 * h_joint - entropy(row, base=base) - entropy(col, base=base)
    return max(0.0, value)


def max_vi(n_outcomes_a: int, n_outcomes_b: int, base: float | None = None) -> float:
    """Upper bound on VI between variables with the given outcome counts.

    ``VI ≤ H(X) + H(Y) ≤ log(a) + log(b)``; we use the tighter
    ``log(a · b)`` cap which equals that sum.
    """
    if n_outcomes_a < 1 or n_outcomes_b < 1:
        raise MapError("outcome counts must be >= 1")
    value = math.log(n_outcomes_a) + math.log(n_outcomes_b)
    return value / math.log(base) if base else value


def normalized_vi(joint: np.ndarray, base: float | None = None) -> float:
    """VI scaled into [0, 1] by the log of the joint outcome count."""
    joint = np.asarray(joint, dtype=np.float64)
    bound = max_vi(joint.shape[0], joint.shape[1], base=base)
    if bound == 0.0:
        return 0.0
    return min(1.0, variation_of_information(joint, base=base) / bound)


def rajski_distance(joint: np.ndarray, base: float | None = None) -> float:
    """Rajski's normalized information distance: ``VI / H(X, Y)``.

    Equals ``1 − I(X; Y) / H(X, Y)``; a true metric on [0, 1] that is 1
    exactly when the variables are independent and 0 when they determine
    each other.  This is the scale-free form the clustering threshold is
    expressed on: unlike VI/log(cells), it pins independence at 1
    regardless of how balanced the maps are.
    """
    h = joint_entropy(joint, base=base)
    if h == 0.0:
        # A single joint outcome: both variables are constants, hence equal.
        return 0.0
    return min(1.0, variation_of_information(joint, base=base) / h)


def normalized_mutual_information(
    joint: np.ndarray, base: float | None = None
) -> float:
    """NMI = ``I(X; Y) / sqrt(H(X) H(Y))`` (0 when either entropy is 0)."""
    row, col = marginals(joint)
    h_row = entropy(row, base=base)
    h_col = entropy(col, base=base)
    if h_row == 0.0 or h_col == 0.0:
        return 0.0
    return mutual_information(joint, base=base) / math.sqrt(h_row * h_col)
