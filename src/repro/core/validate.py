"""Map validation: the paper's contracts as an executable checklist.

Downstream code that builds or transforms maps (custom merge operators,
hand-written maps, persisted sessions) can verify them against every
requirement the paper states:

* Definition 1 — regions are pairwise disjoint on the data and their
  union covers what the parent query describes;
* Section 2 — at most ``max_regions`` regions ("hard to read" beyond 8)
  and at most ``max_predicates`` cut attributes per region;
* basic sanity — no empty regions, covers consistent with assignment.

:func:`validate_map` returns a :class:`ValidationReport` listing every
violation with enough context to fix it; ``report.ok`` gates pipelines.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.config import AtlasConfig
from repro.core.datamap import DataMap
from repro.dataset.table import Table
from repro.query.query import ConjunctiveQuery


@dataclasses.dataclass(frozen=True)
class Violation:
    """One broken contract."""

    rule: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.rule}] {self.detail}"


@dataclasses.dataclass(frozen=True)
class ValidationReport:
    """Outcome of validating one map."""

    map_label: str
    violations: tuple[Violation, ...]

    @property
    def ok(self) -> bool:
        """True when every contract holds."""
        return not self.violations

    def describe(self) -> str:
        if self.ok:
            return f"map {self.map_label!r}: all contracts hold"
        lines = [f"map {self.map_label!r}: {len(self.violations)} violation(s)"]
        lines.extend(f"  {v}" for v in self.violations)
        return "\n".join(lines)


def validate_map(
    data_map: DataMap,
    table: Table,
    parent: ConjunctiveQuery | None = None,
    config: AtlasConfig | None = None,
    require_partition: bool = True,
) -> ValidationReport:
    """Check a map against the paper's contracts over ``table``.

    ``parent`` is the query the map decomposes (defaults to everything);
    ``require_partition`` can be disabled for maps that legitimately
    leave escapes (e.g. after dropping empty regions on dirty data).
    """
    config = config or AtlasConfig()
    parent = parent or ConjunctiveQuery()
    violations: list[Violation] = []

    # --- Section-2 convenience caps ----------------------------------
    if data_map.n_regions > config.max_regions:
        violations.append(
            Violation(
                "max_regions",
                f"{data_map.n_regions} regions exceed the cap of "
                f"{config.max_regions} (maps beyond 8 are 'hard to read')",
            )
        )
    if len(data_map.attributes) > config.max_predicates:
        violations.append(
            Violation(
                "max_predicates",
                f"map is based on {len(data_map.attributes)} attributes, "
                f"cap is {config.max_predicates}",
            )
        )

    # --- Definition-1 partition contract ------------------------------
    parent_mask = parent.mask(table)
    union = np.zeros(table.n_rows, dtype=bool)
    for index, region in enumerate(data_map.regions):
        region_mask = region.mask(table)
        overlap = union & region_mask
        if overlap.any():
            violations.append(
                Violation(
                    "disjointness",
                    f"region {index} overlaps an earlier region on "
                    f"{int(overlap.sum())} row(s)",
                )
            )
        union |= region_mask
        if not region_mask.any():
            violations.append(
                Violation("non_empty", f"region {index} covers no rows")
            )
        outside = region_mask & ~parent_mask
        if outside.any():
            violations.append(
                Violation(
                    "containment",
                    f"region {index} reaches {int(outside.sum())} row(s) "
                    "outside the parent query",
                )
            )

    if require_partition:
        uncovered = parent_mask & ~union
        if uncovered.any():
            violations.append(
                Violation(
                    "coverage",
                    f"{int(uncovered.sum())} described row(s) belong to "
                    "no region",
                )
            )

    return ValidationReport(
        map_label=data_map.label, violations=tuple(violations)
    )


def validate_map_set(
    maps: "list[DataMap]",
    table: Table,
    parent: ConjunctiveQuery | None = None,
    config: AtlasConfig | None = None,
    require_partition: bool = True,
) -> list[ValidationReport]:
    """Validate every map of an answer; one report per map."""
    return [
        validate_map(
            m, table, parent=parent, config=config,
            require_partition=require_partition,
        )
        for m in maps
    ]
