"""Core Atlas machinery: the paper's contribution.

The four-step framework of Section 3 (CUT candidates, VI clustering,
product/composition merging, entropy ranking), the end-to-end engine, the
anytime variant of Section 5.1, and the Figure-1 exploration session.
"""

from repro.core.anticipate import AnticipativeExplorer, CacheStats
from repro.core.anytime import AnytimeExplorer, AnytimeResult
from repro.core.atlas import Atlas, MapSet, StageTimings
from repro.core.candidates import candidate_attributes, generate_candidates
from repro.core.clustering import MapClustering, cluster_maps
from repro.core.config import (
    PAPER_DEFAULTS,
    AtlasConfig,
    CategoricalCutStrategy,
    Fidelity,
    Parallelism,
    Linkage,
    MergeMethod,
    NumericCutStrategy,
)
from repro.core.contingency import joint_counts, joint_distribution
from repro.core.cut import balanced_label_groups, cut
from repro.core.datamap import ESCAPE, DataMap
from repro.core.exemplars import random_examples, representative_examples
from repro.core.explain import (
    CategoricalContrast,
    NumericContrast,
    RegionExplanation,
    explain_map,
    explain_region,
)
from repro.core.distance import (
    MapDistanceMatrix,
    distance_matrix,
    map_nvi,
    map_vi,
)
from repro.core.information import (
    entropy,
    entropy_of_counts,
    joint_entropy,
    max_vi,
    mutual_information,
    normalized_mutual_information,
    normalized_vi,
    rajski_distance,
    variation_of_information,
)
from repro.core.linkage import (
    AgglomerationResult,
    MergeStep,
    agglomerate,
    dendrogram,
)
from repro.core.merge import composition, merge_cluster, product
from repro.core.personalize import InterestProfile, personalized_rank
from repro.core.ranking import RankedMap, balance, map_entropy, rank_maps
from repro.core.session import ExplorationSession, SessionStep
from repro.core.validate import (
    ValidationReport,
    Violation,
    validate_map,
    validate_map_set,
)

__all__ = [
    "ESCAPE",
    "PAPER_DEFAULTS",
    "AgglomerationResult",
    "AnticipativeExplorer",
    "AnytimeExplorer",
    "AnytimeResult",
    "Atlas",
    "AtlasConfig",
    "Fidelity",
    "Parallelism",
    "CacheStats",
    "CategoricalContrast",
    "CategoricalCutStrategy",
    "DataMap",
    "ExplorationSession",
    "InterestProfile",
    "Linkage",
    "MapClustering",
    "MapDistanceMatrix",
    "MapSet",
    "MergeMethod",
    "MergeStep",
    "NumericContrast",
    "NumericCutStrategy",
    "RankedMap",
    "RegionExplanation",
    "SessionStep",
    "StageTimings",
    "ValidationReport",
    "Violation",
    "agglomerate",
    "balance",
    "balanced_label_groups",
    "candidate_attributes",
    "cluster_maps",
    "composition",
    "cut",
    "dendrogram",
    "distance_matrix",
    "entropy",
    "entropy_of_counts",
    "explain_map",
    "explain_region",
    "generate_candidates",
    "joint_counts",
    "joint_distribution",
    "joint_entropy",
    "map_entropy",
    "map_nvi",
    "map_vi",
    "max_vi",
    "merge_cluster",
    "mutual_information",
    "personalized_rank",
    "normalized_mutual_information",
    "normalized_vi",
    "product",
    "rajski_distance",
    "random_examples",
    "rank_maps",
    "representative_examples",
    "validate_map",
    "validate_map_set",
    "variation_of_information",
]
