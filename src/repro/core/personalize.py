"""Personalized sessions (paper Section 5.2, "Real life users").

"Another direction would be to propose personalized sessions, during
which what is proposed depends on the past behavior of the user or his
peers (as in collaborative filtering)."

The signal available in the Figure-1 loop is *which attributes the user
keeps drilling into*.  :class:`InterestProfile` accumulates that signal
(optionally decayed, optionally merged with peer profiles — the
collaborative part), and :func:`personalized_rank` blends it with the
Section-3.4 entropy score: a map over attributes the user cares about
rises, everything else keeps its entropy order.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.datamap import DataMap
from repro.core.ranking import RankedMap, rank_maps
from repro.dataset.table import Table
from repro.errors import ConfigError
from repro.query.query import ConjunctiveQuery


class InterestProfile:
    """Attribute-affinity counters learned from exploration behaviour."""

    def __init__(self, decay: float = 1.0):
        if not 0.0 < decay <= 1.0:
            raise ConfigError(f"decay must be in (0, 1], got {decay}")
        self._decay = float(decay)
        self._weights: dict[str, float] = {}

    @property
    def weights(self) -> dict[str, float]:
        """Current attribute weights (copies; higher = more interest)."""
        return dict(self._weights)

    def observe_query(self, query: ConjunctiveQuery) -> None:
        """Record a submitted query: its restrictive attributes gain weight."""
        self._age()
        for predicate in query.restrictive_predicates:
            self._weights[predicate.attribute] = (
                self._weights.get(predicate.attribute, 0.0) + 1.0
            )

    def observe_drill(self, region: ConjunctiveQuery) -> None:
        """Alias of :meth:`observe_query` — a drill submits the region."""
        self.observe_query(region)

    def _age(self) -> None:
        if self._decay < 1.0:
            self._weights = {
                attr: weight * self._decay
                for attr, weight in self._weights.items()
            }

    def affinity(self, attributes: Sequence[str]) -> float:
        """Mean normalized interest over the given attributes, in [0, 1]."""
        if not attributes or not self._weights:
            return 0.0
        top = max(self._weights.values())
        if top <= 0.0:
            return 0.0
        return sum(
            self._weights.get(attr, 0.0) / top for attr in attributes
        ) / len(attributes)

    def merged_with(
        self, peers: Iterable["InterestProfile"], peer_weight: float = 0.5
    ) -> "InterestProfile":
        """Blend in peer behaviour (the collaborative-filtering variant).

        Peer counters are normalized before blending so a prolific peer
        does not drown the user's own signal.
        """
        if not 0.0 <= peer_weight <= 1.0:
            raise ConfigError(f"peer_weight must be in [0, 1], got {peer_weight}")
        merged = InterestProfile(decay=self._decay)
        merged._weights = dict(self._weights)
        for peer in peers:
            top = max(peer._weights.values(), default=0.0)
            if top <= 0.0:
                continue
            for attr, weight in peer._weights.items():
                merged._weights[attr] = (
                    merged._weights.get(attr, 0.0)
                    + peer_weight * weight / top
                )
        return merged


def personalized_rank(
    maps: Sequence[DataMap],
    table: Table,
    profile: InterestProfile,
    blend: float = 0.3,
    max_maps: int | None = None,
) -> list[RankedMap]:
    """Rank maps by blended entropy + interest affinity.

    ``blend = 0`` reproduces the paper's pure entropy ranking;
    ``blend = 1`` ranks purely by learned interest.  Entropy scores are
    normalized by the batch maximum so the two signals share a scale.
    """
    if not 0.0 <= blend <= 1.0:
        raise ConfigError(f"blend must be in [0, 1], got {blend}")
    base = rank_maps(maps, table)
    if not base:
        return []
    top_entropy = max(entry.score for entry in base) or 1.0
    rescored = [
        RankedMap(
            map=entry.map,
            score=(
                (1.0 - blend) * entry.score / top_entropy
                + blend * profile.affinity(entry.map.attributes)
            ),
            covers=entry.covers,
        )
        for entry in base
    ]
    rescored.sort(
        key=lambda r: (-r.score, len(r.map.attributes), r.map.label)
    )
    if max_maps is not None:
        rescored = rescored[:max_maps]
    return rescored
