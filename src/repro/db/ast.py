"""AST nodes for the restricted SQL dialect (paper Section 4).

The dialect covers what the Atlas engine needs from a remote DBMS:
selection with conjunctive WHERE clauses (the "Charles" restriction),
COUNT/MIN/MAX/AVG/SUM aggregation for covers and column statistics, and
GROUP BY for the histogram pushdown of Section 5.1.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence


@dataclasses.dataclass(frozen=True)
class Comparison:
    """``column <op> literal`` with op in =, <>, <, <=, >, >=."""

    column: str
    operator: str
    value: float | str


@dataclasses.dataclass(frozen=True)
class Between:
    """``column BETWEEN low AND high`` (closed on both sides)."""

    column: str
    low: float
    high: float


@dataclasses.dataclass(frozen=True)
class InList:
    """``column IN ('a', 'b', ...)`` or ``column IN (1, 2, ...)``.

    String lists match categorical labels; numeric lists match numeric
    columns (and window outputs in QUALIFY — the rank-selection form
    of the sketch pushdowns).
    """

    column: str
    values: tuple[str | float, ...]


@dataclasses.dataclass(frozen=True)
class IsNull:
    """``column IS [NOT] NULL``."""

    column: str
    negated: bool = False


@dataclasses.dataclass(frozen=True)
class BooleanLiteral:
    """``TRUE`` or ``FALSE`` (the emitter uses TRUE for any-predicates)."""

    value: bool


@dataclasses.dataclass(frozen=True)
class TextMatch:
    """``column CONTAINS 'needle'`` or ``column MATCH 'a b'``.

    The dialect's FTS conditions (an extension in the QUALIFY spirit):
    ``CONTAINS`` is a case-insensitive substring test; ``MATCH`` is the
    FTS5-style conjunctive token match of
    :func:`repro.query.predicate.tokenize_text`.  Both run against
    categorical (dictionary-encoded text) columns only.
    """

    column: str
    operator: str  # CONTAINS or MATCH
    text: str


#: A WHERE clause is a conjunction of these atoms.
Condition = Comparison | Between | InList | IsNull | BooleanLiteral | TextMatch


@dataclasses.dataclass(frozen=True)
class Aggregate:
    """``FUNC(column)`` or ``COUNT(*)`` in the select list."""

    function: str  # COUNT, MIN, MAX, AVG, SUM
    column: str | None  # None = * (COUNT only)
    alias: str | None = None

    @property
    def output_name(self) -> str:
        """Result column name."""
        if self.alias:
            return self.alias
        target = "*" if self.column is None else self.column
        return f"{self.function.lower()}({target})"


@dataclasses.dataclass(frozen=True)
class WindowFunction:
    """``ROW_NUMBER() OVER (ORDER BY column [DESC])`` in the select list.

    The one window the sketch pushdowns need: rank rows by a numeric
    column (or, after GROUP BY, by an aggregate alias) without pulling
    them up.  Ties rank in input order (a stable sort), which QUALIFY
    consumers must not depend on — the pushdowns only read *values* at
    ranks, which tie order cannot change.
    """

    function: str  # ROW_NUMBER (the only one, for now)
    order_by: str
    descending: bool = False
    alias: str | None = None

    @property
    def output_name(self) -> str:
        """Result column name."""
        return self.alias or f"{self.function.lower()}()"


@dataclasses.dataclass(frozen=True)
class SelectStatement:
    """One parsed SELECT statement.

    ``columns`` is None for ``SELECT *``; ``aggregates`` is non-empty
    for aggregate queries (mutually exclusive with plain columns unless
    grouping).  ``windows`` adds ranking columns over the (possibly
    grouped) result; ``qualify`` filters on them after they are
    computed — the window analogue of WHERE.
    """

    table: str
    columns: tuple[str, ...] | None
    aggregates: tuple[Aggregate, ...]
    where: tuple[Condition, ...]
    group_by: tuple[str, ...]
    limit: int | None
    windows: tuple[WindowFunction, ...] = ()
    qualify: tuple[Condition, ...] = ()

    @property
    def is_aggregate(self) -> bool:
        """True for aggregate (possibly grouped) queries."""
        return bool(self.aggregates)


def conjunction_of(conditions: Sequence[Condition]) -> tuple[Condition, ...]:
    """Normalize a condition list (drops redundant TRUE literals)."""
    kept = [c for c in conditions if not isinstance(c, BooleanLiteral) or not c.value]
    return tuple(kept)
