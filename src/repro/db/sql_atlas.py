"""SqlAtlas: the whole pipeline through the SQL-only surface (Section 4).

The paper's architecture section warns that supporting standard APIs
"limits the scope of the operations that can be pushed to the database,
as only SQL may be used".  This engine demonstrates the consequence:
the same four framework steps, but every measurement is a SQL statement —

* CUT medians by COUNT(*) binary search,
* categorical cuts by GROUP BY histograms,
* map distances by per-cell COUNT contingency tables,
* covers and ranking by COUNT per region.

The result matches the native engine (the equivalence tests prove it on
the census workload) at the cost of a long statement log — exactly the
trade-off the paper describes, measured in experiment E14.
"""

from __future__ import annotations

import numpy as np

from repro.core.atlas import MapSet
from repro.core.clustering import cluster_maps_from_matrix
from repro.core.config import AtlasConfig
from repro.core.cut import (
    balanced_label_groups,
    ordered_labels,
    _numeric_subpredicates,
)
from repro.core.datamap import DataMap
from repro.core.distance import MapDistanceMatrix
from repro.core.information import rajski_distance, variation_of_information
from repro.core.ranking import RankedMap
from repro.core.information import entropy
from repro.db.connection import SqlConnection
from repro.engine.context import ExecutionContext
from repro.engine.pipeline import Pipeline
from repro.engine.registry import strategy_key
from repro.engine.stages import PipelineState
from repro.db.pushdown import (
    sql_category_histogram,
    sql_count,
    sql_joint_distribution,
    sql_numeric_range,
    sql_region_counts,
)
from repro.dataset.types import ColumnKind
from repro.errors import ConfigError, MapError, QueryError
from repro.query.predicate import SetPredicate
from repro.query.query import ConjunctiveQuery


class SqlAtlas:
    """Map generation driving a DBMS through SQL text only.

    Parameters
    ----------
    connection:
        The SQL-only connection (its statement log shows the cost).
    table_name:
        The relation to explore.
    config:
        Engine tunables.  Only the MEDIAN numeric strategy is available
        through SQL (the pushdown limitation the paper predicts — the
        intra-cluster-distance split needs the raw values); FREQUENCY,
        ALPHABETIC, and USER_ORDER categorical strategies all work via
        GROUP BY.
    """

    def __init__(
        self,
        connection: SqlConnection,
        table_name: str,
        config: AtlasConfig | None = None,
    ):
        self._connection = connection
        self._table_name = table_name
        self._config = config or AtlasConfig()
        numeric = strategy_key(self._config.numeric_strategy)
        if numeric != "median":
            # Fail fast instead of silently computing medians: the
            # other strategies need the raw values, which only SQL
            # statements this engine does not issue could avoid.
            raise ConfigError(
                f"numeric cut strategy {numeric!r} cannot be pushed down "
                "through the SQL surface; only 'median' is available"
            )
        # Schema discovery: one bounded probe for column names/kinds.
        probe = connection.query(
            f'SELECT * FROM "{table_name}" LIMIT 200'
        )
        self._kinds: dict[str, ColumnKind] = probe.kinds()
        self._probe_roles = {c.name: c.role() for c in probe.columns}

    @property
    def statement_count(self) -> int:
        """Statements issued so far (the pushdown cost metric of E14)."""
        return len(self._connection.statement_log)

    # ------------------------------------------------------------------ #
    # The pipeline
    # ------------------------------------------------------------------ #

    def explore(self, query: ConjunctiveQuery | None = None) -> MapSet:
        """Run the Section-3 pipeline through the SQL surface.

        The same :class:`~repro.engine.pipeline.Pipeline` driver as the
        native engine, with every stage swapped for a statement-issuing
        equivalent — the stage protocol is the pluggability seam.
        """
        context = ExecutionContext(None, self._config)
        return self.pipeline().run(query or ConjunctiveQuery(), context)

    def pipeline(self) -> Pipeline:
        """This engine's stage composition (SQL equivalents of §3)."""
        return Pipeline(
            (
                _SqlScopeStage(self),
                _SqlCandidateStage(self),
                _SqlClusteringStage(self),
                _SqlMergeStage(self),
                _SqlRankingStage(self),
            )
        )

    # ------------------------------------------------------------------ #
    # CUT through SQL
    # ------------------------------------------------------------------ #

    def cut(self, query: ConjunctiveQuery, attribute: str) -> DataMap:
        """``CUT_attribute`` with all measurements pushed down."""
        kind = self._kinds.get(attribute)
        if kind is None:
            raise QueryError(f"unknown attribute {attribute!r}")
        if kind is ColumnKind.NUMERIC:
            regions = self._cut_numeric(query, attribute)
        else:
            regions = self._cut_categorical(query, attribute)
        if not regions:
            return DataMap(
                [query], attributes=[attribute], label=f"cut:{attribute}"
            )
        return DataMap(
            regions, attributes=[attribute], label=f"cut:{attribute}"
        )

    def _cut_numeric(self, query, attribute) -> list[ConjunctiveQuery]:
        low, high = sql_numeric_range(
            self._connection, attribute, self._table_name, query
        )
        if not np.isfinite(low) or not np.isfinite(high) or low == high:
            return []
        points = []
        # SQL pushdown supports equi-depth (median) splits; the paper's
        # default.  n_splits medians come from recursive range halving.
        for j in range(1, self._config.n_splits):
            # quantile j/n via counting: binary search on the target rank
            points.append(
                self._sql_quantile(query, attribute, j / self._config.n_splits)
            )
        parent = query.predicate_on(attribute)
        cleaned = sorted(
            {p for p in points if low < p < high}
        )
        if not cleaned:
            return []
        predicates = _numeric_subpredicates(parent, attribute, cleaned)
        return [query.with_predicate(p) for p in predicates]

    def _sql_quantile(
        self, query: ConjunctiveQuery, attribute: str, q: float
    ) -> float:
        from repro.query.predicate import RangePredicate

        low, high = sql_numeric_range(
            self._connection, attribute, self._table_name, query
        )
        total = sql_count(self._connection, query, self._table_name)
        target = q * total
        for __ in range(20):
            pivot = (low + high) / 2.0
            below = sql_count(
                self._connection,
                query.conjoin(
                    ConjunctiveQuery(
                        [RangePredicate(attribute, float("-inf"), pivot)]
                    )
                ),
                self._table_name,
            )
            if below < target:
                low = pivot
            else:
                high = pivot
            if high - low <= 1e-9 * max(1.0, abs(high)):
                break
        return (low + high) / 2.0

    def _cut_categorical(self, query, attribute) -> list[ConjunctiveQuery]:
        histogram = sql_category_histogram(
            self._connection, attribute, self._table_name, query
        )
        parent = query.predicate_on(attribute)
        if isinstance(parent, SetPredicate):
            admitted = [
                v for v in parent.ordered_values
            ]
            counts = {v: histogram.get(v, 0) for v in admitted}
        else:
            admitted = list(histogram)
            counts = dict(histogram)
        if len(admitted) < 2:
            return []
        ordered = ordered_labels(
            self._config.categorical_strategy, admitted, counts
        )
        groups = balanced_label_groups(ordered, counts, self._config.n_splits)
        if len(groups) < 2:
            return []
        return [
            query.with_predicate(SetPredicate(attribute, group))
            for group in groups
        ]

    # ------------------------------------------------------------------ #
    # Distances, merging, ranking through SQL
    # ------------------------------------------------------------------ #

    def _scope_attributes(self, query: ConjunctiveQuery) -> list[str]:
        from repro.dataset.types import ColumnRole

        if len(query) > 0:
            scope = [a for a in query.attributes if a in self._kinds]
        else:
            scope = list(self._kinds)
        return [
            a for a in scope
            if self._probe_roles.get(a) is ColumnRole.DIMENSION
        ]

    def _distance_matrix(
        self,
        candidates: list[DataMap],
        query: ConjunctiveQuery,
        total: int,
    ) -> MapDistanceMatrix:
        n = len(candidates)
        raw = np.zeros((n, n))
        scaled = np.zeros((n, n))
        for i in range(n):
            for j in range(i + 1, n):
                joint = sql_joint_distribution(
                    self._connection,
                    candidates[i],
                    candidates[j],
                    self._table_name,
                    base=query,
                    total=total,
                )
                raw[i, j] = raw[j, i] = variation_of_information(joint)
                scaled[i, j] = scaled[j, i] = rajski_distance(joint)
        return MapDistanceMatrix(
            maps=tuple(candidates), distances=raw, normalized=scaled
        )

    def _merge(self, cluster, query: ConjunctiveQuery) -> DataMap:
        if len(cluster) == 1:
            return cluster[0]
        method = strategy_key(self._config.merge_method)
        if method not in ("product", "composition"):
            # Custom registered merges run arbitrary Python over the
            # in-memory table; they cannot be pushed down as SQL.
            # Falling back silently would produce different maps than
            # the native engine under the same config.
            raise ConfigError(
                f"merge strategy {method!r} cannot be pushed down through "
                "the SQL surface; use 'product' or 'composition'"
            )
        if method == "composition":
            base, *rest = cluster
            regions = list(base.regions)
            for other in rest:
                for attribute in other.attributes:
                    refined = []
                    for region in regions:
                        refined.extend(self.cut(region, attribute).regions)
                    regions = refined
            attributes = [a for m in cluster for a in m.attributes]
            merged = DataMap(
                regions,
                attributes=list(dict.fromkeys(attributes)),
                label=" ∘ ".join(m.label for m in cluster),
            )
        else:
            from repro.core.merge import product

            merged = product(cluster)
        return self._drop_empty(merged)

    def _drop_empty(self, merged: DataMap) -> DataMap:
        counts = sql_region_counts(
            self._connection, merged, self._table_name
        )
        kept = [
            region
            for region, count in zip(merged.regions, counts)
            if count > 0
        ]
        if not kept:
            kept = [merged.regions[int(np.argmax(counts))]]
        return DataMap(kept, merged.attributes, merged.label)

    def _rank(self, merged: list[DataMap]) -> list[RankedMap]:
        total = sql_count(
            self._connection, ConjunctiveQuery(), self._table_name
        )
        ranked = []
        for data_map in merged:
            counts = sql_region_counts(
                self._connection, data_map, self._table_name
            )
            covered = counts.sum()
            score = (
                float(entropy(counts / covered)) if covered > 0 else 0.0
            )
            ranked.append(
                RankedMap(
                    map=data_map,
                    score=score,
                    covers=tuple(float(c) / total for c in counts),
                )
            )
        ranked.sort(
            key=lambda r: (-r.score, len(r.map.attributes), r.map.label)
        )
        return ranked


# --------------------------------------------------------------------- #
# The SQL stage implementations
# --------------------------------------------------------------------- #
# Each stage mirrors a native engine stage but measures through SQL
# statements; they share the generic Pipeline driver (and its per-stage
# timing) with every other entry point.  The context's statistics cache
# is unused here — there is no in-memory table to cache over.


class _SqlScopeStage:
    """COUNT(*) probe: reject empty queries, record the row total."""

    name = "sampling"

    def __init__(self, engine: SqlAtlas):
        self._engine = engine

    def run(self, state: PipelineState, context: ExecutionContext) -> None:
        total = sql_count(
            self._engine._connection, state.query, self._engine._table_name
        )
        if total == 0:
            raise MapError("the query describes no tuples")
        state.n_rows_used = total


class _SqlCandidateStage:
    """CUT per eligible attribute, medians via COUNT(*) binary search."""

    name = "candidates"

    def __init__(self, engine: SqlAtlas):
        self._engine = engine

    def run(self, state: PipelineState, context: ExecutionContext) -> None:
        engine = self._engine
        state.candidates = [
            candidate
            for attribute in engine._scope_attributes(state.query)
            if not (candidate := engine.cut(state.query, attribute)).is_trivial
        ]


class _SqlClusteringStage:
    """Pairwise VI from per-cell COUNT contingency tables."""

    name = "clustering"

    def __init__(self, engine: SqlAtlas):
        self._engine = engine

    def run(self, state: PipelineState, context: ExecutionContext) -> None:
        if not state.candidates:
            state.clustering = None
            return
        if state.n_rows_used <= 0:
            raise MapError(
                "stage 'clustering' needs the query's row total but none "
                "was set; include a counting scope stage (e.g. the SQL "
                "sampling stage) earlier in the pipeline"
            )
        matrix = self._engine._distance_matrix(
            state.candidates, state.query, state.n_rows_used
        )
        state.clustering = cluster_maps_from_matrix(
            state.candidates, matrix, context.config
        )


class _SqlMergeStage:
    """Merge clusters; empty regions dropped via COUNT per region."""

    name = "merging"

    def __init__(self, engine: SqlAtlas):
        self._engine = engine

    def run(self, state: PipelineState, context: ExecutionContext) -> None:
        if state.clustering is None:
            state.merged = []
            return
        state.merged = [
            m
            for cluster in state.clustering.clusters
            if not (m := self._engine._merge(cluster, state.query)).is_trivial
        ]


class _SqlRankingStage:
    """Entropy ranking over COUNT-per-region covers."""

    name = "ranking"

    def __init__(self, engine: SqlAtlas):
        self._engine = engine

    def run(self, state: PipelineState, context: ExecutionContext) -> None:
        if not state.merged:
            state.ranked = ()
            return
        ranked = self._engine._rank(state.merged)
        state.ranked = tuple(ranked[: context.config.max_maps])
