"""SQL tokenizer for the generic DBMS access layer (paper Section 4).

The paper notes a generic Atlas must talk to any DBMS through "standard
APIs such as ODBC or JDBC... only SQL may be used".  This package makes
that path executable offline: the SQL text produced by
:mod:`repro.query.sql` is tokenized here, parsed in
:mod:`repro.db.parser`, and executed against the columnar substrate in
:mod:`repro.db.executor`.

The tokenizer covers exactly the dialect the emitter produces plus the
small extensions the tests exercise: keywords, bare and double-quoted
identifiers, single-quoted string literals (with ``''`` escapes),
numbers, comparison operators, parentheses, commas, and ``*``.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.errors import QueryError


class SqlSyntaxError(QueryError):
    """The SQL text could not be tokenized or parsed."""


class TokenType(enum.Enum):
    """Lexical category of a token."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"
    STAR = "star"
    END = "end"


#: Words recognized as keywords (uppercased during tokenization).
KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "IN", "BETWEEN",
        "GROUP", "BY", "ORDER", "LIMIT", "COUNT", "MIN", "MAX", "AVG",
        "SUM", "AS", "TRUE", "FALSE", "ASC", "DESC", "IS", "NULL",
        "OVER", "QUALIFY", "ROW_NUMBER", "CONTAINS", "MATCH",
    }
)

_OPERATORS = ("<>", "<=", ">=", "=", "<", ">", "!=")
_PUNCTUATION = "(),"


@dataclasses.dataclass(frozen=True)
class Token:
    """One lexical token with its source position (for error messages)."""

    type: TokenType
    value: str
    position: int

    def matches(self, token_type: TokenType, value: str | None = None) -> bool:
        """True when the type (and, if given, the value) match."""
        if self.type is not token_type:
            return False
        return value is None or self.value == value


def tokenize(text: str) -> list[Token]:
    """Tokenize SQL text; raises :class:`SqlSyntaxError` on bad input."""
    tokens: list[Token] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if char == "*":
            tokens.append(Token(TokenType.STAR, "*", index))
            index += 1
            continue
        if char in _PUNCTUATION:
            tokens.append(Token(TokenType.PUNCTUATION, char, index))
            index += 1
            continue
        operator = _match_operator(text, index)
        if operator:
            tokens.append(Token(TokenType.OPERATOR, operator, index))
            index += len(operator)
            continue
        if char == "'":
            literal, index = _read_string(text, index)
            tokens.append(Token(TokenType.STRING, literal, index))
            continue
        if char == '"':
            identifier, index = _read_quoted_identifier(text, index)
            tokens.append(Token(TokenType.IDENTIFIER, identifier, index))
            continue
        if char.isdigit() or (
            char in "+-." and index + 1 < length and text[index + 1].isdigit()
        ):
            number, index = _read_number(text, index)
            tokens.append(Token(TokenType.NUMBER, number, index))
            continue
        if char.isalpha() or char == "_":
            word, index = _read_word(text, index)
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, index))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, index))
            continue
        raise SqlSyntaxError(f"unexpected character {char!r} at position {index}")
    tokens.append(Token(TokenType.END, "", length))
    return tokens


def _match_operator(text: str, index: int) -> str | None:
    for operator in _OPERATORS:
        if text.startswith(operator, index):
            return operator
    return None


def _read_string(text: str, index: int) -> tuple[str, int]:
    # index points at the opening quote
    out: list[str] = []
    cursor = index + 1
    while cursor < len(text):
        char = text[cursor]
        if char == "'":
            if cursor + 1 < len(text) and text[cursor + 1] == "'":
                out.append("'")
                cursor += 2
                continue
            return "".join(out), cursor + 1
        out.append(char)
        cursor += 1
    raise SqlSyntaxError(f"unterminated string literal starting at {index}")


def _read_quoted_identifier(text: str, index: int) -> tuple[str, int]:
    out: list[str] = []
    cursor = index + 1
    while cursor < len(text):
        char = text[cursor]
        if char == '"':
            if cursor + 1 < len(text) and text[cursor + 1] == '"':
                out.append('"')
                cursor += 2
                continue
            return "".join(out), cursor + 1
        out.append(char)
        cursor += 1
    raise SqlSyntaxError(f"unterminated identifier starting at {index}")


def _read_number(text: str, index: int) -> tuple[str, int]:
    cursor = index
    if text[cursor] in "+-":
        cursor += 1
    seen_dot = False
    seen_exp = False
    while cursor < len(text):
        char = text[cursor]
        if char.isdigit():
            cursor += 1
        elif char == "." and not seen_dot and not seen_exp:
            seen_dot = True
            cursor += 1
        elif char in "eE" and not seen_exp and cursor + 1 < len(text):
            nxt = text[cursor + 1]
            if nxt.isdigit() or nxt in "+-":
                seen_exp = True
                cursor += 2 if nxt in "+-" else 1
            else:
                break
        else:
            break
    return text[index:cursor], cursor


def _read_word(text: str, index: int) -> tuple[str, int]:
    cursor = index
    while cursor < len(text) and (
        text[cursor].isalnum() or text[cursor] in "_."
    ):
        cursor += 1
    return text[index:cursor], cursor
