"""Generic DBMS access layer (paper Section 4).

A restricted SQL dialect (tokenizer, recursive-descent parser, executor
over the columnar substrate) plus the two connection shapes the paper
names: native typed access (MAPI analogue) and SQL-text-only access
(ODBC/JDBC analogue).
"""

from repro.db.ast import (
    Aggregate,
    Between,
    BooleanLiteral,
    Comparison,
    InList,
    IsNull,
    SelectStatement,
    WindowFunction,
)
from repro.db.connection import Connection, NativeConnection, SqlConnection
from repro.db.executor import SqlExecutionError, execute
from repro.db.parser import parse_sql
from repro.db.pushdown import (
    sql_category_histogram,
    sql_count,
    sql_cover,
    sql_frequency_summary,
    sql_joint_distribution,
    sql_median,
    sql_numeric_range,
    sql_quantile_summary,
    sql_region_counts,
)
from repro.db.sql_atlas import SqlAtlas
from repro.db.tokens import SqlSyntaxError, Token, TokenType, tokenize

__all__ = [
    "Aggregate",
    "Between",
    "BooleanLiteral",
    "Comparison",
    "Connection",
    "InList",
    "IsNull",
    "NativeConnection",
    "SelectStatement",
    "SqlAtlas",
    "SqlConnection",
    "SqlExecutionError",
    "SqlSyntaxError",
    "Token",
    "TokenType",
    "WindowFunction",
    "execute",
    "parse_sql",
    "sql_category_histogram",
    "sql_count",
    "sql_cover",
    "sql_frequency_summary",
    "sql_joint_distribution",
    "sql_median",
    "sql_numeric_range",
    "sql_quantile_summary",
    "sql_region_counts",
    "tokenize",
]
