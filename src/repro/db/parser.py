"""Recursive-descent parser for the restricted SQL dialect.

Grammar (conjunctive WHERE only — the "Charles" restriction of
Section 4; OR/NOT are recognized by the tokenizer but rejected here
with a clear message)::

    select    := SELECT select_list FROM identifier
                 [WHERE condition (AND condition)*]
                 [GROUP BY identifier (, identifier)*]
                 [QUALIFY condition (AND condition)*]
                 [LIMIT number]
    select_list := '*' | item (, item)*
    item      := identifier | aggregate [AS identifier]
               | window [AS identifier]
    aggregate := COUNT ( '*' | identifier ) | (MIN|MAX|AVG|SUM) ( identifier )
    window    := ROW_NUMBER ( ) OVER ( ORDER BY identifier [ASC|DESC] )
    condition := TRUE | FALSE
               | identifier IS [NOT] NULL
               | identifier op literal
               | identifier BETWEEN number AND number
               | identifier IN ( literal (, literal)* )
               | identifier (CONTAINS|MATCH) string

QUALIFY (the DuckDB/Snowflake idiom) filters on window outputs *after*
they are computed — the sketch pushdowns of :mod:`repro.db.pushdown`
use it to select summary ranks server-side, so only ``O(1/ε)`` /
``O(capacity)`` rows ever cross the wire.  IN lists accept either
string or number literals (numbers match numeric columns and window
outputs).
"""

from __future__ import annotations

from repro.db.ast import (
    Aggregate,
    Between,
    BooleanLiteral,
    Comparison,
    Condition,
    InList,
    IsNull,
    SelectStatement,
    TextMatch,
    WindowFunction,
    conjunction_of,
)
from repro.db.tokens import SqlSyntaxError, Token, TokenType, tokenize

_AGGREGATE_KEYWORDS = ("COUNT", "MIN", "MAX", "AVG", "SUM")


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._index = 0

    # ------------------------------------------------------------------ #
    # Cursor helpers
    # ------------------------------------------------------------------ #

    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, token_type: TokenType, value: str | None = None) -> Token:
        token = self._peek()
        if not token.matches(token_type, value):
            wanted = value or token_type.value
            raise SqlSyntaxError(
                f"expected {wanted} at position {token.position}, "
                f"got {token.value!r}"
            )
        return self._advance()

    def _accept(self, token_type: TokenType, value: str | None = None) -> bool:
        if self._peek().matches(token_type, value):
            self._advance()
            return True
        return False

    # ------------------------------------------------------------------ #
    # Grammar
    # ------------------------------------------------------------------ #

    def parse_select(self) -> SelectStatement:
        self._expect(TokenType.KEYWORD, "SELECT")
        columns, aggregates, windows = self._select_list()
        self._expect(TokenType.KEYWORD, "FROM")
        table = self._expect(TokenType.IDENTIFIER).value

        where: tuple[Condition, ...] = ()
        if self._accept(TokenType.KEYWORD, "WHERE"):
            where = self._conjunction()

        group_by: tuple[str, ...] = ()
        if self._accept(TokenType.KEYWORD, "GROUP"):
            self._expect(TokenType.KEYWORD, "BY")
            group_by = self._identifier_list()

        qualify: tuple[Condition, ...] = ()
        if self._accept(TokenType.KEYWORD, "QUALIFY"):
            qualify = self._conjunction()

        limit: int | None = None
        if self._accept(TokenType.KEYWORD, "LIMIT"):
            token = self._expect(TokenType.NUMBER)
            limit = int(float(token.value))

        self._expect(TokenType.END)

        if group_by and not aggregates:
            raise SqlSyntaxError("GROUP BY requires aggregate select items")
        if qualify and not windows:
            raise SqlSyntaxError(
                "QUALIFY requires a window function in the select list"
            )
        return SelectStatement(
            table=table,
            columns=columns,
            aggregates=tuple(aggregates),
            where=conjunction_of(where),
            group_by=group_by,
            limit=limit,
            windows=tuple(windows),
            qualify=conjunction_of(qualify),
        )

    def _select_list(
        self,
    ) -> tuple[
        tuple[str, ...] | None, list[Aggregate], list[WindowFunction]
    ]:
        if self._accept(TokenType.STAR):
            return None, [], []
        columns: list[str] = []
        aggregates: list[Aggregate] = []
        windows: list[WindowFunction] = []
        while True:
            token = self._peek()
            if token.matches(TokenType.KEYWORD, "ROW_NUMBER"):
                windows.append(self._window())
            elif token.type is TokenType.KEYWORD and token.value in _AGGREGATE_KEYWORDS:
                aggregates.append(self._aggregate())
            elif token.type is TokenType.IDENTIFIER:
                columns.append(self._advance().value)
            else:
                raise SqlSyntaxError(
                    f"expected a column or aggregate at position {token.position}"
                )
            if not self._accept(TokenType.PUNCTUATION, ","):
                break
        return (tuple(columns) if columns else None), aggregates, windows

    def _window(self) -> WindowFunction:
        function = self._advance().value
        self._expect(TokenType.PUNCTUATION, "(")
        self._expect(TokenType.PUNCTUATION, ")")
        self._expect(TokenType.KEYWORD, "OVER")
        self._expect(TokenType.PUNCTUATION, "(")
        self._expect(TokenType.KEYWORD, "ORDER")
        self._expect(TokenType.KEYWORD, "BY")
        order_by = self._expect(TokenType.IDENTIFIER).value
        descending = False
        if self._accept(TokenType.KEYWORD, "DESC"):
            descending = True
        else:
            self._accept(TokenType.KEYWORD, "ASC")
        self._expect(TokenType.PUNCTUATION, ")")
        alias = None
        if self._accept(TokenType.KEYWORD, "AS"):
            alias = self._expect(TokenType.IDENTIFIER).value
        return WindowFunction(
            function=function,
            order_by=order_by,
            descending=descending,
            alias=alias,
        )

    def _aggregate(self) -> Aggregate:
        function = self._advance().value
        self._expect(TokenType.PUNCTUATION, "(")
        if self._accept(TokenType.STAR):
            if function != "COUNT":
                raise SqlSyntaxError(f"{function}(*) is not valid SQL")
            column = None
        else:
            column = self._expect(TokenType.IDENTIFIER).value
        self._expect(TokenType.PUNCTUATION, ")")
        alias = None
        if self._accept(TokenType.KEYWORD, "AS"):
            alias = self._expect(TokenType.IDENTIFIER).value
        return Aggregate(function=function, column=column, alias=alias)

    def _identifier_list(self) -> tuple[str, ...]:
        names = [self._expect(TokenType.IDENTIFIER).value]
        while self._accept(TokenType.PUNCTUATION, ","):
            names.append(self._expect(TokenType.IDENTIFIER).value)
        return tuple(names)

    def _conjunction(self) -> tuple[Condition, ...]:
        conditions = [self._condition()]
        while True:
            token = self._peek()
            if token.matches(TokenType.KEYWORD, "AND"):
                self._advance()
                conditions.append(self._condition())
                continue
            if token.matches(TokenType.KEYWORD, "OR") or token.matches(
                TokenType.KEYWORD, "NOT"
            ):
                raise SqlSyntaxError(
                    "only conjunctive WHERE clauses are supported "
                    "(the paper's 'Charles' restriction)"
                )
            break
        return tuple(conditions)

    def _condition(self) -> Condition:
        token = self._peek()
        if token.matches(TokenType.KEYWORD, "TRUE"):
            self._advance()
            return BooleanLiteral(True)
        if token.matches(TokenType.KEYWORD, "FALSE"):
            self._advance()
            return BooleanLiteral(False)
        column = self._expect(TokenType.IDENTIFIER).value

        if self._accept(TokenType.KEYWORD, "IS"):
            negated = self._accept(TokenType.KEYWORD, "NOT")
            self._expect(TokenType.KEYWORD, "NULL")
            return IsNull(column=column, negated=negated)

        if self._accept(TokenType.KEYWORD, "BETWEEN"):
            low = self._number()
            self._expect(TokenType.KEYWORD, "AND")
            high = self._number()
            return Between(column=column, low=low, high=high)

        for operator in ("CONTAINS", "MATCH"):
            if self._accept(TokenType.KEYWORD, operator):
                return TextMatch(
                    column=column, operator=operator, text=self._string()
                )

        if self._accept(TokenType.KEYWORD, "IN"):
            self._expect(TokenType.PUNCTUATION, "(")
            values = [self._in_literal()]
            while self._accept(TokenType.PUNCTUATION, ","):
                values.append(self._in_literal())
            self._expect(TokenType.PUNCTUATION, ")")
            return InList(column=column, values=tuple(values))

        operator_token = self._expect(TokenType.OPERATOR)
        operator = "<>" if operator_token.value == "!=" else operator_token.value
        value_token = self._peek()
        if value_token.type is TokenType.NUMBER:
            return Comparison(column, operator, self._number())
        if value_token.type is TokenType.STRING:
            return Comparison(column, operator, self._string())
        raise SqlSyntaxError(
            f"expected a literal at position {value_token.position}"
        )

    def _number(self) -> float:
        return float(self._expect(TokenType.NUMBER).value)

    def _string(self) -> str:
        return self._expect(TokenType.STRING).value

    def _in_literal(self) -> str | float:
        """One IN-list member: a string label or a number (rank lists)."""
        token = self._peek()
        if token.type is TokenType.NUMBER:
            return self._number()
        return self._string()


def parse_sql(text: str) -> SelectStatement:
    """Parse one SELECT statement."""
    return _Parser(tokenize(text)).parse_select()
