"""Executor: run parsed SQL against the columnar substrate.

Semantics follow SQL three-valued logic collapsed to "unknown is false":
comparisons, BETWEEN, and IN never match missing values; ``IS NULL``
selects them explicitly.  Aggregates skip missing values except
``COUNT(*)``, which counts rows.

Window functions run after WHERE / GROUP BY: ``ROW_NUMBER() OVER
(ORDER BY col)`` ranks the (possibly grouped) result rows 1..n with a
stable sort (ties keep input order; missing values rank last), and
``QUALIFY`` filters on those ranks before projection — which is what
lets the sketch pushdowns ship only summary rows over the wire.
"""

from __future__ import annotations

import numpy as np

from repro.dataset.column import CategoricalColumn, Column, NumericColumn
from repro.dataset.table import Table
from repro.db.ast import (
    Aggregate,
    Between,
    BooleanLiteral,
    Comparison,
    Condition,
    InList,
    IsNull,
    SelectStatement,
    TextMatch,
    WindowFunction,
)
from repro.errors import QueryError
from repro.query.predicate import tokenize_text


class SqlExecutionError(QueryError):
    """The statement is well-formed but cannot run on this data."""


def execute(statement: SelectStatement, tables: dict[str, Table]) -> Table:
    """Execute a parsed SELECT over a name -> table mapping."""
    table = tables.get(statement.table)
    if table is None:
        raise SqlExecutionError(
            f"unknown table {statement.table!r}; "
            f"known: {', '.join(sorted(tables)) or '(none)'}"
        )

    mask = _where_mask(statement.where, table)
    selected = table.select(mask)

    if statement.is_aggregate:
        result = _aggregate(statement, selected)
    else:
        result = selected

    if statement.windows:
        result = _apply_windows(statement, result)

    if not statement.is_aggregate and statement.columns is not None:
        names = statement.columns + tuple(
            window.output_name for window in statement.windows
        )
        result = result.project(names)

    if statement.limit is not None:
        result = result.take(
            np.arange(min(statement.limit, result.n_rows))
        )
    return result


def _apply_windows(statement: SelectStatement, result: Table) -> Table:
    """Rank rows, filter on QUALIFY, attach the rank columns.

    The filter runs on the rank *arrays* before any column is attached,
    so a QUALIFY that keeps O(1/ε) of a million rows never materializes
    a million-row table with extra columns.
    """
    ranks = {
        window.output_name: _row_number(window, result)
        for window in statement.windows
    }
    if statement.qualify:
        mask = np.ones(result.n_rows, dtype=bool)
        for condition in statement.qualify:
            mask &= _qualify_condition_mask(condition, result, ranks)
        kept = np.nonzero(mask)[0]
        result = result.take(kept)
        ranks = {name: data[kept] for name, data in ranks.items()}
    for window in statement.windows:
        result = result.with_column(
            NumericColumn(window.output_name, ranks[window.output_name])
        )
    return result


def _row_number(window: WindowFunction, table: Table) -> np.ndarray:
    """1-based stable ranks by the order column (missing values last)."""
    column = table.column(window.order_by)
    if not isinstance(column, NumericColumn):
        raise SqlExecutionError(
            f"ORDER BY column {window.order_by!r} must be numeric"
        )
    key = -column.data if window.descending else column.data
    order = np.argsort(key, kind="stable")  # NaN sorts last either way
    ranks = np.empty(key.size, dtype=np.float64)
    ranks[order] = np.arange(1, key.size + 1, dtype=np.float64)
    return ranks


def _qualify_condition_mask(
    condition: Condition, table: Table, ranks: dict[str, np.ndarray]
) -> np.ndarray:
    """QUALIFY sees window outputs first, then the result's own columns."""
    name = getattr(condition, "column", None)
    if name is not None and name in ranks:
        return _array_condition_mask(condition, ranks[name])
    return _condition_mask(condition, table)


def _array_condition_mask(condition: Condition, data: np.ndarray) -> np.ndarray:
    """A condition against a bare numeric array (a window output)."""
    if isinstance(condition, IsNull):
        missing = np.isnan(data)
        return ~missing if condition.negated else missing
    if isinstance(condition, Between):
        result = (data >= condition.low) & (data <= condition.high)
        result[np.isnan(data)] = False
        return result
    if isinstance(condition, InList):
        wanted = [v for v in condition.values if isinstance(v, float)]
        if not wanted:
            return np.zeros(data.size, dtype=bool)
        return np.isin(data, np.asarray(wanted, dtype=np.float64))
    if isinstance(condition, Comparison):
        if not isinstance(condition.value, float):
            raise SqlExecutionError(
                f"window output {condition.column!r} compared to a string"
            )
        result = _apply_operator(data, condition.value, condition.operator)
        result[np.isnan(data)] = False
        return result
    raise SqlExecutionError(f"unsupported QUALIFY condition {condition!r}")


def _where_mask(conditions: tuple[Condition, ...], table: Table) -> np.ndarray:
    mask = np.ones(table.n_rows, dtype=bool)
    for condition in conditions:
        mask &= _condition_mask(condition, table)
    return mask


def _condition_mask(condition: Condition, table: Table) -> np.ndarray:
    if isinstance(condition, BooleanLiteral):
        return np.full(table.n_rows, condition.value, dtype=bool)
    if isinstance(condition, IsNull):
        missing = table.column(condition.column).missing_mask()
        return ~missing if condition.negated else missing
    if isinstance(condition, Between):
        data = table.numeric(condition.column).data
        result = (data >= condition.low) & (data <= condition.high)
        result[np.isnan(data)] = False
        return result
    if isinstance(condition, InList):
        column = table.column(condition.column)
        if isinstance(column, NumericColumn):
            members = [v for v in condition.values if isinstance(v, float)]
            if not members:
                return np.zeros(table.n_rows, dtype=bool)
            # NaN never equals a member, so missing rows stay out.
            return np.isin(column.data, np.asarray(members, dtype=np.float64))
        if not isinstance(column, CategoricalColumn):
            raise SqlExecutionError(
                f"unsupported column kind for {condition.column!r}"
            )
        wanted = {
            code
            for code, cat in enumerate(column.categories)
            if cat in set(condition.values)
        }
        if not wanted:
            return np.zeros(table.n_rows, dtype=bool)
        return np.isin(column.codes, np.fromiter(wanted, dtype=np.int32))
    if isinstance(condition, Comparison):
        return _comparison_mask(condition, table)
    if isinstance(condition, TextMatch):
        return _text_match_mask(condition, table)
    raise SqlExecutionError(f"unsupported condition {condition!r}")


def _text_match_mask(condition: TextMatch, table: Table) -> np.ndarray:
    """CONTAINS/MATCH over a dictionary-encoded text column.

    Bit-identical to the masks of
    :class:`repro.query.predicate.ContainsPredicate` /
    :class:`~repro.query.predicate.MatchPredicate`: labels are tested
    once, rows selected by code, missing rows (code -1) never match.
    """
    column = table.column(condition.column)
    if not isinstance(column, CategoricalColumn):
        raise SqlExecutionError(
            f"{condition.operator} requires a text (categorical) column, "
            f"got {condition.column!r}"
        )
    if condition.operator == "CONTAINS":
        needle = condition.text.lower()
        if not needle:
            raise SqlExecutionError("CONTAINS needs a non-empty needle")
        wanted = [
            code
            for code, cat in enumerate(column.categories)
            if needle in cat.lower()
        ]
    else:
        required = set(tokenize_text(condition.text))
        if not required:
            raise SqlExecutionError("MATCH needs at least one token")
        wanted = [
            code
            for code, cat in enumerate(column.categories)
            if required <= set(tokenize_text(cat))
        ]
    if not wanted:
        return np.zeros(table.n_rows, dtype=bool)
    return np.isin(column.codes, np.asarray(wanted, dtype=np.int32))


def _comparison_mask(condition: Comparison, table: Table) -> np.ndarray:
    column = table.column(condition.column)
    operator = condition.operator
    if isinstance(column, NumericColumn):
        if not isinstance(condition.value, float):
            raise SqlExecutionError(
                f"numeric column {condition.column!r} compared to a string"
            )
        data = column.data
        result = _apply_operator(data, condition.value, operator)
        result[np.isnan(data)] = False
        return result
    if isinstance(column, CategoricalColumn):
        if operator not in ("=", "<>"):
            raise SqlExecutionError(
                f"operator {operator} not supported on categorical "
                f"column {condition.column!r}"
            )
        value = str(condition.value)
        try:
            code = column.categories.index(value)
        except ValueError:
            code = -2  # matches nothing, including missing
        hits = column.codes == code
        if operator == "=":
            return hits
        return ~hits & (column.codes >= 0)
    raise SqlExecutionError(f"unsupported column kind for {condition.column!r}")


def _apply_operator(data: np.ndarray, value: float, operator: str) -> np.ndarray:
    if operator == "=":
        return data == value
    if operator == "<>":
        return data != value
    if operator == "<":
        return data < value
    if operator == "<=":
        return data <= value
    if operator == ">":
        return data > value
    if operator == ">=":
        return data >= value
    raise SqlExecutionError(f"unknown operator {operator!r}")


def _aggregate(statement: SelectStatement, selected: Table) -> Table:
    if statement.group_by:
        return _grouped_aggregate(statement, selected)
    values = {
        aggregate.output_name: [_evaluate_aggregate(aggregate, selected)]
        for aggregate in statement.aggregates
    }
    return Table.from_dict(values, name=f"{statement.table}_agg")


def _grouped_aggregate(statement: SelectStatement, selected: Table) -> Table:
    group_columns = [selected.column(name) for name in statement.group_by]
    group_keys = _group_keys(group_columns)
    unique_keys, inverse = np.unique(group_keys, return_inverse=True)

    data: dict[str, list] = {name: [] for name in statement.group_by}
    for aggregate in statement.aggregates:
        data[aggregate.output_name] = []
    for group_index in range(unique_keys.size):
        rows = np.nonzero(inverse == group_index)[0]
        group_table = selected.take(rows)
        for name in statement.group_by:
            column = group_table.column(name)
            if isinstance(column, CategoricalColumn):
                data[name].append(column.decode()[0])
            else:
                data[name].append(float(column.data[0]))
        for aggregate in statement.aggregates:
            data[aggregate.output_name].append(
                _evaluate_aggregate(aggregate, group_table)
            )
    return Table.from_dict(data, name=f"{statement.table}_agg")


def _group_keys(columns: list[Column]) -> np.ndarray:
    parts = []
    for column in columns:
        if isinstance(column, CategoricalColumn):
            parts.append(column.codes.astype("U16"))
        elif isinstance(column, NumericColumn):
            parts.append(column.data.astype("U32"))
        else:  # pragma: no cover - no other kinds exist
            raise SqlExecutionError("cannot group on this column kind")
    keys = parts[0]
    for part in parts[1:]:
        keys = np.char.add(np.char.add(keys, "\x1f"), part)
    return keys


def _evaluate_aggregate(aggregate: Aggregate, table: Table) -> float:
    if aggregate.function == "COUNT":
        if aggregate.column is None:
            return float(table.n_rows)
        column = table.column(aggregate.column)
        return float(len(column) - column.missing_count())
    column = table.numeric(aggregate.column)
    valid = column.data[~np.isnan(column.data)]
    if valid.size == 0:
        return float("nan")
    if aggregate.function == "MIN":
        return float(valid.min())
    if aggregate.function == "MAX":
        return float(valid.max())
    if aggregate.function == "AVG":
        return float(valid.mean())
    if aggregate.function == "SUM":
        return float(valid.sum())
    raise SqlExecutionError(f"unknown aggregate {aggregate.function!r}")
