"""SQL pushdown primitives: Atlas building blocks as COUNT(*) queries.

Section 4: a generic Atlas reaches the database through ODBC/JDBC, so
"only SQL may be used" — no pulling raw columns into memory.  These
functions compute the pipeline's measurements through that surface:

* :func:`sql_count` / :func:`sql_cover` — region sizes (one statement);
* :func:`sql_numeric_range` — MIN/MAX of an attribute inside a region;
* :func:`sql_median` — approximate median by COUNT(*) binary search
  (``log2(range/precision)`` statements — the pushdown analogue of the
  §5.1 sketch);
* :func:`sql_category_histogram` — label counts via GROUP BY;
* :func:`sql_joint_distribution` — the Definition-2 joint table, one
  COUNT per region pair plus marginals for the escape row/column.

Every function takes the :class:`~repro.db.connection.SqlConnection`
whose statement log records exactly what crossed the wire.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.datamap import DataMap
from repro.db.connection import SqlConnection
from repro.errors import QueryError
from repro.query.predicate import RangePredicate
from repro.query.query import ConjunctiveQuery
from repro.query.sql import predicate_to_sql, quote_identifier


def sql_count(
    connection: SqlConnection, query: ConjunctiveQuery, table_name: str
) -> int:
    """COUNT(*) of a conjunctive query."""
    return connection.count(query, table_name)


def sql_cover(
    connection: SqlConnection,
    query: ConjunctiveQuery,
    table_name: str,
    total: int | None = None,
) -> float:
    """``C(Q)`` through SQL; ``total`` avoids re-counting the table."""
    if total is None:
        total = sql_count(connection, ConjunctiveQuery(), table_name)
    if total == 0:
        return 0.0
    return sql_count(connection, query, table_name) / total


def sql_numeric_range(
    connection: SqlConnection,
    attribute: str,
    table_name: str,
    region: ConjunctiveQuery | None = None,
) -> tuple[float, float]:
    """MIN/MAX of ``attribute`` inside a region, one statement."""
    ident = quote_identifier(attribute)
    where = _where_clause(region)
    result = connection.query(
        f"SELECT MIN({ident}) AS lo, MAX({ident}) AS hi "
        f"FROM {quote_identifier(table_name)}{where}"
    )
    return (
        float(result.numeric("lo").data[0]),
        float(result.numeric("hi").data[0]),
    )


def sql_median(
    connection: SqlConnection,
    attribute: str,
    table_name: str,
    region: ConjunctiveQuery | None = None,
    max_statements: int = 24,
) -> float:
    """Approximate median by binary search over COUNT(*) statements.

    Classic pushdown trick: the server only needs to count rows below a
    pivot, so ``max_statements`` probes bracket the median to
    ``range / 2^probes`` precision without shipping a single tuple.
    """
    region = region or ConjunctiveQuery()
    low, high = sql_numeric_range(connection, attribute, table_name, region)
    if math.isnan(low) or math.isnan(high):
        raise QueryError(f"region holds no values of {attribute!r}")
    if low == high:
        return low
    total = sql_count(connection, region, table_name)
    target = total / 2.0
    for __ in range(max_statements):
        pivot = (low + high) / 2.0
        below = sql_count(
            connection,
            region.conjoin(
                ConjunctiveQuery([RangePredicate(attribute, float("-inf"), pivot)])
            ),
            table_name,
        )
        if below < target:
            low = pivot
        else:
            high = pivot
        if high - low <= 1e-9 * max(1.0, abs(high)):
            break
    return (low + high) / 2.0


def sql_category_histogram(
    connection: SqlConnection,
    attribute: str,
    table_name: str,
    region: ConjunctiveQuery | None = None,
) -> dict[str, int]:
    """Label counts of a categorical attribute inside a region."""
    ident = quote_identifier(attribute)
    where = _where_clause(region)
    result = connection.query(
        f"SELECT {ident}, COUNT(*) AS n "
        f"FROM {quote_identifier(table_name)}{where} GROUP BY {ident}"
    )
    histogram: dict[str, int] = {}
    for row in result.head(result.n_rows):
        label = row[attribute]
        if label is None:
            continue  # missing labels do not form a category
        histogram[str(label)] = int(row["n"])
    return histogram


def sql_region_counts(
    connection: SqlConnection, data_map: DataMap, table_name: str
) -> np.ndarray:
    """COUNT(*) per region of a map (one statement per region)."""
    return np.array(
        [
            sql_count(connection, region, table_name)
            for region in data_map.regions
        ],
        dtype=np.float64,
    )


def sql_joint_distribution(
    connection: SqlConnection,
    map_a: DataMap,
    map_b: DataMap,
    table_name: str,
    base: ConjunctiveQuery | None = None,
    total: int | None = None,
) -> np.ndarray:
    """The Definition-2 joint probability table through SQL.

    One COUNT per (region_a, region_b) pair whose conjunction is
    satisfiable, plus one per region for the marginals; the escape
    row/column come from subtraction, so no tuples ever leave the
    server.  ``base`` restricts the underlying population to the set
    the user query describes.
    """
    base = base or ConjunctiveQuery()
    if total is None:
        total = sql_count(connection, base, table_name)
    if total == 0:
        raise QueryError("the described set is empty")

    k, l = map_a.n_regions, map_b.n_regions
    joint = np.zeros((k + 1, l + 1), dtype=np.float64)
    row_counts = np.zeros(k, dtype=np.float64)
    col_counts = np.zeros(l, dtype=np.float64)

    for i, region_a in enumerate(map_a.regions):
        based_a = base.conjoin(region_a)
        row_counts[i] = (
            0 if based_a is None else sql_count(connection, based_a, table_name)
        )
    for j, region_b in enumerate(map_b.regions):
        based_b = base.conjoin(region_b)
        col_counts[j] = (
            0 if based_b is None else sql_count(connection, based_b, table_name)
        )

    for i, region_a in enumerate(map_a.regions):
        for j, region_b in enumerate(map_b.regions):
            cell = region_a.conjoin(region_b)
            cell = base.conjoin(cell) if cell is not None else None
            joint[i, j] = (
                0 if cell is None else sql_count(connection, cell, table_name)
            )

    # Escape cells by subtraction: row i escape = |A_i| − Σ_j cell(i, j).
    for i in range(k):
        joint[i, l] = max(0.0, row_counts[i] - joint[i, :l].sum())
    for j in range(l):
        joint[k, j] = max(0.0, col_counts[j] - joint[:k, j].sum())
    joint[k, l] = max(0.0, total - joint.sum())
    return joint / total


def _where_clause(region: ConjunctiveQuery | None) -> str:
    if region is None:
        return ""
    parts = [
        predicate_to_sql(p) for p in region.predicates if p.is_restrictive
    ]
    if not parts:
        return ""
    return " WHERE " + " AND ".join(parts)
