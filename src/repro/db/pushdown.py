"""SQL pushdown primitives: Atlas building blocks as COUNT(*) queries.

Section 4: a generic Atlas reaches the database through ODBC/JDBC, so
"only SQL may be used" — no pulling raw columns into memory.  These
functions compute the pipeline's measurements through that surface:

* :func:`sql_count` / :func:`sql_cover` — region sizes (one statement);
* :func:`sql_numeric_range` — MIN/MAX of an attribute inside a region;
* :func:`sql_median` — approximate median by COUNT(*) binary search
  (``log2(range/precision)`` statements — the pushdown analogue of the
  §5.1 sketch);
* :func:`sql_category_histogram` — label counts via GROUP BY;
* :func:`sql_joint_distribution` — the Definition-2 joint table, one
  COUNT per region pair plus marginals for the escape row/column;
* :func:`sql_quantile_summary` / :func:`sql_frequency_summary` — the
  §5.1 sketches themselves, built server-side with window functions:
  ``ROW_NUMBER() OVER (ORDER BY ...)`` plus QUALIFY selects exactly the
  ``O(1/ε)`` order statistics (or ``capacity + 1`` top groups) the
  summary needs, so the sketch a remote DBMS ships is *bit-identical*
  to the one the columnar kernels build from a local scan.

Every function takes the :class:`~repro.db.connection.SqlConnection`
whose statement log records exactly what crossed the wire.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.datamap import DataMap
from repro.db.connection import SqlConnection
from repro.errors import QueryError
from repro.query.predicate import RangePredicate
from repro.query.query import ConjunctiveQuery
from repro.query.sql import predicate_to_sql, quote_identifier
from repro.sketch.frequency import MisraGriesSketch
from repro.sketch.quantile import GKQuantileSketch


def sql_count(
    connection: SqlConnection, query: ConjunctiveQuery, table_name: str
) -> int:
    """COUNT(*) of a conjunctive query."""
    return connection.count(query, table_name)


def sql_cover(
    connection: SqlConnection,
    query: ConjunctiveQuery,
    table_name: str,
    total: int | None = None,
) -> float:
    """``C(Q)`` through SQL; ``total`` avoids re-counting the table."""
    if total is None:
        total = sql_count(connection, ConjunctiveQuery(), table_name)
    if total == 0:
        return 0.0
    return sql_count(connection, query, table_name) / total


def sql_numeric_range(
    connection: SqlConnection,
    attribute: str,
    table_name: str,
    region: ConjunctiveQuery | None = None,
) -> tuple[float, float]:
    """MIN/MAX of ``attribute`` inside a region, one statement."""
    ident = quote_identifier(attribute)
    where = _where_clause(region)
    result = connection.query(
        f"SELECT MIN({ident}) AS lo, MAX({ident}) AS hi "
        f"FROM {quote_identifier(table_name)}{where}"
    )
    return (
        float(result.numeric("lo").data[0]),
        float(result.numeric("hi").data[0]),
    )


def sql_median(
    connection: SqlConnection,
    attribute: str,
    table_name: str,
    region: ConjunctiveQuery | None = None,
    max_statements: int = 24,
) -> float:
    """Approximate median by binary search over COUNT(*) statements.

    Classic pushdown trick: the server only needs to count rows below a
    pivot, so ``max_statements`` probes bracket the median to
    ``range / 2^probes`` precision without shipping a single tuple.
    """
    region = region or ConjunctiveQuery()
    low, high = sql_numeric_range(connection, attribute, table_name, region)
    if math.isnan(low) or math.isnan(high):
        raise QueryError(f"region holds no values of {attribute!r}")
    if low == high:
        return low
    total = sql_count(connection, region, table_name)
    target = total / 2.0
    for __ in range(max_statements):
        pivot = (low + high) / 2.0
        below = sql_count(
            connection,
            region.conjoin(
                ConjunctiveQuery([RangePredicate(attribute, float("-inf"), pivot)])
            ),
            table_name,
        )
        if below < target:
            low = pivot
        else:
            high = pivot
        if high - low <= 1e-9 * max(1.0, abs(high)):
            break
    return (low + high) / 2.0


def sql_category_histogram(
    connection: SqlConnection,
    attribute: str,
    table_name: str,
    region: ConjunctiveQuery | None = None,
) -> dict[str, int]:
    """Label counts of a categorical attribute inside a region."""
    ident = quote_identifier(attribute)
    where = _where_clause(region)
    result = connection.query(
        f"SELECT {ident}, COUNT(*) AS n "
        f"FROM {quote_identifier(table_name)}{where} GROUP BY {ident}"
    )
    histogram: dict[str, int] = {}
    for row in result.head(result.n_rows):
        label = row[attribute]
        if label is None:
            continue  # missing labels do not form a category
        histogram[str(label)] = int(row["n"])
    return histogram


def sql_region_counts(
    connection: SqlConnection, data_map: DataMap, table_name: str
) -> np.ndarray:
    """COUNT(*) per region of a map (one statement per region)."""
    return np.array(
        [
            sql_count(connection, region, table_name)
            for region in data_map.regions
        ],
        dtype=np.float64,
    )


def sql_joint_distribution(
    connection: SqlConnection,
    map_a: DataMap,
    map_b: DataMap,
    table_name: str,
    base: ConjunctiveQuery | None = None,
    total: int | None = None,
) -> np.ndarray:
    """The Definition-2 joint probability table through SQL.

    One COUNT per (region_a, region_b) pair whose conjunction is
    satisfiable, plus one per region for the marginals; the escape
    row/column come from subtraction, so no tuples ever leave the
    server.  ``base`` restricts the underlying population to the set
    the user query describes.
    """
    base = base or ConjunctiveQuery()
    if total is None:
        total = sql_count(connection, base, table_name)
    if total == 0:
        raise QueryError("the described set is empty")

    k, l = map_a.n_regions, map_b.n_regions
    joint = np.zeros((k + 1, l + 1), dtype=np.float64)
    row_counts = np.zeros(k, dtype=np.float64)
    col_counts = np.zeros(l, dtype=np.float64)

    for i, region_a in enumerate(map_a.regions):
        based_a = base.conjoin(region_a)
        row_counts[i] = (
            0 if based_a is None else sql_count(connection, based_a, table_name)
        )
    for j, region_b in enumerate(map_b.regions):
        based_b = base.conjoin(region_b)
        col_counts[j] = (
            0 if based_b is None else sql_count(connection, based_b, table_name)
        )

    for i, region_a in enumerate(map_a.regions):
        for j, region_b in enumerate(map_b.regions):
            cell = region_a.conjoin(region_b)
            cell = base.conjoin(cell) if cell is not None else None
            joint[i, j] = (
                0 if cell is None else sql_count(connection, cell, table_name)
            )

    # Escape cells by subtraction: row i escape = |A_i| − Σ_j cell(i, j).
    for i in range(k):
        joint[i, l] = max(0.0, row_counts[i] - joint[i, :l].sum())
    for j in range(l):
        joint[k, j] = max(0.0, col_counts[j] - joint[:k, j].sum())
    joint[k, l] = max(0.0, total - joint.sum())
    return joint / total


def sql_quantile_summary(
    connection: SqlConnection,
    attribute: str,
    table_name: str,
    region: ConjunctiveQuery | None = None,
    epsilon: float = 0.005,
) -> GKQuantileSketch:
    """Build the canonical GK summary of an attribute through SQL.

    Two statements: a COUNT to learn ``n``, then one window query that
    ranks the non-null values and QUALIFYs down to the ``step =
    max(1, floor(2εn))``-spaced ranks (plus the maximum) that
    :meth:`~repro.sketch.quantile.GKQuantileSketch.from_sorted` would
    keep.  Rank ``r`` is sorted position ``r - 1``, so the rebuilt
    tuples — value, ``g`` = rank gap, ``delta = 0`` — are bit-identical
    to a local kernel build over the same rows; ties cannot perturb
    this because only *values at ranks* (order statistics) are read.
    Only ``~1/(2ε)`` rows ever leave the server.
    """
    ident = quote_identifier(attribute)
    table = quote_identifier(table_name)
    counted = connection.query(
        f"SELECT COUNT({ident}) AS n FROM {table}{_where_clause(region)}"
    )
    n = int(counted.numeric("n").data[0])
    if n == 0:
        return GKQuantileSketch(epsilon=epsilon)

    step = max(1, int(math.floor(2.0 * epsilon * n)))
    ranks = list(range(1, n + 1, step))
    if ranks[-1] != n:
        ranks.append(n)
    rank_list = ", ".join(str(rank) for rank in ranks)
    result = connection.query(
        f"SELECT {ident}, ROW_NUMBER() OVER (ORDER BY {ident}) AS rn "
        f"FROM {table}{_not_null_where(attribute, region)} "
        f"QUALIFY rn IN ({rank_list})"
    )
    by_rank = sorted(
        (int(row["rn"]), float(row[attribute]))
        for row in result.head(result.n_rows)
    )
    tuples = []
    previous = 0
    for rank, value in by_rank:
        tuples.append([value, rank - previous, 0])
        previous = rank
    return GKQuantileSketch.from_dict(
        {
            "kind": "gk_quantile",
            "epsilon": epsilon,
            "count": n,
            "tuples": tuples,
        }
    )


def sql_frequency_summary(
    connection: SqlConnection,
    attribute: str,
    table_name: str,
    region: ConjunctiveQuery | None = None,
    capacity: int = 256,
) -> MisraGriesSketch:
    """Build the Misra–Gries summary of an attribute through SQL.

    Two statements: a COUNT for the stream length, then GROUP BY with
    ``ROW_NUMBER() OVER (ORDER BY n DESC)`` QUALIFYed to the top
    ``capacity + 1`` groups.  Client side, the ``(capacity + 1)``-th
    count is the reduction offset of
    :meth:`~repro.sketch.frequency.MisraGriesSketch.extend_counts`
    (0 when fewer groups exist); subtracting it and dropping
    non-positive remainders rebuilds that fold bit-identically.  Tie
    order between equal counts is irrelevant: the offset is a multiset
    order statistic, and any group ranked past ``capacity + 1`` has a
    count at most the offset, so it could only have contributed a
    dropped counter.
    """
    ident = quote_identifier(attribute)
    table = quote_identifier(table_name)
    counted = connection.query(
        f"SELECT COUNT({ident}) AS n FROM {table}{_where_clause(region)}"
    )
    total = int(counted.numeric("n").data[0])
    if total == 0:
        return MisraGriesSketch(capacity=capacity)

    result = connection.query(
        f"SELECT {ident}, COUNT(*) AS n, "
        f"ROW_NUMBER() OVER (ORDER BY n DESC) AS rank "
        f"FROM {table}{_not_null_where(attribute, region)} "
        f"GROUP BY {ident} QUALIFY rank <= {capacity + 1}"
    )
    groups = [
        (int(row["rank"]), str(row[attribute]), int(row["n"]))
        for row in result.head(result.n_rows)
    ]
    offset = 0
    for rank, __, count in groups:
        if rank == capacity + 1:
            offset = count
    counters = {
        label: count - offset
        for __, label, count in groups
        if count - offset > 0
    }
    return MisraGriesSketch.from_dict(
        {
            "kind": "misra_gries",
            "capacity": capacity,
            "count": total,
            "counters": dict(sorted(counters.items())),
        }
    )


def _not_null_where(attribute: str, region: ConjunctiveQuery | None) -> str:
    """WHERE clause keeping non-null ``attribute`` rows inside a region."""
    parts = [f"{quote_identifier(attribute)} IS NOT NULL"]
    if region is not None:
        parts.extend(
            predicate_to_sql(p) for p in region.predicates if p.is_restrictive
        )
    return " WHERE " + " AND ".join(parts)


def _where_clause(region: ConjunctiveQuery | None) -> str:
    if region is None:
        return ""
    parts = [
        predicate_to_sql(p) for p in region.predicates if p.is_restrictive
    ]
    if not parts:
        return ""
    return " WHERE " + " AND ".join(parts)
