"""Connections: the driver abstraction of the Section-4 architecture.

The paper's prototype talks to MonetDB over its native MAPI driver and
notes a generic version would go through ODBC/JDBC with plain SQL.  Both
shapes exist here:

* :class:`NativeConnection` — the MAPI analogue: hands typed tables to
  the engine directly (what :class:`~repro.core.atlas.Atlas` uses).
* :class:`SqlConnection` — the ODBC/JDBC analogue: accepts only SQL
  text, parses and executes it against the registered tables, and keeps
  a statement log so tests can assert exactly what would cross the wire.

``SqlConnection.run_query`` executes the output of
:func:`repro.query.sql.query_to_sql`, closing the loop: every
conjunctive query the engine builds is executable through the generic
path, and :mod:`tests.db.test_equivalence` proves both paths agree.
"""

from __future__ import annotations

import abc

from repro.dataset.table import Table
from repro.db.executor import execute
from repro.db.parser import parse_sql
from repro.errors import QueryError
from repro.query.query import ConjunctiveQuery
from repro.query.sql import count_to_sql, query_to_sql


class Connection(abc.ABC):
    """A handle on a database the explorer can read."""

    @abc.abstractmethod
    def table_names(self) -> tuple[str, ...]:
        """Names of the visible relations."""

    @abc.abstractmethod
    def fetch(self, table_name: str) -> Table:
        """Materialize one relation."""


class NativeConnection(Connection):
    """Direct, typed access (the MAPI analogue)."""

    def __init__(self, tables: dict[str, Table] | None = None):
        self._tables = dict(tables or {})

    def register(self, table: Table) -> None:
        """Expose a table through the connection."""
        self._tables[table.name] = table

    def table_names(self) -> tuple[str, ...]:
        return tuple(self._tables)

    def fetch(self, table_name: str) -> Table:
        try:
            return self._tables[table_name]
        except KeyError:
            raise QueryError(f"unknown table {table_name!r}") from None


class SqlConnection(Connection):
    """SQL-text-only access (the ODBC/JDBC analogue).

    Every call goes through :func:`repro.db.parser.parse_sql` and the
    executor — nothing bypasses the SQL surface, which is exactly the
    genericity constraint Section 4 describes.
    """

    def __init__(self, tables: dict[str, Table] | None = None):
        self._tables = dict(tables or {})
        self._log: list[str] = []

    def register(self, table: Table) -> None:
        """Expose a table through the connection."""
        self._tables[table.name] = table

    @property
    def statement_log(self) -> tuple[str, ...]:
        """Every SQL statement executed, in order."""
        return tuple(self._log)

    def table_names(self) -> tuple[str, ...]:
        return tuple(self._tables)

    def fetch(self, table_name: str) -> Table:
        return self.query(f'SELECT * FROM "{_escape(table_name)}"')

    def query(self, sql: str) -> Table:
        """Execute raw SQL text."""
        self._log.append(sql)
        return execute(parse_sql(sql), self._tables)

    def run_query(self, query: ConjunctiveQuery, table_name: str) -> Table:
        """Execute a conjunctive query through the SQL surface."""
        return self.query(query_to_sql(query, table_name))

    def count(self, query: ConjunctiveQuery, table_name: str) -> int:
        """COUNT(*) of a conjunctive query through the SQL surface."""
        result = self.query(count_to_sql(query, table_name))
        return int(result.numeric("count(*)").data[0])


def _escape(identifier: str) -> str:
    return identifier.replace('"', '""')
