"""The pipeline driver: composes stages, times them, assembles answers.

This is the single code path behind every public entry point —
:class:`~repro.core.atlas.Atlas`, the anytime explorer, exploration
sessions, the SQL-only engine, and the fluent facade all construct (or
share) a :class:`Pipeline` and call :meth:`Pipeline.run`.

Per-stage wall-clock timings are collected generically around each
stage (the paper's core non-functional requirement is quasi-real-time
latency, Sections 1/2/5.1, and the latency benchmarks read them
directly); stages themselves contain no timing code, so custom stages
get the accounting for free.
"""

from __future__ import annotations

import dataclasses
import time
from collections.abc import Iterator, Sequence

from repro.core.clustering import MapClustering
from repro.core.datamap import DataMap
from repro.core.ranking import RankedMap
from repro.engine.cancel import CancelToken
from repro.engine.context import ExecutionContext
from repro.engine.stages import PipelineState, Stage, default_stages
from repro.errors import MapError
from repro.query.query import ConjunctiveQuery

#: Stage names with a dedicated :class:`StageTimings` field.
CANONICAL_STAGES = ("sampling", "candidates", "clustering", "merging", "ranking")


@dataclasses.dataclass(frozen=True)
class StageTimings:
    """Wall-clock seconds spent in each pipeline stage."""

    sampling: float
    candidates: float
    clustering: float
    merging: float
    ranking: float
    #: ``(name, seconds)`` for stages beyond the canonical five.
    extra: tuple[tuple[str, float], ...] = ()

    @property
    def total(self) -> float:
        """Total pipeline time."""
        return (
            self.sampling
            + self.candidates
            + self.clustering
            + self.merging
            + self.ranking
            + sum(seconds for _, seconds in self.extra)
        )


@dataclasses.dataclass(frozen=True)
class MapSet:
    """The answer to a query: ranked maps plus pipeline metadata."""

    query: ConjunctiveQuery
    ranked: tuple[RankedMap, ...]
    clustering: MapClustering | None
    timings: StageTimings
    n_rows_used: int
    #: Fidelity spec the answer was computed at (``"exact"`` or a
    #: ``"sketch:<rows>:<eps>"`` budget) — provenance for clients and
    #: the REPL, and part of the service result-cache key.
    fidelity: str = "exact"
    #: Streaming version of the table the answer was computed against —
    #: provenance for streaming clients, and how the differential tests
    #: prove a pre-append answer is never served post-append.
    version: int = 0

    @property
    def maps(self) -> tuple[DataMap, ...]:
        """The ranked maps, best first."""
        return tuple(r.map for r in self.ranked)

    @property
    def best(self) -> DataMap:
        """The top-ranked map."""
        if not self.ranked:
            raise MapError("the map set is empty (no attribute could be cut)")
        return self.ranked[0].map

    def __len__(self) -> int:
        return len(self.ranked)

    def __iter__(self) -> Iterator[RankedMap]:
        return iter(self.ranked)

    def describe(self) -> str:
        """Multi-line rendering of the whole result set."""
        if not self.ranked:
            return "(no maps)"
        blocks = []
        for rank, entry in enumerate(self.ranked, start=1):
            blocks.append(
                f"#{rank} score={entry.score:.3f}\n{entry.map.describe()}"
            )
        return "\n\n".join(blocks)


class Pipeline:
    """An ordered stage composition with generic per-stage timing."""

    def __init__(self, stages: Sequence[Stage]):
        if not stages:
            raise MapError("a pipeline needs at least one stage")
        self._stages = tuple(stages)

    @classmethod
    def default(cls) -> "Pipeline":
        """The native Section-3 pipeline (scope → … → ranking)."""
        return cls(default_stages())

    @property
    def stages(self) -> tuple[Stage, ...]:
        """The composed stages, in execution order."""
        return self._stages

    def stage(self, name: str) -> Stage:
        """The first stage with ``name``; raises :class:`MapError`."""
        for stage in self._stages:
            if stage.name == name:
                return stage
        known = ", ".join(s.name for s in self._stages)
        raise MapError(f"pipeline has no stage {name!r}; stages: {known}")

    def replacing(self, name: str, stage: Stage) -> "Pipeline":
        """A new pipeline with the stage named ``name`` swapped out."""
        self.stage(name)  # raise early on unknown names
        return Pipeline(
            tuple(stage if s.name == name else s for s in self._stages)
        )

    def run(
        self,
        query: ConjunctiveQuery | None,
        context: ExecutionContext,
        cancel: "CancelToken | None" = None,
    ) -> MapSet:
        """Drive ``query`` through every stage and assemble the answer.

        ``cancel`` is an optional :class:`~repro.engine.cancel.
        CancelToken`; it is checked cooperatively *between* stages (the
        one place shared context state is guaranteed consistent), so a
        fired token raises :class:`~repro.engine.cancel.
        PipelineCancelled` carrying the count of completed stages and
        the name of the stage that never ran — and the context remains
        as reusable as after a completed run.  The token is also
        installed thread-locally on the context for the duration of the
        run, so cooperative code deeper in a stage may poll
        :meth:`~repro.engine.context.ExecutionContext.check_cancelled`.
        """
        state = PipelineState(query=query if query is not None else ConjunctiveQuery())
        # Captured before the stages run: an append racing this run may
        # surface newer rows, never older ones, so the stamped version
        # is a lower bound on the data the answer reflects.
        version = context.version
        seconds: dict[str, float] = {}
        if cancel is not None:
            context.install_cancel(cancel)
        try:
            for index, stage in enumerate(self._stages):
                if cancel is not None:
                    cancel.check(
                        stages_completed=index, next_stage=stage.name
                    )
                started = time.perf_counter()
                stage.run(state, context)
                elapsed = time.perf_counter() - started
                seconds[stage.name] = seconds.get(stage.name, 0.0) + elapsed
        finally:
            if cancel is not None:
                context.install_cancel(None)
        timings = StageTimings(
            sampling=seconds.pop("sampling", 0.0),
            candidates=seconds.pop("candidates", 0.0),
            clustering=seconds.pop("clustering", 0.0),
            merging=seconds.pop("merging", 0.0),
            ranking=seconds.pop("ranking", 0.0),
            extra=tuple(sorted(seconds.items())),
        )
        return MapSet(
            query=state.query,
            ranked=tuple(state.ranked),
            clustering=state.clustering,
            timings=timings,
            n_rows_used=state.n_rows_used,
            fidelity=context.config.fidelity.spec(),
            version=version,
        )
