"""String-keyed strategy registries for the exploration engine.

The paper leaves several knobs open — the cutting strategies
(Section 3.1), the linkage (Section 3.2), and the merge operator
(Section 3.3).  The seed implementation froze each choice into an enum
and dispatched with ``if``-chains; this module replaces those chains
with open registries so new behaviour can be plugged in without
touching the pipeline:

* :data:`NUMERIC_CUTS` — ``(values, splits, config) -> cut points``,
* :data:`CATEGORICAL_ORDERS` — ``(labels, counts) -> ordered labels``,
* :data:`MERGES` — ``(cluster, table, config) -> DataMap``,
* :data:`LINKAGES` — ``(distance block) -> float``.

The built-in strategies register themselves from the modules that
define them (:mod:`repro.core.cut`, :mod:`repro.core.merge`,
:mod:`repro.core.linkage`); the legacy enums keep working because every
enum *value* doubles as a registry key.  Lookup accepts either form::

    NUMERIC_CUTS.get("median")
    NUMERIC_CUTS.get(NumericCutStrategy.MEDIAN)

Custom strategies are one call away::

    @register_numeric_cut("tertile")
    def tertile(values, splits, config):
        return [float(q) for q in np.quantile(values, [1/3, 2/3])]

    explorer(table).cut("tertile").explore()
"""

from __future__ import annotations

import enum
from collections.abc import Callable, Iterator
from typing import Generic, TypeVar

from repro.errors import ConfigError

T = TypeVar("T")

_builtins_loaded = False


def _ensure_builtins() -> None:
    """Import the modules that register the built-in strategies.

    Lookup may legitimately happen before :mod:`repro.core` has been
    imported (e.g. a script importing only :mod:`repro.engine`); the
    defining modules self-register on import, so pulling them in here
    makes the registries complete on first use.
    """
    global _builtins_loaded
    if _builtins_loaded:
        return
    import repro.core.cut  # noqa: F401
    import repro.core.linkage  # noqa: F401
    import repro.core.merge  # noqa: F401

    # Only after all three imports succeed: a transient import failure
    # must not permanently disable builtin registration.  Reentrancy is
    # safe — the registering modules never call get() at import time.
    _builtins_loaded = True


def strategy_key(key: str | enum.Enum) -> str:
    """Normalize a registry key: enums map to their string value."""
    if isinstance(key, enum.Enum):
        return str(key.value)
    if isinstance(key, str):
        return key
    raise ConfigError(
        f"strategy keys are strings or enums, got {type(key).__name__}"
    )


class StrategyRegistry(Generic[T]):
    """A named mapping from string keys to strategy callables."""

    def __init__(self, kind: str):
        self._kind = kind
        self._entries: dict[str, T] = {}

    @property
    def kind(self) -> str:
        """What this registry holds (used in error messages)."""
        return self._kind

    def register(
        self, name: str | enum.Enum, value: T | None = None, *,
        overwrite: bool = False,
    ):
        """Register ``value`` under ``name``; usable as a decorator.

        Raises :class:`ConfigError` on duplicate names unless
        ``overwrite`` is set (so typos never silently shadow built-ins).
        """
        key = strategy_key(name)

        def _store(entry: T) -> T:
            if not overwrite and key in self._entries:
                raise ConfigError(
                    f"{self._kind} strategy {key!r} is already registered; "
                    "pass overwrite=True to replace it"
                )
            self._entries[key] = entry
            return entry

        if value is None:
            return _store
        return _store(value)

    def get(self, key: str | enum.Enum) -> T:
        """Look up a strategy; unknown names raise :class:`ConfigError`."""
        _ensure_builtins()
        name = strategy_key(key)
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(sorted(self._entries)) or "(none)"
            raise ConfigError(
                f"unknown {self._kind} strategy {name!r}; "
                f"registered: {known}"
            ) from None

    def names(self) -> tuple[str, ...]:
        """All registered strategy names, sorted."""
        _ensure_builtins()
        return tuple(sorted(self._entries))

    def __contains__(self, key: object) -> bool:
        _ensure_builtins()
        try:
            return strategy_key(key) in self._entries  # type: ignore[arg-type]
        except ConfigError:
            return False

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        _ensure_builtins()
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<StrategyRegistry {self._kind!r} n={len(self._entries)}>"


#: ``(values: np.ndarray, splits: int, config: AtlasConfig) -> list[float]``
NUMERIC_CUTS: StrategyRegistry[Callable] = StrategyRegistry("numeric cut")
#: ``(labels: list[str], counts: dict[str, int]) -> list[str]``
CATEGORICAL_ORDERS: StrategyRegistry[Callable] = StrategyRegistry(
    "categorical cut"
)
#: ``(cluster: Sequence[DataMap], table: Table, config) -> DataMap``
MERGES: StrategyRegistry[Callable] = StrategyRegistry("merge")
#: ``(block: np.ndarray) -> float`` — cluster distance from a pairwise block.
LINKAGES: StrategyRegistry[Callable] = StrategyRegistry("linkage")


def register_numeric_cut(name: str, fn: Callable | None = None, **kw):
    """Register a numeric cutting strategy (see :data:`NUMERIC_CUTS`)."""
    return NUMERIC_CUTS.register(name, fn, **kw)


def register_categorical_cut(name: str, fn: Callable | None = None, **kw):
    """Register a categorical label ordering (see :data:`CATEGORICAL_ORDERS`)."""
    return CATEGORICAL_ORDERS.register(name, fn, **kw)


def register_merge(name: str, fn: Callable | None = None, **kw):
    """Register a cluster merge operator (see :data:`MERGES`)."""
    return MERGES.register(name, fn, **kw)


def register_linkage(name: str, fn: Callable | None = None, **kw):
    """Register an agglomeration linkage (see :data:`LINKAGES`)."""
    return LINKAGES.register(name, fn, **kw)
