"""The composable exploration engine.

One pipeline, many doors: every public entry point — the classic
:class:`~repro.core.atlas.Atlas`, the anytime explorer, interactive
sessions, the SQL-only gateway, and the fluent :func:`explorer` facade
— drives the same :class:`Pipeline` of pluggable :class:`Stage` objects
over a shared :class:`ExecutionContext`.

Layers, bottom up:

* :mod:`repro.engine.registry` — string-keyed strategy registries
  (numeric/categorical cuts, merges, linkages); the legacy enums are
  aliases whose values double as registry keys.
* :mod:`repro.engine.context` — :class:`ExecutionContext` carries the
  table, config, deterministic per-query RNG, and a memoized statistics
  cache (masks, assignments, joints, cut points) shared across stages
  and across queries on the same table.
* :mod:`repro.engine.stages` — the :class:`Stage` protocol and the five
  Section-3 stages (scope → candidates → clustering → merging →
  ranking).
* :mod:`repro.engine.pipeline` — the :class:`Pipeline` driver with
  generic per-stage timing, plus the :class:`MapSet` answer type.
* :mod:`repro.engine.facade` — the fluent, batch-capable front door.
"""

from repro.engine.backends import (
    CacheCounters,
    ExactBackend,
    SketchBackend,
    StatsBackend,
    TableStats,
    make_backend,
    query_fingerprint,
    table_fingerprint,
)
from repro.engine.cancel import CancelToken, PipelineCancelled
from repro.engine.context import ExecutionContext
from repro.engine.parallel import (
    ParallelExecutor,
    SerialExecutor,
    ShardedSketchBackend,
    ShardedTable,
    build_sharded_backend,
    fork_available,
)
from repro.engine.pipeline import CANONICAL_STAGES, MapSet, Pipeline, StageTimings
from repro.engine.registry import (
    CATEGORICAL_ORDERS,
    LINKAGES,
    MERGES,
    NUMERIC_CUTS,
    StrategyRegistry,
    register_categorical_cut,
    register_linkage,
    register_merge,
    register_numeric_cut,
    strategy_key,
)
from repro.engine.stages import (
    CandidateStage,
    ClusteringStage,
    MergeStage,
    PipelineState,
    RankingStage,
    ScopeStage,
    Stage,
    default_stages,
)
from repro.engine.facade import Explorer, explorer

__all__ = [
    "CANONICAL_STAGES",
    "CATEGORICAL_ORDERS",
    "CacheCounters",
    "CancelToken",
    "CandidateStage",
    "ClusteringStage",
    "ExactBackend",
    "ExecutionContext",
    "Explorer",
    "LINKAGES",
    "MERGES",
    "MapSet",
    "MergeStage",
    "NUMERIC_CUTS",
    "ParallelExecutor",
    "Pipeline",
    "PipelineCancelled",
    "PipelineState",
    "RankingStage",
    "ScopeStage",
    "SerialExecutor",
    "ShardedSketchBackend",
    "ShardedTable",
    "SketchBackend",
    "Stage",
    "StageTimings",
    "StatsBackend",
    "StrategyRegistry",
    "TableStats",
    "build_sharded_backend",
    "default_stages",
    "explorer",
    "fork_available",
    "make_backend",
    "query_fingerprint",
    "table_fingerprint",
    "register_categorical_cut",
    "register_linkage",
    "register_merge",
    "register_numeric_cut",
    "strategy_key",
]
