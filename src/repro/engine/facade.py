"""The fluent facade: one-liner exploration with a shared context.

:func:`explorer` is the recommended entry point for the whole system::

    from repro import explorer
    from repro.datagen import census_table

    table = census_table(n_rows=50_000, seed=0)
    maps = explorer(table).sample(20_000).cut("median").explore("Age: [17, 90]")

Every knob is a chainable method, queries may be strings in the paper's
syntax or :class:`~repro.query.query.ConjunctiveQuery` objects, and the
explorer keeps one :class:`~repro.engine.context.ExecutionContext`
alive across calls — so a batch (:meth:`Explorer.explore_many`) or a
drill-down sequence reuses every mask, assignment vector, and cut point
computed for earlier answers instead of recomputing them per query.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import TYPE_CHECKING

from repro.core.config import AtlasConfig
from repro.engine.context import ExecutionContext
from repro.engine.pipeline import MapSet, Pipeline
from repro.query.query import ConjunctiveQuery

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.anytime import AnytimeExplorer
    from repro.core.session import ExplorationSession
    from repro.dataset.table import Table


class Explorer:
    """Fluent, batch-capable front door to the exploration engine.

    Configuration methods return ``self`` so calls chain; each one
    replaces the config and drops the cached context (a config change
    invalidates memoized statistics that depend on it).  Strategy
    setters accept registry names (strings) or the legacy enums.
    """

    def __init__(
        self,
        table: "Table",
        config: AtlasConfig | None = None,
        pipeline: Pipeline | None = None,
    ):
        self._table = table
        self._config = config or AtlasConfig()
        self._pipeline = pipeline or Pipeline.default()
        self._context: ExecutionContext | None = None

    # ------------------------------------------------------------------ #
    # Fluent configuration
    # ------------------------------------------------------------------ #

    def configure(self, **changes: object) -> "Explorer":
        """Replace any :class:`AtlasConfig` fields by keyword."""
        self._config = self._config.replace(**changes)
        self._context = None
        return self

    def sample(self, n_rows: int | None) -> "Explorer":
        """Scan a uniform sample of ``n_rows`` (§5.1); ``None`` = all."""
        return self.configure(sample_size=n_rows)

    def cut(self, strategy: object) -> "Explorer":
        """Numeric cutting strategy, e.g. ``"median"`` or ``"twomeans"``."""
        return self.configure(numeric_strategy=strategy)

    def categorical(self, strategy: object) -> "Explorer":
        """Categorical cutting strategy, e.g. ``"frequency"``."""
        return self.configure(categorical_strategy=strategy)

    def merge(self, method: object) -> "Explorer":
        """Cluster merge operator, ``"product"`` or ``"composition"``."""
        return self.configure(merge_method=method)

    def linkage(self, linkage: object) -> "Explorer":
        """Agglomeration linkage, e.g. ``"single"`` (§3.2 favours it)."""
        return self.configure(linkage=linkage)

    def splits(self, n: int) -> "Explorer":
        """Partitions per attribute (the paper fixes 2, §3.1)."""
        return self.configure(n_splits=n)

    def max_maps(self, n: int) -> "Explorer":
        """Cap on the ranked result list."""
        return self.configure(max_maps=n)

    def threshold(self, value: float) -> "Explorer":
        """Dependence threshold for clustering (§3.2 leaves it open)."""
        return self.configure(dependence_threshold=value)

    def seed(self, seed: int) -> "Explorer":
        """Random seed for sampling determinism."""
        return self.configure(seed=seed)

    def fidelity(self, fidelity: object) -> "Explorer":
        """Execution fidelity: ``"exact"``, ``"sketch[:rows[:eps]]"``,
        or a :class:`~repro.core.config.Fidelity` value."""
        return self.configure(fidelity=fidelity)

    def approximate(
        self, budget_rows: int = 20_000, epsilon: float = 0.005
    ) -> "Explorer":
        """Answer from bounded sketches instead of full-table scans."""
        from repro.core.config import Fidelity

        return self.configure(
            fidelity=Fidelity.sketch(budget_rows=budget_rows, epsilon=epsilon)
        )

    def exact(self) -> "Explorer":
        """Full-fidelity execution (undoes :meth:`approximate`)."""
        from repro.core.config import Fidelity

        return self.configure(fidelity=Fidelity.exact())

    def parallel(
        self, workers: int | str = "auto", shards: int | None = None
    ) -> "Explorer":
        """Build sketch statistics with the multi-core scan/merge split.

        ``workers`` is a pure wall-clock knob (``"auto"`` =
        ``os.cpu_count()``); ``shards`` defaults to a fixed
        machine-independent layout, so the same exploration is
        bit-identical at any worker count.  Applies at sketch fidelity
        (combine with :meth:`approximate`); exact execution ignores it.
        """
        from repro.core.config import Parallelism

        return self.configure(parallelism=Parallelism.of(workers, shards))

    def cluster(
        self, servers: int | str = "auto", shards: int | None = None
    ) -> "Explorer":
        """Fan the sketch scans out to attached shard servers.

        ``servers`` counts shard servers (``"auto"`` = every server of
        the attached :func:`repro.cluster.active_cluster`); ``shards``
        defaults to the same fixed layout as :meth:`parallel`, so a
        cluster exploration is bit-identical to a local one.  With no
        cluster attached the scan runs on local workers instead — same
        answers, one machine.
        """
        from repro.core.config import Parallelism

        return self.configure(parallelism=Parallelism.cluster(servers, shards))

    def serial(self) -> "Explorer":
        """Single-core, unsharded execution (undoes :meth:`parallel`
        and :meth:`cluster`)."""
        from repro.core.config import Parallelism

        return self.configure(parallelism=Parallelism.serial())

    def with_pipeline(self, pipeline: Pipeline) -> "Explorer":
        """Swap in a custom stage composition."""
        self._pipeline = pipeline
        return self

    def append(self, rows: object) -> "Explorer":
        """Append rows to the table (streaming) and keep exploring.

        Unlike :meth:`configure`, the shared context is *kept*: it is
        advanced incrementally (sketch backends merge delta sketches
        and top up reservoirs; exact backends drop version-stale
        memos), so the statistics computed for earlier answers that an
        append cannot invalidate keep paying off.
        """
        if self._context is not None:
            # The context is the source of truth for the live version —
            # a session sharing it may have appended already, in which
            # case this explorer's own reference is behind.
            new_table = self._context.table.append(rows)
            self._context.advance(new_table)
        else:
            new_table = self._table.append(rows)
        self._table = new_table
        return self

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def table(self) -> "Table":
        """The dataset being explored."""
        return self._table

    @property
    def config(self) -> AtlasConfig:
        """The accumulated configuration."""
        return self._config

    @property
    def pipeline(self) -> Pipeline:
        """The stage composition queries run through."""
        return self._pipeline

    @property
    def context(self) -> ExecutionContext:
        """The shared execution context (created lazily, kept across calls)."""
        if self._context is None:
            self._context = ExecutionContext(self._table, self._config)
        return self._context

    # ------------------------------------------------------------------ #
    # Exploration
    # ------------------------------------------------------------------ #

    def explore(self, query: "str | ConjunctiveQuery | None" = None) -> MapSet:
        """Answer one query (string in the paper's syntax, or parsed)."""
        return self._pipeline.run(self._parse(query), self.context)

    def explore_many(
        self,
        queries: Iterable["str | ConjunctiveQuery | None"],
        *,
        reuse_answers: bool = True,
    ) -> list[MapSet]:
        """Answer a batch of queries over one shared context.

        Results align with the input order.  Duplicate queries are
        answered once when ``reuse_answers`` is set (interactive traffic
        repeats itself — the §5.1 anticipation argument); even distinct
        queries share every memoized statistic through the context.
        """
        from repro.engine.context import order_sensitive_key

        answers: dict[tuple, MapSet] = {}
        results: list[MapSet] = []
        for raw in queries:
            query = self._parse(raw)
            key = order_sensitive_key(query)
            if reuse_answers and key in answers:
                results.append(answers[key])
                continue
            result = self._pipeline.run(query, self.context)
            if reuse_answers:
                answers[key] = result
            results.append(result)
        return results

    def session(self) -> "ExplorationSession":
        """A drill-down session sharing this explorer's context."""
        from repro.core.atlas import Atlas
        from repro.core.session import ExplorationSession

        engine = Atlas(
            self._table, context=self.context, pipeline=self._pipeline
        )
        return ExplorationSession(self._table, self._config, engine=engine)

    def anytime(
        self,
        query: "str | ConjunctiveQuery | None" = None,
        **kwargs: object,
    ) -> "AnytimeExplorer":
        """An anytime explorer over the same table and configuration.

        Like :meth:`explore`, ``query`` may be text in the paper's
        syntax.
        """
        from repro.core.anytime import AnytimeExplorer

        return AnytimeExplorer(
            self._table,
            query=self._parse(query) if query is not None else None,
            config=self._config,
            pipeline=self._pipeline,
            **kwargs,
        )

    @staticmethod
    def _parse(query: "str | ConjunctiveQuery | None") -> ConjunctiveQuery:
        if query is None:
            return ConjunctiveQuery()
        if isinstance(query, str):
            from repro.query.parser import parse_query

            return parse_query(query)
        return query

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Explorer table={self._table.name!r} rows={self._table.n_rows}>"


def explorer(table: "Table", config: AtlasConfig | None = None) -> Explorer:
    """Start a fluent exploration over ``table``."""
    return Explorer(table, config)
