"""Pluggable statistics backends: exact scans or bounded sketches.

Every pipeline stage reads its statistics — predicate masks, region
assignments, joint contingency tables, cut points — through one object
implementing the :class:`StatsBackend` protocol.  Two implementations
ship:

* :class:`ExactBackend` — every statistic computed from full-table
  masks with memoization (the historical ``TableStats`` behavior,
  extracted verbatim; ``TableStats`` remains as an alias).
* :class:`SketchBackend` — statistics answered from a bounded-size
  uniform reservoir of the table plus one-pass sketches from
  :mod:`repro.sketch`: per-attribute Greenwald–Khanna quantile
  summaries drive root-scope numeric cuts and Misra–Gries heavy
  hitters drive root-scope categorical orderings, while restricted
  scopes are measured over the reservoir rows.  Cost per request is
  bounded by the fidelity budget regardless of table size — the
  Section-5.1 "sampling and refinement" lever as a first-class
  execution mode.

The backend a context hands out is chosen by
:attr:`repro.core.config.AtlasConfig.fidelity`; one switch flips every
entry point (facade, Atlas, anytime, service, REPL) between fidelities.

Determinism: a sketch backend's reservoir is the first ``budget_rows``
entries of a per-``(seed, table)`` permutation — deterministic for a
given configuration, *nested* across budgets (a larger budget extends
a smaller one's sample), which is what makes the anytime explorer's
progressive escalation comparable across ticks.
"""

from __future__ import annotations

import dataclasses
import threading
import zlib
from typing import Protocol, runtime_checkable

import numpy as np

from repro.core.config import AtlasConfig, Fidelity
from repro.core.contingency import joint_distribution_from_assignments
from repro.core.datamap import DataMap, assign_regions, covers_from_assignment
from repro.core.information import rajski_distance, variation_of_information
from repro.dataset.column import CategoricalColumn, NumericColumn
from repro.dataset.table import Table
from repro.engine.kernels import (
    KernelTimings,
    frequency_summary_from_codes,
    quantile_summary,
    resolve_kernels,
)
from repro.errors import MapError
from repro.query.query import ConjunctiveQuery

#: Bounds on cached scope tables / per-table stat blocks; interactive
#: sessions revisit a handful of scopes, so a small FIFO is plenty.
#: Sampled scopes are materialized copies, so they are additionally
#: bounded by total cached rows (the base table is cached by reference
#: and costs nothing).
_MAX_SCOPES = 128
_MAX_SCOPE_ROWS = 4_000_000
_MAX_TABLE_STATS = 16
#: Per-memo bounds inside one backend block.  Row-sized arrays
#: (masks, assignments) dominate memory, so their FIFO caps come from a
#: byte budget divided by the per-entry size (clamped to [8, 256]
#: entries): on small tables the memos keep hundreds of entries, on a
#: 10M-row table an 8-byte-per-row assignment memo holds ~8 vectors.
#: Small per-region results (covers, joints, cuts) get a flat cap.
_ROW_ARRAY_BYTE_BUDGET = 512 * 1024 * 1024
_MIN_ROW_ARRAYS = 8
_MAX_ROW_ARRAYS = 256
_MAX_SMALL_ENTRIES = 4096
#: Counter budget for the per-attribute Misra–Gries frequency sketches;
#: columns with at most this many categories are summarized exactly.
_MG_CAPACITY = 256


def _row_array_cap(n_rows: int, bytes_per_row: int) -> int:
    """FIFO entry cap for a memo of row-sized arrays."""
    per_entry = max(1, n_rows * bytes_per_row)
    return max(
        _MIN_ROW_ARRAYS,
        min(_MAX_ROW_ARRAYS, _ROW_ARRAY_BYTE_BUDGET // per_entry),
    )


def _bounded_put(memo: dict, key, value, cap: int) -> None:
    """Insert with FIFO eviction once ``cap`` entries are reached."""
    if len(memo) >= cap:
        memo.pop(next(iter(memo)))
    memo[key] = value


@dataclasses.dataclass
class CacheCounters:
    """Hit/miss counters over every memo table of a backend."""

    hits: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def order_sensitive_key(query: ConjunctiveQuery) -> tuple:
    """Cache key for results that depend on user-given value order.

    :class:`ConjunctiveQuery`/:class:`SetPredicate` equality is
    order-insensitive (set semantics), but the ``user_order``
    categorical strategy lays labels out in the order the user gave
    them — so caches of cut results (and whole answers) must key on the
    ordered values as well, or two set-equal queries with different
    value orders would share one result.
    """
    parts = []
    for predicate in sorted(query.predicates, key=lambda p: p.attribute):
        ordered = getattr(predicate, "ordered_values", None)
        parts.append(
            (predicate, tuple(ordered) if ordered is not None else None)
        )
    return tuple(parts)


def query_fingerprint(query: ConjunctiveQuery) -> int:
    """Stable, process-independent fingerprint of a query.

    Predicate order is irrelevant (queries compare as predicate sets),
    and ``zlib.crc32`` avoids Python's per-process string-hash salt.
    """
    canonical = "|".join(sorted(p.describe() for p in query.predicates))
    return zlib.crc32(canonical.encode("utf-8"))


@runtime_checkable
class StatsBackend(Protocol):
    """What every statistics provider owes the pipeline stages.

    Implementations answer the statistics requests of the Section-3
    stages; whether the answer comes from full-table scans
    (:class:`ExactBackend`) or bounded samples and one-pass sketches
    (:class:`SketchBackend`) is invisible to the stages — the
    :attr:`~repro.core.config.AtlasConfig.fidelity` setting picks.
    """

    #: Short backend family name (``"exact"`` / ``"sketch"``); the
    #: per-backend metrics aggregate under it.
    kind: str

    @property
    def table(self) -> Table:
        """The table the statistics describe."""
        ...  # pragma: no cover - protocol stub

    @property
    def effective_table(self) -> Table:
        """The rows estimates are measured on (may be a sample)."""
        ...  # pragma: no cover - protocol stub

    @property
    def n_rows(self) -> int:
        """Rows backing every estimate (``effective_table.n_rows``)."""
        ...  # pragma: no cover - protocol stub

    @property
    def version(self) -> int:
        """Streaming version of the table being described."""
        ...  # pragma: no cover - protocol stub

    def advance(
        self,
        new_table: Table,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        """Maintain this backend onto an appended version of its table."""
        ...  # pragma: no cover - protocol stub

    def query_mask(self, query: ConjunctiveQuery) -> np.ndarray:
        """Row mask of a conjunctive query over the effective rows."""
        ...  # pragma: no cover - protocol stub

    def assignment(self, data_map: DataMap) -> np.ndarray:
        """Region index per effective row (Definition 2)."""
        ...  # pragma: no cover - protocol stub

    def covers(self, data_map: DataMap) -> np.ndarray:
        """Cover of each region over the effective rows."""
        ...  # pragma: no cover - protocol stub

    def joint(
        self,
        map_a: DataMap,
        map_b: DataMap,
        row_indices: np.ndarray | None = None,
        scope_key: object = None,
    ) -> np.ndarray:
        """Joint distribution of two maps' underlying variables."""
        ...  # pragma: no cover - protocol stub

    def distance_matrix(
        self,
        maps: tuple[DataMap, ...],
        row_indices: np.ndarray | None = None,
        scope_key: object = None,
    ):
        """Pairwise VI / Rajski distances between maps."""
        ...  # pragma: no cover - protocol stub

    def cut_map(
        self, query: ConjunctiveQuery, attribute: str, config: AtlasConfig
    ) -> DataMap:
        """``CUT_attribute(query)`` at this backend's fidelity."""
        ...  # pragma: no cover - protocol stub

    def snapshot(self) -> dict:
        """Usage/cache counters of this backend (JSON-ready)."""
        ...  # pragma: no cover - protocol stub


def table_fingerprint(table: Table) -> int:
    """Stable fingerprint of a table's identity-relevant shape.

    Used to derive per-``(seed, table)`` sampling RNG, so sketch
    backends draw the same reservoir for the same table in any process.
    Streaming versions are part of the identity (a post-append table
    must never collide with its pre-append self); version 0 keeps the
    historical canonical form so existing fingerprints are unchanged.
    """
    canonical = f"{table.name}|{table.n_rows}|" + ",".join(table.column_names)
    if table.version:
        canonical += f"|v{table.version}"
    return zlib.crc32(canonical.encode("utf-8"))


class ExactBackend:
    """Memoized exact statistics over one immutable table.

    Every method mirrors an existing computation exactly
    (:meth:`ConjunctiveQuery.mask`, :meth:`DataMap.assign`,
    :meth:`DataMap.covers`, :func:`~repro.core.distance.distance_matrix`)
    so cached and uncached paths are interchangeable; the engine tests
    assert that equivalence.  Cached arrays are frozen
    (``writeable=False``) — callers that need to mutate must copy.

    Thread safety: every memo lookup/insert (and the counters) runs
    under ``lock``; the statistic itself is computed *outside* the lock,
    so concurrent workers (the service pool) never serialize on numpy
    work — a race at worst computes one value twice and the idempotent
    insert wins.  :class:`~repro.engine.context.ExecutionContext` passes
    one lock shared by all its stat blocks so nested memo calls and the
    shared counters stay consistent; a standalone backend gets its own.

    Streaming: :meth:`advance` moves the backend to an appended version
    of its table.  Every memo family here is row-backed, so an append
    makes all of them version-stale; they are dropped in one shot and
    every insert is stamped with the version it was computed at, so a
    statistic computed against the pre-append rows that lands *after*
    the advance is discarded instead of poisoning the new version.
    """

    kind = "exact"

    def __init__(
        self,
        table: Table,
        counters: CacheCounters | None = None,
        lock: threading.Lock | None = None,
    ):
        self._table = table
        self._version = table.version
        self._lock = lock if lock is not None else threading.Lock()
        self.counters = counters if counters is not None else CacheCounters()
        self.usage: dict[str, int] = {}  # guarded-by: _lock
        self._predicate_masks: dict[object, np.ndarray] = {}  # guarded-by: _lock
        self._query_masks: dict[ConjunctiveQuery, np.ndarray] = {}  # guarded-by: _lock
        self._assignments: dict[DataMap, np.ndarray] = {}  # guarded-by: _lock
        self._covers: dict[DataMap, np.ndarray] = {}  # guarded-by: _lock
        self._joints: dict[tuple, np.ndarray] = {}  # guarded-by: _lock
        self._cuts: dict[tuple, DataMap] = {}  # guarded-by: _lock
        self._mask_cap = _row_array_cap(table.n_rows, 1)
        self._row_array_cap = _row_array_cap(table.n_rows, 8)

    @property
    def table(self) -> Table:
        """The table the statistics describe."""
        return self._table

    @property
    def effective_table(self) -> Table:
        """The rows this backend actually measures (here: all of them)."""
        return self._table

    @property
    def n_rows(self) -> int:
        """Rows backing every estimate this backend hands out."""
        return self._table.n_rows

    @property
    def version(self) -> int:
        """Streaming version of the table currently being described."""
        return self._version

    def _use(self, name: str) -> None:  # holds-lock: _lock
        """Bump the per-request usage counter (caller holds the lock)."""
        self.usage[name] = self.usage.get(name, 0) + 1

    def _put_if_current(  # holds-lock: _lock
        self, memo: dict, key, value, cap: int, version: int
    ) -> None:
        """Version-stamped insert (caller holds the lock).

        A statistic computed against version ``v`` rows must not enter
        the memo after an :meth:`advance` past ``v`` — it would be
        served as a current answer while describing pre-append rows
        (and row-sized arrays would not even have the current length).
        """
        if version == self._version:
            _bounded_put(memo, key, value, cap)

    # ------------------------------------------------------------------ #
    # Streaming maintenance
    # ------------------------------------------------------------------ #

    def advance(
        self,
        new_table: Table,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        """Move to an appended version of the table.

        Exact statistics are all row-backed, so the whole memo surface
        is version-stale the moment rows arrive: every family is
        dropped and rebuilt lazily on demand against the new rows.
        (``rng`` is accepted for signature parity with
        :meth:`SketchBackend.advance`; exact maintenance draws nothing.)
        """
        del rng
        if new_table.version <= self._version:
            raise MapError(
                f"cannot advance from version {self._version} to "
                f"{new_table.version}; versions must increase"
            )
        if new_table.n_rows < self._table.n_rows:
            raise MapError(
                "streaming tables are append-only: cannot advance from "
                f"{self._table.n_rows} to {new_table.n_rows} rows"
            )
        with self._lock:
            self._advance_state(new_table)

    def _advance_state(self, new_table: Table) -> None:  # holds-lock: _lock
        """The state transition of :meth:`advance` (caller holds the
        lock — :class:`SketchBackend` swaps its own state in the same
        critical section so the version bump and the memo invalidation
        are atomic for readers)."""
        self._use("advance")
        self._table = new_table
        self._version = new_table.version
        self._predicate_masks.clear()
        self._query_masks.clear()
        self._assignments.clear()
        self._covers.clear()
        self._joints.clear()
        self._cuts.clear()
        self._mask_cap = _row_array_cap(new_table.n_rows, 1)
        self._row_array_cap = _row_array_cap(new_table.n_rows, 8)

    # ------------------------------------------------------------------ #
    # Masks
    # ------------------------------------------------------------------ #

    def _query_mask_on(
        self, table: Table, query: ConjunctiveQuery
    ) -> np.ndarray:
        """Uncached query mask over a captured table snapshot.

        The fallback path when an :meth:`advance` races a computation:
        cached masks may describe the new rows while the caller is
        mid-way through an answer over the old ones; recomputing from
        the snapshot keeps each answer internally consistent.
        """
        result = np.ones(table.n_rows, dtype=bool)
        for predicate in query.predicates:
            np.logical_and(
                result,
                np.asarray(predicate.mask(table), dtype=bool),
                out=result,
            )
        return result

    def predicate_mask(self, predicate) -> np.ndarray:
        """Row mask of one predicate (frozen array, cached)."""
        with self._lock:
            self._use("predicate_mask")
            cached = self._predicate_masks.get(predicate)
            if cached is not None:
                self.counters.hits += 1
                return cached
            self.counters.misses += 1
            table, version = self._table, self._version
        mask = np.asarray(predicate.mask(table), dtype=bool)
        mask.flags.writeable = False
        with self._lock:
            self._put_if_current(
                self._predicate_masks, predicate, mask, self._mask_cap, version
            )
        return mask

    def query_mask(self, query: ConjunctiveQuery) -> np.ndarray:
        """Row mask of a conjunctive query, AND of cached predicate masks."""
        with self._lock:
            self._use("query_mask")
            cached = self._query_masks.get(query)
            if cached is not None:
                self.counters.hits += 1
                return cached
            self.counters.misses += 1
            table, version = self._table, self._version
        result = np.ones(table.n_rows, dtype=bool)
        for predicate in query.predicates:
            mask = self.predicate_mask(predicate)
            if mask.shape != result.shape:  # advance raced us
                mask = np.asarray(predicate.mask(table), dtype=bool)
            np.logical_and(result, mask, out=result)
        result.flags.writeable = False
        with self._lock:
            self._put_if_current(
                self._query_masks, query, result, self._mask_cap, version
            )
        return result

    # ------------------------------------------------------------------ #
    # Map statistics
    # ------------------------------------------------------------------ #

    def assignment(self, data_map: DataMap) -> np.ndarray:
        """Region index per row (Definition 2), cached per map.

        Semantics match :meth:`DataMap.assign`: first matching region
        wins, uncovered rows get :data:`~repro.core.datamap.ESCAPE`.
        """
        with self._lock:
            self._use("assignment")
            cached = self._assignments.get(data_map.regions)
            if cached is not None:
                self.counters.hits += 1
                return cached
            self.counters.misses += 1
            table, version = self._table, self._version

        def mask_fn(query: ConjunctiveQuery) -> np.ndarray:
            mask = self.query_mask(query)
            if mask.shape != (table.n_rows,):  # advance raced us
                mask = self._query_mask_on(table, query)
            return mask

        assignment = assign_regions(data_map.regions, table.n_rows, mask_fn)
        assignment.flags.writeable = False
        with self._lock:
            self._put_if_current(
                self._assignments, data_map.regions, assignment,
                self._row_array_cap, version,
            )
        return assignment

    def covers(self, data_map: DataMap) -> np.ndarray:
        """Cover of each region (matches :meth:`DataMap.covers`), cached."""
        with self._lock:
            self._use("covers")
            cached = self._covers.get(data_map.regions)
            if cached is not None:
                self.counters.hits += 1
                return cached
            self.counters.misses += 1
            version = self._version
        result = covers_from_assignment(
            self.assignment(data_map), data_map.n_regions
        )
        result.flags.writeable = False
        with self._lock:
            self._put_if_current(
                self._covers, data_map.regions, result, _MAX_SMALL_ENTRIES,
                version,
            )
        return result

    def joint(
        self,
        map_a: DataMap,
        map_b: DataMap,
        row_indices: np.ndarray | None = None,
        scope_key: object = None,
    ) -> np.ndarray:
        """Joint distribution of two maps' underlying variables, cached.

        ``row_indices`` restricts the estimate to a subset of rows (the
        clustering stage scores dependency over the tuples the user
        query describes); ``scope_key`` names that subset in the cache
        key.  A restricted estimate without a ``scope_key`` is computed
        but never cached — caching it under the full-table key would
        poison later unrestricted lookups.  Assignment vectors are
        computed once over the *full* table and sliced — region
        membership is row-wise, so slicing commutes with selection.
        """
        with self._lock:
            self._use("joint")
            version = self._version
        assign_a = self.assignment(map_a)
        assign_b = self.assignment(map_b)
        if row_indices is not None:
            assign_a = assign_a[row_indices]
            assign_b = assign_b[row_indices]
        return self._joint_from(
            map_a, map_b, assign_a, assign_b,
            scope_key, cacheable=row_indices is None or scope_key is not None,
            version=version,
        )

    def _joint_from(
        self,
        map_a: DataMap,
        map_b: DataMap,
        assign_a: np.ndarray,
        assign_b: np.ndarray,
        scope_key: object,
        cacheable: bool,
        version: int,
    ) -> np.ndarray:
        """Cache-aware joint distribution from prepared assignments."""
        if cacheable:
            key = (map_a.regions, map_b.regions, scope_key)
            with self._lock:
                cached = self._joints.get(key)
                if cached is not None:
                    self.counters.hits += 1
                    return cached
                transposed = self._joints.get(
                    (map_b.regions, map_a.regions, scope_key)
                )
                if transposed is not None:
                    self.counters.hits += 1
                    return transposed.T
                self.counters.misses += 1
        else:
            with self._lock:
                self.counters.misses += 1
        joint = joint_distribution_from_assignments(
            assign_a, assign_b, map_a.n_regions, map_b.n_regions
        )
        if cacheable:
            joint.flags.writeable = False
            with self._lock:
                self._put_if_current(
                    self._joints, key, joint, _MAX_SMALL_ENTRIES, version
                )
        return joint

    def distance_matrix(
        self,
        maps: tuple[DataMap, ...],
        row_indices: np.ndarray | None = None,
        scope_key: object = None,
    ):
        """Pairwise VI / Rajski distances with memoized joints.

        Equivalent to :func:`repro.core.distance.distance_matrix` over
        ``table[row_indices]``, but every joint distribution is cached
        so repeated queries on the same table skip the quadratic
        recomputation.
        """
        from repro.core.distance import MapDistanceMatrix

        if not maps:
            raise MapError("need at least one map")
        with self._lock:
            self._use("distance_matrix")
            version = self._version
        n = len(maps)
        # Slice each assignment once up front — per-pair slicing would
        # copy every assignment O(n) times.
        if row_indices is None:
            assignments = [self.assignment(m) for m in maps]
        else:
            assignments = [self.assignment(m)[row_indices] for m in maps]
        cacheable = row_indices is None or scope_key is not None
        raw = np.zeros((n, n), dtype=np.float64)
        scaled = np.zeros((n, n), dtype=np.float64)
        for i in range(n):
            for j in range(i + 1, n):
                joint = self._joint_from(
                    maps[i], maps[j], assignments[i], assignments[j],
                    scope_key, cacheable, version,
                )
                raw[i, j] = raw[j, i] = variation_of_information(joint)
                scaled[i, j] = scaled[j, i] = rajski_distance(joint)
        return MapDistanceMatrix(maps=maps, distances=raw, normalized=scaled)

    # ------------------------------------------------------------------ #
    # Cuts and column statistics
    # ------------------------------------------------------------------ #

    def cut_map(
        self, query: ConjunctiveQuery, attribute: str, config: AtlasConfig
    ) -> DataMap:
        """``CUT_attribute(query)`` with cut points memoized per scope.

        The cache key covers the config fields the built-in cuts
        depend on plus the *resolved* strategy callables, so one
        backend can serve contexts with different configurations and a
        strategy re-registered with ``overwrite=True`` is never served
        stale results.  (A custom strategy reading further config
        fields should be registered under a name that encodes them.)
        """
        from repro.engine.registry import CATEGORICAL_ORDERS, NUMERIC_CUTS

        key = (
            order_sensitive_key(query),
            attribute,
            config.n_splits,
            NUMERIC_CUTS.get(config.numeric_strategy),
            CATEGORICAL_ORDERS.get(config.categorical_strategy),
            config.sketch_epsilon,
        )
        with self._lock:
            self._use("cut_map")
            cached = self._cuts.get(key)
            if cached is not None:
                self.counters.hits += 1
                return cached
            self.counters.misses += 1
            table, version = self._table, self._version
        from repro.core.cut import cut

        region_mask = self.query_mask(query)
        if region_mask.shape != (table.n_rows,):  # advance raced us
            region_mask = self._query_mask_on(table, query)
        result = cut(table, query, attribute, config, region_mask=region_mask)
        with self._lock:
            self._put_if_current(
                self._cuts, key, result, _MAX_SMALL_ENTRIES, version
            )
        return result

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict:
        """Usage/cache counters of this backend (JSON-ready)."""
        with self._lock:
            return {
                "kind": self.kind,
                "rows": self.n_rows,
                "version": self._version,
                "usage": dict(self.usage),
                "hits": self.counters.hits,
                "misses": self.counters.misses,
            }


#: Backward-compatible alias: the memoized statistics block introduced
#: by the engine refactor is exactly the exact backend.
TableStats = ExactBackend


class SketchBackend:
    """Approximate statistics from a bounded reservoir plus sketches.

    The backend materializes a uniform reservoir of at most
    ``fidelity.budget_rows`` rows (the first entries of a deterministic
    per-``(seed, table)`` permutation, so budgets nest) and answers

    * ``query_mask`` / ``assignment`` / ``covers`` / ``joint`` /
      ``distance_matrix`` — measured over the reservoir rows through an
      inner :class:`ExactBackend`, so every estimate is bounded by the
      budget regardless of table size;
    * ``cut_map`` on the *root scope* (no predicates) — from memoized
      one-pass summaries: per-attribute Greenwald–Khanna quantile
      sketches (``fidelity.epsilon`` rank error, measured over the
      reservoir — sampling error comes on top) for equi-depth numeric
      cut points, Misra–Gries heavy hitters for categorical frequency
      orderings — built once per attribute and reused by every query
      and split count;
    * ``cut_map`` on restricted scopes — over the reservoir rows with
      the configured strategy (cost bounded by the budget).

    The produced :class:`DataMap` shapes are identical to the exact
    backend's, so ranked answers are comparable across fidelities (the
    E18 agreement measurement relies on this).
    """

    kind = "sketch"

    def __init__(
        self,
        table: Table,
        fidelity: Fidelity,
        rng: np.random.Generator | int | None = None,
        counters: CacheCounters | None = None,
        lock: threading.Lock | None = None,
        sample: Table | None = None,
        kernels: str = "auto",
    ):
        if not fidelity.is_sketch:
            raise MapError(
                f"SketchBackend needs a sketch fidelity, got {fidelity.spec()!r}"
            )
        self._table = table
        self._fidelity = fidelity
        # Resolved once so the snapshot can state which path ran; a bad
        # spec fails here, at construction, not mid-scan.
        self._kernels = resolve_kernels(kernels)
        self._kernel_timings = KernelTimings()  # guarded-by: _lock
        if sample is not None:
            # A prebuilt reservoir (the sharded merge of
            # :mod:`repro.engine.parallel` hands one over); the caller
            # vouches it is a uniform ``budget_rows`` sample of
            # ``table`` at ``table.version``.
            pass
        elif fidelity.budget_rows >= table.n_rows:
            sample = table  # the budget covers everything; nothing to copy
        else:
            generator = (
                rng if isinstance(rng, np.random.Generator)
                else np.random.default_rng(rng)
            )
            rows = np.sort(
                generator.permutation(table.n_rows)[: fidelity.budget_rows]
            )
            sample = table.take(
                rows, name=f"{table.name}_sketch{fidelity.budget_rows}"
            )
        self._inner = ExactBackend(sample, counters=counters, lock=lock)
        self._lock = self._inner._lock
        self.counters = self._inner.counters
        self.usage = self._inner.usage
        self._quantile_sketches: dict[str, object] = {}  # guarded-by: _lock
        self._frequency_sketches: dict[str, object] = {}  # guarded-by: _lock
        self._token_sketches: dict[str, object] = {}  # guarded-by: _lock
        self._root_cuts: dict[tuple, DataMap] = {}  # guarded-by: _lock

    @property
    def table(self) -> Table:
        """The (full) table the statistics approximate."""
        return self._table

    @property
    def effective_table(self) -> Table:
        """The reservoir rows every estimate is measured on."""
        return self._inner.table

    @property
    def n_rows(self) -> int:
        """Rows backing every estimate this backend hands out."""
        return self._inner.table.n_rows

    @property
    def fidelity(self) -> Fidelity:
        """The budget this backend answers under."""
        return self._fidelity

    @property
    def version(self) -> int:
        """Streaming version of the table being approximated."""
        return self._inner.version

    # ------------------------------------------------------------------ #
    # Streaming maintenance
    # ------------------------------------------------------------------ #

    def advance(
        self,
        new_table: Table,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        """Incrementally maintain the backend onto an appended version.

        Instead of rebuilding from scratch (a full-table permutation
        plus one-pass sketch builds), maintenance is proportional to the
        *delta*:

        * the reservoir is **topped up** with the classic uniform-merge
          rule — the number of survivors from the old reservoir follows
          a hypergeometric law weighted by old-rows vs delta-rows, the
          rest is drawn uniformly from the delta, so the result stays a
          uniform sample of the union (the
          :meth:`~repro.sketch.reservoir.ReservoirSampler.merge`
          argument, applied to table rows);
        * every already-built per-attribute GK / Misra–Gries summary is
          **merged** with a sketch built from a *rate-matched* uniform
          subsample of the delta (each delta row kept with the
          probability the existing summary's rows were kept, i.e.
          ``reservoir rows / table rows``), so old and new rows stay
          equally weighted — the merged summary approximates the same
          distribution a rebuild would, even when the appended rows
          drift.  The maintained rate never falls below a fresh
          build's (the base table only grows), so the summaries always
          reflect at least as many rows per capita as a rebuild.

        Sketches not built yet are unaffected; they build lazily from
        the new reservoir.  Root-cut memos are version-stale and drop
        in the same critical section that bumps the version, so a
        reader can never pair a new version with pre-append cut points.
        """
        old_table = self._table
        if new_table.version <= self.version:
            raise MapError(
                f"cannot advance from version {self.version} to "
                f"{new_table.version}; versions must increase"
            )
        if new_table.n_rows < old_table.n_rows:
            raise MapError(
                "streaming tables are append-only: cannot advance from "
                f"{old_table.n_rows} to {new_table.n_rows} rows"
            )
        generator = (
            rng if isinstance(rng, np.random.Generator)
            else np.random.default_rng(rng)
        )
        delta_n = new_table.n_rows - old_table.n_rows
        delta = new_table.take(
            np.arange(old_table.n_rows, new_table.n_rows),
            name=f"{new_table.name}_delta{new_table.version}",
        )
        sample = self._topped_up_reservoir(new_table, delta, generator)
        quantiles, frequencies = self._merged_sketches(
            delta, delta_n, generator
        )
        # One critical section for the whole transition — version bump,
        # memo invalidation, sketch swap — so a concurrent reader can
        # never observe the new version with pre-append state (and a
        # failure above leaves the backend intact).
        with self._lock:
            self._inner._advance_state(sample)
            self._table = new_table
            self._quantile_sketches = quantiles
            self._frequency_sketches = frequencies
            # Token summaries rebuild lazily from the topped-up
            # reservoir — they feed suggestions and persisted warm
            # state, not ranked answers, so a rebuild is cheaper than
            # a weighted merge and never observably different.
            self._token_sketches = {}
            self._root_cuts.clear()

    def _topped_up_reservoir(
        self, new_table: Table, delta: Table, rng: np.random.Generator
    ) -> Table:
        """A uniform ``budget_rows`` sample of the appended table,
        reusing the current reservoir rows instead of re-permuting."""
        budget = self._fidelity.budget_rows
        if budget >= new_table.n_rows:
            return new_table  # the budget covers everything
        old_sample = self._inner.table
        delta_n = delta.n_rows
        from_old = int(
            rng.hypergeometric(self._table.n_rows, delta_n, budget)
        ) if delta_n else budget
        # Clamp to what each side can actually supply.
        from_old = min(from_old, old_sample.n_rows)
        from_old = max(from_old, budget - delta_n)
        kept = old_sample.take(
            np.sort(rng.choice(old_sample.n_rows, size=from_old, replace=False))
        )
        fresh = delta.take(
            np.sort(rng.choice(delta_n, size=budget - from_old, replace=False))
        )
        sample = Table(
            [
                kept.column(column_name).concat(fresh.column(column_name))
                for column_name in kept.column_names
            ],
            name=f"{new_table.name}_sketch{budget}",
        )
        # The reservoir snapshots the appended table; the inner exact
        # block's advance validation keys on that version.
        sample._version = new_table.version
        return sample

    def _delta_sketch_rate(self) -> float:
        """Fraction of delta rows a sketch merge observes (caller holds
        the lock).

        Reservoir-built summaries observed ``reservoir / table`` of the
        existing rows, so the delta is thinned to the same rate.  The
        sharded backend (:mod:`repro.engine.parallel`) overrides this
        with ``1.0``: its summaries are full scans, so every appended
        row must be observed too.
        """
        return self._inner.table.n_rows / max(1, self._table.n_rows)

    def _merged_sketches(
        self, delta: Table, delta_n: int, rng: np.random.Generator
    ) -> tuple[dict[str, object], dict[str, object]]:
        """Already-built summaries, each merged with a delta-built one.

        The delta is subsampled at the rate the existing summaries'
        rows were kept (:meth:`_delta_sketch_rate`) before sketching,
        so every observed row — old or new — carries the same weight in
        the merged summary.  Without this, a summary of 20k reservoir
        rows standing in for 1M would be merged with raw delta counts,
        over-weighting appends by ``table/budget`` and skewing cut
        points under distribution drift.
        """
        with self._lock:
            quantiles = dict(self._quantile_sketches)
            frequencies = dict(self._frequency_sketches)
            rate = self._delta_sketch_rate()
        if not delta_n:
            return quantiles, frequencies
        if rate >= 1.0:
            kept = np.arange(delta_n)
        else:
            kept = np.flatnonzero(rng.random(delta_n) < rate)
        timings = KernelTimings()
        for attribute, sketch in quantiles.items():
            delta_sketch = quantile_summary(
                delta.numeric(attribute).data[kept],
                sketch.epsilon,
                kernels=self._kernels,
                timings=timings,
            )
            quantiles[attribute] = sketch.merge(delta_sketch)
        for attribute, sketch in frequencies.items():
            column = delta.categorical(attribute)
            delta_sketch = frequency_summary_from_codes(
                column.codes[kept],
                list(column.categories),
                sketch.capacity,
                kernels=self._kernels,
                timings=timings,
            )
            frequencies[attribute] = sketch.merge(delta_sketch)
        with self._lock:
            self._kernel_timings.merge(timings)
        return quantiles, frequencies

    # ------------------------------------------------------------------ #
    # Delegated statistics (bounded by the reservoir)
    # ------------------------------------------------------------------ #

    def predicate_mask(self, predicate) -> np.ndarray:
        """Predicate row mask over the reservoir rows."""
        return self._inner.predicate_mask(predicate)

    def query_mask(self, query: ConjunctiveQuery) -> np.ndarray:
        """Query row mask over the reservoir rows."""
        return self._inner.query_mask(query)

    def assignment(self, data_map: DataMap) -> np.ndarray:
        """Region index per reservoir row."""
        return self._inner.assignment(data_map)

    def covers(self, data_map: DataMap) -> np.ndarray:
        """Estimated region covers (reservoir counts)."""
        return self._inner.covers(data_map)

    def joint(
        self,
        map_a: DataMap,
        map_b: DataMap,
        row_indices: np.ndarray | None = None,
        scope_key: object = None,
    ) -> np.ndarray:
        """Estimated joint distribution over the reservoir rows."""
        return self._inner.joint(map_a, map_b, row_indices, scope_key)

    def distance_matrix(
        self,
        maps: tuple[DataMap, ...],
        row_indices: np.ndarray | None = None,
        scope_key: object = None,
    ):
        """Estimated pairwise VI / Rajski distances over the reservoir."""
        return self._inner.distance_matrix(maps, row_indices, scope_key)

    # ------------------------------------------------------------------ #
    # Sketch-answered cuts
    # ------------------------------------------------------------------ #

    def cut_map(
        self, query: ConjunctiveQuery, attribute: str, config: AtlasConfig
    ) -> DataMap:
        """``CUT_attribute(query)`` answered at sketch fidelity.

        Root-scope requests (no predicates — the first query of every
        session, and the most repeated one) come from the memoized
        per-attribute sketches; restricted scopes are cut over the
        reservoir rows with the configured strategy.  ``fidelity.epsilon``
        is *the* rank-error knob at sketch fidelity: it also overrides
        ``config.sketch_epsilon`` for delegated sketch-strategy cuts, so
        the same attribute is cut at one precision at every scope depth.
        """
        from repro.engine.registry import strategy_key

        if not query.predicates:
            column = self._inner.table.column(attribute)
            if isinstance(column, NumericColumn) and strategy_key(
                config.numeric_strategy
            ) in ("median", "sketch"):
                # Equi-depth requests answered by the GK summary; other
                # strategies (equiwidth, twomeans, custom) keep their
                # semantics over the reservoir rows.
                return self._root_numeric_cut(query, attribute, config)
            if isinstance(column, CategoricalColumn):
                return self._root_categorical_cut(query, attribute, config)
        if config.sketch_epsilon != self._fidelity.epsilon:
            config = config.replace(sketch_epsilon=self._fidelity.epsilon)
        return self._inner.cut_map(query, attribute, config)

    def quantile_sketch(self, attribute: str):
        """The memoized per-attribute GK summary (built on first use)."""
        with self._lock:
            cached = self._quantile_sketches.get(attribute)
            column = self._inner.table.numeric(attribute)
            version = self._inner.version
        if cached is not None:
            return cached
        timings = KernelTimings()
        sketch = quantile_summary(
            column.data,
            self._fidelity.epsilon,
            kernels=self._kernels,
            timings=timings,
        )
        with self._lock:
            self._kernel_timings.merge(timings)
            if version != self._inner.version:
                # An advance raced the build: the summary describes the
                # pre-append reservoir.  Serve it once, never cache it.
                return sketch
            return self._quantile_sketches.setdefault(attribute, sketch)

    def frequency_sketch(self, attribute: str):
        """The memoized per-attribute Misra–Gries summary."""
        with self._lock:
            cached = self._frequency_sketches.get(attribute)
            column = self._inner.table.column(attribute)
            version = self._inner.version
        if cached is not None:
            return cached
        if not isinstance(column, CategoricalColumn):
            raise MapError(
                f"column {attribute!r} is {column.kind}, expected categorical"
            )
        categories = list(column.categories)
        timings = KernelTimings()
        sketch = frequency_summary_from_codes(
            column.codes,
            categories,
            max(1, min(_MG_CAPACITY, len(categories))),
            kernels=self._kernels,
            timings=timings,
        )
        with self._lock:
            self._kernel_timings.merge(timings)
            if version != self._inner.version:
                return sketch  # stale build (see quantile_sketch)
            return self._frequency_sketches.setdefault(attribute, sketch)

    def token_sketch(self, attribute: str):
        """The memoized per-attribute token-frequency summary.

        A Misra–Gries sketch over the *tokens* of the reservoir's
        labels (:func:`repro.query.predicate.tokenize_text`), weighted
        by how many reservoir rows carry each label — the text analogue
        of :meth:`frequency_sketch`.  Heavy-hitter tokens seed MATCH
        suggestions (the REPL's ``tokens`` command) and travel in
        persisted warm-start summaries.
        """
        from repro.query.predicate import tokenize_text
        from repro.sketch.frequency import MisraGriesSketch

        with self._lock:
            cached = self._token_sketches.get(attribute)
            column = self._inner.table.column(attribute)
            version = self._inner.version
        if cached is not None:
            return cached
        if not isinstance(column, CategoricalColumn):
            raise MapError(
                f"column {attribute!r} is {column.kind}, expected categorical"
            )
        label_counts = np.bincount(
            column.codes[column.codes >= 0],
            minlength=len(column.categories),
        )
        token_counts: dict[str, int] = {}
        for code, label in enumerate(column.categories):
            weight = int(label_counts[code])
            if not weight:
                continue
            for token in tokenize_text(label):
                token_counts[token] = token_counts.get(token, 0) + weight
        sketch = MisraGriesSketch(
            max(1, min(_MG_CAPACITY, max(1, len(token_counts))))
        )
        sketch.extend_counts(token_counts)
        with self._lock:
            if version != self._inner.version:
                return sketch  # stale build (see quantile_sketch)
            return self._token_sketches.setdefault(attribute, sketch)

    def export_state(self) -> dict:
        """The built state a warm-start summary persists (one lock trip).

        Returns the reservoir table plus every sketch built *so far*,
        keyed the way :mod:`repro.store.warm` expects — a restored
        backend re-seeded with exactly this state answers like this one
        did, and sketches missing from the export simply rebuild lazily
        from the (identical) restored reservoir.
        """
        with self._lock:
            return {
                "sample": self._inner.table,
                "quantiles": dict(self._quantile_sketches),
                "frequencies": dict(self._frequency_sketches),
                "tokens": dict(self._token_sketches),
                "version": self._inner.version,
                "full_scan": self._delta_sketch_rate() >= 1.0,
            }

    def _root_cut_cached(self, key: tuple) -> tuple[DataMap | None, int]:
        """(cached map or None, current version) in one lock trip."""
        with self._lock:
            self._use("cut_map")
            cached = self._root_cuts.get(key)
            if cached is not None:
                self.counters.hits += 1
            else:
                self.counters.misses += 1
            return cached, self._inner.version

    def _put_root_cut(self, key: tuple, result: DataMap, version: int) -> None:
        """Version-stamped root-cut insert (drops stale racing writes)."""
        with self._lock:
            if version == self._inner.version:
                _bounded_put(self._root_cuts, key, result, _MAX_SMALL_ENTRIES)

    def _root_numeric_cut(
        self, query: ConjunctiveQuery, attribute: str, config: AtlasConfig
    ) -> DataMap:
        """Equi-depth root cut from the per-attribute quantile sketch."""
        from repro.core.cut import _clean_cut_points, _numeric_subpredicates

        key = ("num", attribute, config.n_splits, self._fidelity.epsilon)
        cached, version = self._root_cut_cached(key)
        if cached is not None:
            return cached
        trivial = DataMap([query], attributes=[attribute], label=f"cut:{attribute}")
        sketch = self.quantile_sketch(attribute)
        result = trivial
        if sketch.count >= 2:
            low, high = sketch.query(0.0), sketch.query(1.0)
            if low < high:
                points = [
                    sketch.query(j / config.n_splits)
                    for j in range(1, config.n_splits)
                ]
                points = _clean_cut_points(points, None, low, high)
                if points:
                    predicates = _numeric_subpredicates(None, attribute, points)
                    result = DataMap(
                        [query.with_predicate(p) for p in predicates],
                        attributes=[attribute],
                        label=f"cut:{attribute}",
                    )
        self._put_root_cut(key, result, version)
        return result

    def _root_categorical_cut(
        self, query: ConjunctiveQuery, attribute: str, config: AtlasConfig
    ) -> DataMap:
        """Root cut with label order/mass from the heavy-hitters sketch."""
        from repro.core.cut import balanced_label_groups, ordered_labels
        from repro.engine.registry import CATEGORICAL_ORDERS
        from repro.query.predicate import SetPredicate

        order = CATEGORICAL_ORDERS.get(config.categorical_strategy)
        key = ("cat", attribute, config.n_splits, order)
        cached, version = self._root_cut_cached(key)
        if cached is not None:
            return cached
        trivial = DataMap([query], attributes=[attribute], label=f"cut:{attribute}")
        column = self._inner.table.column(attribute)
        admitted = list(column.categories)
        result = trivial
        if len(admitted) >= 2:
            estimates = self.frequency_sketch(attribute).heavy_hitters()
            counts = {label: estimates.get(label, 0) for label in admitted}
            ordered = ordered_labels(config.categorical_strategy, admitted, counts)
            groups = balanced_label_groups(ordered, counts, config.n_splits)
            if len(groups) >= 2:
                result = DataMap(
                    [
                        query.with_predicate(SetPredicate(attribute, group))
                        for group in groups
                    ],
                    attributes=[attribute],
                    label=f"cut:{attribute}",
                )
        self._put_root_cut(key, result, version)
        return result

    def _use(self, name: str) -> None:
        """Bump the usage counter (caller holds the lock)."""
        self._inner._use(name)

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict:
        """Usage/cache counters plus sketch provenance (JSON-ready)."""
        with self._lock:
            return {
                "kind": self.kind,
                "rows": self.n_rows,
                "version": self.version,
                "table_rows": self._table.n_rows,
                "budget_rows": self._fidelity.budget_rows,
                "epsilon": self._fidelity.epsilon,
                "quantile_sketches": len(self._quantile_sketches),
                "frequency_sketches": len(self._frequency_sketches),
                "token_sketches": len(self._token_sketches),
                "kernels": self._kernels,
                "kernel_nanos": self._kernel_timings.as_dict(),
                "usage": dict(self.usage),
                "hits": self.counters.hits,
                "misses": self.counters.misses,
            }


def make_backend(
    table: Table,
    fidelity: Fidelity,
    rng: np.random.Generator | int | None = None,
    counters: CacheCounters | None = None,
    lock: threading.Lock | None = None,
    kernels: str = "auto",
) -> "ExactBackend | SketchBackend":
    """Construct the backend a fidelity setting asks for."""
    if fidelity.is_sketch:
        return SketchBackend(
            table, fidelity, rng=rng, counters=counters, lock=lock,
            kernels=kernels,
        )
    return ExactBackend(table, counters=counters, lock=lock)
