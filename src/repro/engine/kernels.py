"""Columnar scan kernels: batch sketch builds over contiguous buffers.

Every execution venue — the serial backend, the fork-pool workers of
:mod:`repro.engine.parallel`, and the cluster shard servers of
:mod:`repro.cluster` — bottoms out in one scan core
(:func:`repro.engine.parallel.scan_shard_values`), and until this
module that core fed the GK quantile and Misra–Gries frequency
sketches one value at a time: ~2 interpreter round-trips per row, an
``O(space)`` ``list.insert`` inside each GK update.  This module
replaces those per-row loops with three columnar kernels:

* :func:`sorted_clean_values` — **fused mask + extract + sort**: one
  ``np.sort`` pass yields both the missing-value mask (NaN orders
  last) and the ascending clean values, with no intermediate per-row
  tuple traffic;
* :func:`quantile_summary` — **batch GK build**: the sorted column
  becomes the canonical ε-valid summary in one
  :meth:`~repro.sketch.quantile.GKQuantileSketch.from_sorted` pass;
* :func:`frequency_summary_from_codes` (and its wire-path twin
  :func:`frequency_summary_from_labels`) — **batch Misra–Gries**:
  per-block ``np.bincount`` category totals folded into the counter
  state through
  :meth:`~repro.sketch.frequency.MisraGriesSketch.extend_counts`,
  instead of per-item decrement rounds.

Kernel selection is the :attr:`repro.core.config.AtlasConfig.kernels`
knob (``"auto"`` / ``"numpy"`` / ``"python"``): the pure-Python path
is the differential-test reference and the no-numpy fallback, and both
implementations produce **bit-identical sketch contents** — the
canonical builds are defined on the value multiset, not on the
implementation — so the knob is pure wall-clock, exactly like the
worker count (DESIGN decisions 6/9).  The hypothesis differential
suite pins the two paths together.

Contract: this module is **RNG-free** — kernels are deterministic
functions of their input buffers; every random draw of a scan (the
row-sample permutation) stays in the caller on its sanctioned
``tag_rng`` stream.  atlas-lint rule R1 enforces this mechanically
(the module may not even construct a seeded generator).

Timing: every kernel invocation is metered in nanoseconds
(``perf_counter_ns`` — a monotonic duration clock, legal under R1)
into a :class:`KernelTimings` block that rides the shard-statistics
provenance into ``backend_snapshot`` and the service ``/metrics``.
"""

from __future__ import annotations

import math
import time
from collections import Counter
from collections.abc import Iterable, Sequence
from typing import cast

from repro.errors import ConfigError
from repro.sketch.frequency import MisraGriesSketch
from repro.sketch.quantile import GKQuantileSketch

try:  # numpy is the repo's normal substrate, but the kernels keep an
    # explicit import gate so ``kernels="auto"`` states a checkable
    # fact and the pure-Python path stays a real fallback.
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the repo
    _np = None  # type: ignore[assignment]

#: The accepted :attr:`AtlasConfig.kernels` spellings.
KERNEL_MODES = ("auto", "numpy", "python")

#: Kernel names, as they appear in timing blocks and ``/metrics``.
SORT_CLEAN = "sort_clean"
GK_BUILD = "gk_build"
MG_BUILD = "mg_build"


def resolve_kernels(spec: str) -> str:
    """Resolve a kernel spec to the concrete implementation name.

    ``"auto"`` picks ``"numpy"`` when numpy imported, else
    ``"python"``; explicit requests are honored verbatim (asking for
    ``"numpy"`` without numpy installed is a configuration error, not
    a silent downgrade).
    """
    if spec not in KERNEL_MODES:
        raise ConfigError(
            f"kernels must be one of {', '.join(KERNEL_MODES)}, got {spec!r}"
        )
    if spec == "auto":
        return "numpy" if _np is not None else "python"
    if spec == "numpy" and _np is None:  # pragma: no cover - numpy present
        raise ConfigError("kernels='numpy' requested but numpy is unavailable")
    return spec


class KernelTimings:
    """Per-kernel nanosecond meters for one scan (or one backend).

    Plain additive counters — ``nanos[kernel] / calls[kernel]`` is the
    mean kernel cost; :meth:`as_dict` is the JSON-ready form that the
    shard-statistics provenance and ``backend_snapshot`` carry into
    the service ``/metrics``.  Not thread-safe on its own: a scan owns
    its block, and backends fold under their own lock.
    """

    __slots__ = ("nanos", "calls")

    def __init__(self) -> None:
        self.nanos: dict[str, int] = {}
        self.calls: dict[str, int] = {}

    def add(self, kernel: str, nanos: int) -> None:
        """Record one kernel invocation of ``nanos`` duration."""
        self.nanos[kernel] = self.nanos.get(kernel, 0) + int(nanos)
        self.calls[kernel] = self.calls.get(kernel, 0) + 1

    def merge(self, other: "dict[str, int] | KernelTimings") -> None:
        """Fold another timing block (or its ``nanos`` dict) into this."""
        if isinstance(other, KernelTimings):
            for kernel, nanos in other.nanos.items():
                self.nanos[kernel] = self.nanos.get(kernel, 0) + nanos
            for kernel, calls in other.calls.items():
                self.calls[kernel] = self.calls.get(kernel, 0) + calls
            return
        for kernel, nanos in other.items():
            self.nanos[kernel] = self.nanos.get(kernel, 0) + int(nanos)
            self.calls[kernel] = self.calls.get(kernel, 0) + 1

    def as_dict(self) -> dict[str, int]:
        """Kernel → total nanoseconds (JSON-ready)."""
        return dict(self.nanos)


# ---------------------------------------------------------------------- #
# Kernels
# ---------------------------------------------------------------------- #


def sorted_clean_values(
    values: "Sequence[float]",
    kernels: str = "auto",
    timings: KernelTimings | None = None,
) -> "Sequence[float]":
    """Fused missing-mask + value extraction + sort over one column.

    Returns the column's non-NaN values in ascending order (a numpy
    array or a list — both are the indexable sequence
    :meth:`GKQuantileSketch.from_sorted` documents).  The numpy path
    exploits IEEE ordering — ``np.sort`` places NaN last — so a single
    sort produces both the "selected" values (the clean prefix) and
    their order; the NaN count (one vectorized reduction) is the
    missing-value mask folded to the only number the scan needs.  The
    python path is the order-for-order equivalent comprehension.
    """
    mode = resolve_kernels(kernels)
    started = time.perf_counter_ns()
    clean: "Sequence[float]"
    if mode == "numpy":
        data = _np.asarray(values, dtype=_np.float64)
        ordered = _np.sort(data)
        n_missing = int(_np.count_nonzero(_np.isnan(data)))
        sliced = ordered[: data.size - n_missing] if n_missing else ordered
        clean = cast("Sequence[float]", sliced)
    else:
        clean = sorted(
            value for value in (float(v) for v in values)
            if not math.isnan(value)
        )
    if timings is not None:
        timings.add(SORT_CLEAN, time.perf_counter_ns() - started)
    return clean


def quantile_summary(
    values: "Sequence[float]",
    epsilon: float,
    kernels: str = "auto",
    timings: KernelTimings | None = None,
) -> GKQuantileSketch:
    """Batch-build the canonical GK summary of one numeric column.

    Sort once (:func:`sorted_clean_values`, NaN dropped as missing),
    then one :meth:`GKQuantileSketch.from_sorted` pass.  Both kernel
    modes produce bit-identical tuples: the canonical build depends
    only on the sorted multiset.
    """
    ordered = sorted_clean_values(values, kernels, timings)
    started = time.perf_counter_ns()
    sketch = GKQuantileSketch.from_sorted(ordered, epsilon=epsilon)
    if timings is not None:
        timings.add(GK_BUILD, time.perf_counter_ns() - started)
    return sketch


def frequency_summary_from_codes(
    codes: "Iterable[int]",
    categories: Sequence[str],
    capacity: int,
    kernels: str = "auto",
    timings: KernelTimings | None = None,
) -> MisraGriesSketch:
    """Batch-build a Misra–Gries summary from dictionary-encoded codes.

    ``codes`` is the raw ``int32`` buffer of a
    :class:`~repro.dataset.column.CategoricalColumn` slice (``-1`` =
    missing).  The numpy path histograms the block in one
    ``np.bincount`` and folds the per-category totals into the counter
    state; no label is ever decoded for rows that only need counting.
    The python path counts decoded labels — identical totals, so
    identical counters.
    """
    mode = resolve_kernels(kernels)
    started = time.perf_counter_ns()
    sketch = MisraGriesSketch(capacity=capacity)
    if mode == "numpy":
        data = _np.asarray(codes)
        if data.dtype.kind not in "iu":
            # An empty Python list arrives as float64; bincount needs
            # an integer buffer.  Real code buffers are int32 already.
            data = data.astype(_np.int64)
        present = data[data >= 0]
        totals = _np.bincount(present, minlength=len(categories))
        counts = {
            categories[code]: int(total)
            for code, total in enumerate(totals.tolist())
            if total
        }
    else:
        counts = Counter(
            categories[code] for code in codes if code >= 0
        )
    sketch.extend_counts(counts)
    if timings is not None:
        timings.add(MG_BUILD, time.perf_counter_ns() - started)
    return sketch


def frequency_summary_from_labels(
    labels: Iterable[str],
    capacity: int,
    kernels: str = "auto",
    timings: KernelTimings | None = None,
) -> MisraGriesSketch:
    """Batch-build a Misra–Gries summary from decoded labels.

    The wire-path twin of :func:`frequency_summary_from_codes` (a
    cluster shard server owns labels, not codes): one C-speed
    ``Counter`` pass folded into the counter state.  Label counts are
    representation-independent, so a labels-built summary is
    content-identical to a codes-built one over the same rows — which
    is what keeps cluster scans bit-identical to local scans.
    """
    resolve_kernels(kernels)  # validate the spec; counting is shared
    started = time.perf_counter_ns()
    sketch = MisraGriesSketch(capacity=capacity)
    sketch.extend_counts(Counter(labels))
    if timings is not None:
        timings.add(MG_BUILD, time.perf_counter_ns() - started)
    return sketch
