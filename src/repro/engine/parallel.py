"""Sharded parallel exploration: multi-core statistics with mergeable
per-shard summaries.

The north star asks the system to run "as fast as the hardware allows",
yet until this module every statistics build — exact or sketch — ran on
a single core.  PR 3 made the sketch substrate *mergeable*
(:meth:`ReservoirSampler.merge`, :meth:`GKQuantileSketch.merge`,
:meth:`MisraGriesSketch.merge`) and PR 4 proved the merge rules under
streaming; this module cashes that in with the classic scan/merge split
of parallel analytical engines:

1. :class:`ShardedTable` partitions the table into contiguous
   **row-range shards** (machine-independent boundaries).
2. An executor — :class:`ParallelExecutor` (a ``multiprocessing`` fork
   pool) or the in-process :class:`SerialExecutor` fallback — builds
   per-shard statistics concurrently: a uniform row sample of the shard
   plus **full-scan** GK quantile / Misra–Gries frequency summaries
   over every shard row (higher fidelity than the reservoir-built
   summaries of the unsharded path, whose sampling error comes on top
   of the sketch error).
3. The per-shard results are folded **in shard order** with the PR-3
   merge rules — hypergeometric reservoir merging for the row samples,
   ``GKQuantileSketch.merge`` / ``MisraGriesSketch.merge`` for the
   summaries — into one :class:`ShardedSketchBackend` the existing
   pipeline consumes unchanged.

Determinism: every random draw comes from a generator derived exactly
like :meth:`ExecutionContext.child_rng` from ``(config.seed, tag)``,
with tags keyed by **shard index** (``"shard:3:<table>"``,
``"shard-merge:3:<table>"``).  Shard boundaries and merge order depend
only on ``(table, shards)``, never on the worker count — so serial,
2-worker, and 4-worker runs produce bit-identical answers, and the
worker count is a pure wall-clock knob (the E20 benchmark and the
determinism property tests assert this).

Streaming: appended rows land past the last shard boundary, so
:meth:`ShardedTable.advanced` routes them to the owning (last) shard
and :meth:`ShardedSketchBackend.advance` maintains the merged state
incrementally — the reservoir tops up hypergeometrically and delta
sketches merge at rate 1.0 (full-scan summaries must observe every
appended row).
"""

from __future__ import annotations

import dataclasses
import threading
import time
import zlib
from typing import Callable

import numpy as np

from repro.core.config import Fidelity, Parallelism
from repro.dataset.column import CategoricalColumn, NumericColumn
from repro.dataset.table import Table
from repro.engine.backends import (
    _MG_CAPACITY,
    CacheCounters,
    SketchBackend,
    table_fingerprint,
)
from repro.engine.kernels import (
    KernelTimings,
    frequency_summary_from_codes,
    frequency_summary_from_labels,
    quantile_summary,
    resolve_kernels,
)
from repro.errors import MapError


def tag_rng(seed: int, tag: str) -> np.random.Generator:
    """The deterministic generator for ``(seed, tag)``.

    Exactly :meth:`ExecutionContext.child_rng`'s derivation for string
    sources (``default_rng([seed, crc32(tag)])``), factored out so
    worker *processes* — which cannot call a bound method of the
    parent's context — draw the same streams the parent would.  A
    regression test pins the two implementations together.
    """
    return np.random.default_rng([seed, zlib.crc32(tag.encode("utf-8"))])


def fork_available() -> bool:
    """True when ``multiprocessing`` can *safely* fork on this platform.

    Fork is what makes sharding cheap: workers inherit the parent's
    table pages copy-on-write instead of pickling row data.  Windows
    has no fork at all, and macOS advertises one that is unsafe with
    system frameworks (Accelerate-backed numpy can abort in the child
    with ``objc_initializeAfterForkError``), so both fall back to
    :class:`SerialExecutor` — same answers, single core.

    Forking a *threaded* parent (the service's worker pool does) is
    the usual fork caveat: the children only touch the staged
    :class:`_ShardWork` snapshot, numpy slicing, and pure-Python
    sketch code — never the context lock — which is the same
    discipline joblib-style fork pools rely on.
    """
    import multiprocessing
    import sys

    if sys.platform == "darwin":
        return False
    return "fork" in multiprocessing.get_all_start_methods()


def new_shard_aggregate() -> dict:
    """An empty aggregate for folding backends' shard provenance."""
    return {
        "builds": 0,
        "shards": 0,
        "build_seconds": 0.0,
        "shard_seconds": [],
        #: Columnar-kernel nanoseconds summed across shard scans
        #: (:class:`repro.engine.kernels.KernelTimings`).
        "kernel_nanos": {},
        # Cluster provenance (zero unless a ClusterSketchBackend built):
        "cluster_builds": 0,
        "servers": 0,
        "shard_retries": 0,
    }


def merge_shard_info(target: dict, info: dict) -> dict:
    """Fold one ``parallel`` provenance block into an aggregate.

    ``info`` is either a backend's ``snapshot()["parallel"]`` (one
    build) or another aggregate; both
    :meth:`ExecutionContext.backend_snapshot` and the service
    ``/metrics`` merge go through here, so a field added to
    :meth:`ShardedSketchBackend.snapshot` propagates through every
    layer by editing one function.  Cluster keys default to zero so
    local-build blocks (which do not emit them) fold unchanged.
    """
    target["builds"] += info.get("builds", 1)
    target["shards"] += info["shards"]
    target["build_seconds"] += info["build_seconds"]
    target["shard_seconds"].extend(info["shard_seconds"])
    for kernel, nanos in info.get("kernel_nanos", {}).items():
        target["kernel_nanos"][kernel] = (
            target["kernel_nanos"].get(kernel, 0) + int(nanos)
        )
    target["cluster_builds"] += info.get(
        "cluster_builds", 1 if info.get("servers") else 0
    )
    target["servers"] = max(
        target["servers"], int(info.get("servers", 0))
    )
    target["shard_retries"] += int(info.get("shard_retries", 0))
    return target


# ---------------------------------------------------------------------- #
# Sharding
# ---------------------------------------------------------------------- #


class ShardedTable:
    """A table partitioned into contiguous row-range shards.

    Boundaries split the row count as evenly as possible (the first
    ``n_rows % n_shards`` shards get one extra row), depend only on
    ``(n_rows, n_shards)``, and never on the machine — they are part of
    the statistical recipe, since each shard seeds its own RNG stream.
    When ``n_shards`` exceeds the row count the trailing shards are
    simply **empty** (``low == high``): they scan to empty samples and
    empty sketches, both of which merge as identities, so the layout a
    config names is honored verbatim instead of being silently clamped
    — a ``shards=8`` config means the same RNG streams on a 5-row
    fixture as on a 1M-row table.
    """

    def __init__(self, table: Table, n_shards: int):
        if table.n_rows == 0:
            raise MapError("cannot shard an empty table")
        if n_shards < 1:
            raise MapError(f"n_shards must be >= 1, got {n_shards}")
        self._table = table
        k = int(n_shards)
        base, extra = divmod(table.n_rows, k)
        bounds: list[tuple[int, int]] = []
        low = 0
        for index in range(k):
            high = low + base + (1 if index < extra else 0)
            bounds.append((low, high))
            low = high
        self._bounds = tuple(bounds)

    @property
    def table(self) -> Table:
        """The table being sharded."""
        return self._table

    @property
    def n_shards(self) -> int:
        """Number of row-range shards."""
        return len(self._bounds)

    @property
    def bounds(self) -> tuple[tuple[int, int], ...]:
        """Half-open ``(low, high)`` row ranges, in shard order."""
        return self._bounds

    def shard(self, index: int) -> Table:
        """Materialize one shard as a table (diagnostics and tests;
        the workers read column slices instead of copying rows)."""
        low, high = self._bounds[index]
        return self._table.take(
            np.arange(low, high), name=f"{self._table.name}_shard{index}"
        )

    def owning_shard(self, row_index: int) -> int:
        """The shard whose row range contains ``row_index``.

        Rows at or past the current end belong to the last shard —
        that is where :meth:`advanced` routes appended rows.
        """
        if row_index < 0:
            raise MapError(f"row index must be >= 0, got {row_index}")
        for index, (low, high) in enumerate(self._bounds):
            if low <= row_index < high:
                return index
        return len(self._bounds) - 1

    def advanced(self, new_table: Table) -> "ShardedTable":
        """This sharding routed onto an appended version of the table.

        Appended rows live in ``[old_n_rows, new_n_rows)`` — past every
        boundary — so they extend the owning (last) shard's range;
        earlier shard boundaries are untouched, which is what keeps
        per-shard RNG streams and merge order stable across appends.
        """
        if new_table.n_rows < self._table.n_rows:
            raise MapError(
                "streaming tables are append-only: cannot advance a "
                f"sharding from {self._table.n_rows} to "
                f"{new_table.n_rows} rows"
            )
        out = ShardedTable.__new__(ShardedTable)
        out._table = new_table
        last_low = self._bounds[-1][0]
        out._bounds = self._bounds[:-1] + ((last_low, new_table.n_rows),)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ShardedTable {self._table.name!r} rows={self._table.n_rows} "
            f"shards={self.n_shards}>"
        )


# ---------------------------------------------------------------------- #
# Per-shard statistics (runs inside worker processes)
# ---------------------------------------------------------------------- #


@dataclasses.dataclass(frozen=True)
class ShardStatistics:
    """What one shard scan produces (cheap to pickle back to the parent).

    Sketches travel in their ``to_dict`` wire form — a few hundred
    tuples/counters — and the row sample as *global* row indices, so a
    worker never ships row data.
    """

    index: int
    n_rows: int
    #: Uniform sample of the shard's rows, as global row indices.
    sample: np.ndarray
    #: Attribute → :meth:`GKQuantileSketch.to_dict` payload.
    quantiles: dict[str, dict]
    #: Attribute → :meth:`MisraGriesSketch.to_dict` payload.
    frequencies: dict[str, dict]
    #: Wall-clock seconds the shard scan took (inside the worker).
    seconds: float
    #: Columnar-kernel nanoseconds inside this scan
    #: (:class:`repro.engine.kernels.KernelTimings` ``as_dict``).
    kernel_nanos: dict = dataclasses.field(default_factory=dict)

    def to_dict(self) -> dict:
        """Plain-JSON wire form (the cluster scan response payload).

        The sketches are already in their ``to_dict`` payloads; only
        the index array needs coercion.  Global row indices are exact
        integers, so the JSON round trip is lossless and a shard
        statistic built on a server folds bit-identically to one built
        by a local worker.
        """
        return {
            "index": self.index,
            "n_rows": self.n_rows,
            "sample": [int(i) for i in self.sample.tolist()],
            "quantiles": self.quantiles,
            "frequencies": self.frequencies,
            "seconds": self.seconds,
            "kernel_nanos": dict(self.kernel_nanos),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShardStatistics":
        """Rebuild from :meth:`to_dict` output.

        ``kernel_nanos`` defaults to empty — a pre-kernels peer's scan
        payload (no timing block) still folds; timing is provenance,
        not statistics.
        """
        return cls(
            index=int(data["index"]),
            n_rows=int(data["n_rows"]),
            sample=np.asarray(data["sample"], dtype=np.int64),
            quantiles={
                str(k): dict(v) for k, v in data["quantiles"].items()
            },
            frequencies={
                str(k): dict(v) for k, v in data["frequencies"].items()
            },
            seconds=float(data["seconds"]),
            kernel_nanos={
                str(k): int(v)
                for k, v in dict(data.get("kernel_nanos", {})).items()
            },
        )


@dataclasses.dataclass(frozen=True)
class _ShardWork:
    """The build recipe workers execute (inherited through fork)."""

    table: Table
    bounds: tuple[tuple[int, int], ...]
    seed: int
    budget_rows: int
    #: False when the budget covers the whole table — the merged
    #: backend will use the table itself, so shards skip the sample
    #: permutation draw entirely.
    sample_rows: bool
    epsilon: float
    numeric: tuple[str, ...]
    #: Categorical attribute → Misra–Gries counter budget (computed
    #: once in the parent from the full dictionary, so every shard
    #: sketch has the same capacity and merging is well-defined).
    categorical: tuple[tuple[str, int], ...]
    #: Columnar-kernel spec (:data:`repro.engine.kernels.KERNEL_MODES`).
    kernels: str = "auto"


#: The active build recipe; set in the parent immediately before the
#: executor forks, so workers read it from inherited memory instead of
#: unpickling the table.  ``_WORK_LOCK`` serializes concurrent sharded
#: builds in one process (two pools racing a module global would be
#: worse than queueing; a build is short-lived).
_WORK: _ShardWork | None = None
_WORK_LOCK = threading.Lock()


def scan_shard_values(
    *,
    index: int,
    low: int,
    n_rows: int,
    seed: int,
    fingerprint: int,
    budget_rows: int,
    sample_rows: bool,
    epsilon: float,
    numeric: "dict[str, np.ndarray]",
    categorical: "tuple[tuple[str, int, object], ...]",
    kernels: str = "auto",
) -> ShardStatistics:
    """Scan one shard's raw values: uniform row sample + full sketches.

    The array-level core of the shard scan, shared verbatim by the
    local worker path (:func:`_build_shard`) and the cluster shard
    server (:mod:`repro.cluster.shard`) — one implementation is what
    makes "cluster answers are bit-identical to local" true by
    construction rather than by parallel maintenance.

    ``numeric`` maps attribute → the shard's raw values (``NaN`` for
    missing); ``categorical`` carries ``(attribute, capacity, payload)``
    where the payload is either a decoded label list (missing dropped,
    row order — the cluster wire form) or a ``(codes, categories)``
    pair of raw buffers (the local fast path; no label is decoded).
    Both payloads build content-identical summaries.  Every draw comes
    from the shard's own ``(seed, "shard:<index>:<fingerprint>")``
    stream, so the result depends only on the shard — not on which
    worker or server ran it.

    The sketch builds run as columnar kernels
    (:mod:`repro.engine.kernels`) under the ``kernels`` spec — a pure
    wall-clock knob (``"numpy"`` and ``"python"`` are bit-identical by
    contract), resolved locally and never shipped over the wire; the
    per-kernel nanoseconds ride back in ``kernel_nanos``.
    """
    started = time.perf_counter()
    timings = KernelTimings()
    mode = resolve_kernels(kernels)
    rng = tag_rng(seed, f"shard:{index}:{fingerprint}")
    if sample_rows:
        keep = min(budget_rows, n_rows)
        sample = np.sort(rng.permutation(n_rows)[:keep]) + low
        sample = sample.astype(np.int64, copy=False)
    else:
        # The budget covers the whole table: the merged backend uses
        # the table itself, so shipping an index array per shard back
        # across the process boundary would buy nothing.
        sample = np.empty(0, dtype=np.int64)

    quantiles: dict[str, dict] = {}
    for attribute, values in numeric.items():
        gk = quantile_summary(values, epsilon, kernels=mode, timings=timings)
        quantiles[attribute] = gk.to_dict()

    frequencies: dict[str, dict] = {}
    for attribute, capacity, payload in categorical:
        if isinstance(payload, tuple):
            codes, categories = payload
            mg = frequency_summary_from_codes(
                codes, categories, capacity, kernels=mode, timings=timings
            )
        else:
            mg = frequency_summary_from_labels(
                payload, capacity, kernels=mode, timings=timings
            )
        frequencies[attribute] = mg.to_dict()

    return ShardStatistics(
        index=index,
        n_rows=n_rows,
        sample=sample,
        quantiles=quantiles,
        frequencies=frequencies,
        seconds=time.perf_counter() - started,
        kernel_nanos=timings.as_dict(),
    )


def shard_column_values(
    table: Table,
    low: int,
    high: int,
    numeric: tuple[str, ...],
    categorical: "tuple[tuple[str, int], ...]",
    *,
    decode_labels: bool = True,
) -> "tuple[dict[str, np.ndarray], tuple[tuple[str, int, object], ...]]":
    """Slice a table's dimension columns into scan-core inputs.

    Exactly the value streams :func:`scan_shard_values` consumes — raw
    numeric values with ``NaN`` kept, plus categorical payloads.  With
    ``decode_labels`` (the default, and the only JSON-serializable
    form — the coordinator ships this to shard servers) the payload is
    the decoded label list with missing dropped, in row order; without
    it the payload is the raw ``(codes, categories)`` buffer pair, so
    the local worker path never decodes a label the
    :func:`repro.engine.kernels.frequency_summary_from_codes` kernel
    will only count.
    """
    numeric_values = {
        attribute: table.numeric(attribute).data[low:high]
        for attribute in numeric
    }
    categorical_values: list[tuple[str, int, object]] = []
    for attribute, capacity in categorical:
        column = table.categorical(attribute)
        categories = list(column.categories)
        codes = column.codes[low:high]
        if decode_labels:
            labels = [categories[code] for code in codes[codes >= 0].tolist()]
            categorical_values.append((attribute, capacity, labels))
        else:
            categorical_values.append(
                (attribute, capacity, (codes, categories))
            )
    return numeric_values, tuple(categorical_values)


def _build_shard(index: int) -> ShardStatistics:
    """Scan one shard of the staged :data:`_WORK` recipe.

    Runs inside a worker process (or inline under
    :class:`SerialExecutor`); delegates to :func:`scan_shard_values`
    on column slices, so a worker-built shard statistic is the same
    object a shard server would produce.
    """
    work = _WORK
    if work is None:  # pragma: no cover - defensive
        raise MapError("no shard work is staged")
    low, high = work.bounds[index]
    numeric, categorical = shard_column_values(
        work.table, low, high, work.numeric, work.categorical,
        decode_labels=False,
    )
    return scan_shard_values(
        index=index,
        low=low,
        n_rows=high - low,
        seed=work.seed,
        fingerprint=table_fingerprint(work.table),
        budget_rows=work.budget_rows,
        sample_rows=work.sample_rows,
        epsilon=work.epsilon,
        numeric=numeric,
        categorical=categorical,
        kernels=work.kernels,
    )


# ---------------------------------------------------------------------- #
# Executors
# ---------------------------------------------------------------------- #


class SerialExecutor:
    """In-process executor: the ``workers=1`` / no-fork fallback.

    Runs the same per-shard functions in shard order, so a serial run
    is bit-identical to any parallel one — which is what makes it a
    *fallback* rather than a different mode.
    """

    workers = 1

    def map(self, fn: Callable, items: list) -> list:
        """Apply ``fn`` to every item, in order."""
        return [fn(item) for item in items]


class ParallelExecutor:
    """A ``multiprocessing`` fork pool over the shard work list."""

    def __init__(self, workers: int):
        if workers < 1:
            raise MapError(f"workers must be >= 1, got {workers}")
        self._workers = int(workers)

    @property
    def workers(self) -> int:
        """Worker processes the pool runs."""
        return self._workers

    def map(self, fn: Callable, items: list) -> list:
        """Apply ``fn`` across the pool; results keep item order."""
        import multiprocessing

        if not items:
            return []
        context = multiprocessing.get_context("fork")
        processes = min(self._workers, len(items))
        with context.Pool(processes=processes) as pool:
            return pool.map(fn, items)


def make_executor(
    parallelism: Parallelism,
) -> "SerialExecutor | ParallelExecutor":
    """The executor a parallelism setting asks for on this platform.

    ``workers=1`` — and any platform that cannot fork — gets the
    in-process :class:`SerialExecutor`; results are identical either
    way, only wall-clock differs.
    """
    workers = parallelism.resolved_workers
    if workers <= 1 or not fork_available():
        return SerialExecutor()
    return ParallelExecutor(workers)


# ---------------------------------------------------------------------- #
# Merging (parent side, deterministic fold in shard order)
# ---------------------------------------------------------------------- #


def merge_row_samples(
    sample_a: np.ndarray,
    seen_a: int,
    sample_b: np.ndarray,
    seen_b: int,
    capacity: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, int]:
    """Merge two uniform row samples into one over the union of rows.

    :meth:`ReservoirSampler.merge`'s rule applied to index arrays:
    when the union fits the capacity, concatenate (deterministic);
    otherwise draw the survivor count from ``self`` hypergeometrically,
    weighted by how many rows each side has seen, which keeps the
    result a uniform sample of the union.
    """
    if len(sample_a) + len(sample_b) <= capacity:
        return np.concatenate([sample_a, sample_b]), seen_a + seen_b
    from_a = int(rng.hypergeometric(seen_a, seen_b, capacity))
    # Clamp to what each side can actually supply.
    from_a = min(from_a, len(sample_a))
    from_a = max(from_a, capacity - len(sample_b))
    keep_a = np.sort(rng.choice(len(sample_a), size=from_a, replace=False))
    keep_b = np.sort(
        rng.choice(len(sample_b), size=capacity - from_a, replace=False)
    )
    merged = np.concatenate([sample_a[keep_a], sample_b[keep_b]])
    return merged, seen_a + seen_b


def _sketch_attributes(
    table: Table,
) -> tuple[tuple[str, ...], tuple[tuple[str, int], ...]]:
    """Dimension attributes to sketch, split by kind.

    Misra–Gries capacities come from the full dictionary (shared by
    every derived table), so per-shard sketches are merge-compatible.
    """
    numeric: list[str] = []
    categorical: list[tuple[str, int]] = []
    for column in table.dimension_columns():
        if isinstance(column, NumericColumn):
            numeric.append(column.name)
        elif isinstance(column, CategoricalColumn):
            capacity = max(1, min(_MG_CAPACITY, len(column.categories)))
            categorical.append((column.name, capacity))
    return tuple(numeric), tuple(categorical)


def fold_shard_statistics(
    results: "list[ShardStatistics]",
    *,
    seed: int,
    fingerprint: int,
    budget_rows: int,
    sample_rows: bool,
) -> "tuple[np.ndarray, dict[str, object], dict[str, object]]":
    """Fold per-shard statistics **in shard order** into merged state.

    Returns ``(sample_indices, quantile_sketches, frequency_sketches)``.
    Shared by the local build (:func:`build_sharded_backend`) and the
    cluster coordinator — the fold, like the scan, has exactly one
    implementation, and its ``"shard-merge:<index>:<fingerprint>"``
    RNG streams depend only on the shard layout, never on where the
    scans ran.
    """
    from repro.sketch.frequency import MisraGriesSketch
    from repro.sketch.quantile import GKQuantileSketch

    first, rest = results[0], results[1:]
    sample, seen = first.sample, first.n_rows
    quantiles: dict[str, object] = {
        attribute: GKQuantileSketch.from_dict(payload)
        for attribute, payload in first.quantiles.items()
    }
    frequencies: dict[str, object] = {
        attribute: MisraGriesSketch.from_dict(payload)
        for attribute, payload in first.frequencies.items()
    }
    for shard in rest:
        if sample_rows:
            sample, seen = merge_row_samples(
                sample, seen, shard.sample, shard.n_rows,
                budget_rows,
                tag_rng(seed, f"shard-merge:{shard.index}:{fingerprint}"),
            )
        for attribute, payload in shard.quantiles.items():
            quantiles[attribute] = quantiles[attribute].merge(
                GKQuantileSketch.from_dict(payload)
            )
        for attribute, payload in shard.frequencies.items():
            frequencies[attribute] = frequencies[attribute].merge(
                MisraGriesSketch.from_dict(payload)
            )
    return sample, quantiles, frequencies


def build_sharded_backend(
    table: Table,
    fidelity: Fidelity,
    parallelism: Parallelism,
    *,
    seed: int = 0,
    kernels: str = "auto",
    counters: CacheCounters | None = None,
    lock: threading.Lock | None = None,
) -> "ShardedSketchBackend":
    """Build sketch statistics for ``table`` with the scan/merge split.

    Shards are scanned by :func:`make_executor`'s pool (or inline),
    then folded in shard order: row samples merge hypergeometrically
    down to ``fidelity.budget_rows``, GK/Misra–Gries summaries merge
    with their PR-3 rules.  The result is a drop-in
    :class:`SketchBackend` — the pipeline stages cannot tell it from a
    serially built one, except that its cut summaries reflect *every*
    row instead of a reservoir.
    """
    if not fidelity.is_sketch:
        raise MapError(
            "parallel statistics need a sketch fidelity, got "
            f"{fidelity.spec()!r} (exact masks are row-backed and "
            "cannot be shard-merged)"
        )
    started = time.perf_counter()
    sharded = ShardedTable(table, parallelism.shards)
    executor = make_executor(parallelism)
    numeric, categorical = _sketch_attributes(table)
    sample_rows = fidelity.budget_rows < table.n_rows
    work = _ShardWork(
        table=table,
        bounds=sharded.bounds,
        seed=seed,
        budget_rows=fidelity.budget_rows,
        sample_rows=sample_rows,
        epsilon=fidelity.epsilon,
        numeric=numeric,
        categorical=categorical,
        kernels=kernels,
    )
    global _WORK
    with _WORK_LOCK:
        _WORK = work
        try:
            results = executor.map(_build_shard, list(range(sharded.n_shards)))
        finally:
            _WORK = None

    sample, quantiles, frequencies = fold_shard_statistics(
        results,
        seed=seed,
        fingerprint=table_fingerprint(table),
        budget_rows=fidelity.budget_rows,
        sample_rows=sample_rows,
    )
    if not sample_rows:
        sample_table = table  # the budget covers everything
    else:
        sample_table = table.take(
            np.sort(sample),
            name=f"{table.name}_shardsketch{fidelity.budget_rows}",
        )
    scan_timings = KernelTimings()
    for shard in results:
        scan_timings.merge(shard.kernel_nanos)
    return ShardedSketchBackend(
        sharded,
        fidelity,
        parallelism,
        sample=sample_table,
        quantiles=quantiles,
        frequencies=frequencies,
        shard_seconds=tuple(shard.seconds for shard in results),
        build_seconds=time.perf_counter() - started,
        kernels=kernels,
        kernel_nanos=scan_timings.as_dict(),
        counters=counters,
        lock=lock,
    )


# ---------------------------------------------------------------------- #
# The merged backend
# ---------------------------------------------------------------------- #


class ShardedSketchBackend(SketchBackend):
    """A :class:`SketchBackend` assembled from merged shard statistics.

    Behaves exactly like its parent — the stages read masks,
    assignments, joints, and cuts through the same interface — with two
    differences the provenance records:

    * the per-attribute GK / Misra–Gries summaries are **full scans**
      of the table (merged across shards), not reservoir builds, so
      root-scope cut points carry no sampling error on top of the
      sketch error;
    * :meth:`snapshot` reports the shard layout and per-shard build
      seconds, which the service surfaces through ``/metrics``.

    Streaming: appends route to the owning shard
    (:meth:`ShardedTable.advanced`) and delta sketches merge at rate
    1.0 — a full-scan summary must observe every appended row to stay
    one.
    """

    def __init__(
        self,
        sharded: ShardedTable,
        fidelity: Fidelity,
        parallelism: Parallelism,
        *,
        sample: Table,
        quantiles: dict[str, object],
        frequencies: dict[str, object],
        shard_seconds: tuple[float, ...] = (),
        build_seconds: float = 0.0,
        kernels: str = "auto",
        kernel_nanos: "dict[str, int] | None" = None,
        counters: CacheCounters | None = None,
        lock: threading.Lock | None = None,
    ):
        super().__init__(
            sharded.table, fidelity,
            counters=counters, lock=lock, sample=sample, kernels=kernels,
        )
        self._sharded = sharded
        self._parallelism = parallelism
        self._quantile_sketches = dict(quantiles)
        self._frequency_sketches = dict(frequencies)
        self._shard_seconds = tuple(float(s) for s in shard_seconds)
        self._build_seconds = float(build_seconds)
        #: Kernel nanoseconds summed across the build's shard scans
        #: (distinct from the parent's post-build delta timings).
        self._scan_kernel_nanos = dict(kernel_nanos or {})

    @property
    def sharded_table(self) -> ShardedTable:
        """The shard layout the statistics were built over."""
        return self._sharded

    @property
    def parallelism(self) -> Parallelism:
        """The parallelism setting that built this backend."""
        return self._parallelism

    @property
    def shard_seconds(self) -> tuple[float, ...]:
        """Per-shard scan seconds, in shard order."""
        return self._shard_seconds

    def _delta_sketch_rate(self) -> float:
        """Full-scan summaries observe every delta row (rate 1.0)."""
        return 1.0

    def advance(
        self,
        new_table: Table,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        """Route the append to the owning shard, then maintain.

        The shard layout extends its last range over the appended rows
        (earlier boundaries — and therefore every shard's RNG stream —
        are untouched), the reservoir tops up hypergeometrically, and
        the full-scan summaries merge delta sketches built over *all*
        appended rows (:meth:`_delta_sketch_rate`).
        """
        advanced = self._sharded.advanced(new_table)  # validates growth
        super().advance(new_table, rng=rng)
        with self._lock:
            self._sharded = advanced

    def snapshot(self) -> dict:
        """Parent counters plus shard layout and per-shard timing."""
        out = super().snapshot()
        with self._lock:
            out["parallel"] = {
                "spec": self._parallelism.spec(),
                "workers": self._parallelism.resolved_workers,
                "shards": self._sharded.n_shards,
                "build_seconds": self._build_seconds,
                "shard_seconds": list(self._shard_seconds),
                "kernel_nanos": dict(self._scan_kernel_nanos),
            }
        return out
