"""Pipeline stages: the Section-3 framework as pluggable components.

Each stage implements the :class:`Stage` protocol — a ``name`` (the key
its wall-clock time is reported under, matching the paper's
quasi-real-time accounting) and a ``run`` method that advances a
:class:`PipelineState`.  The five built-ins mirror the framework steps:

====================  ==============================================
``ScopeStage``        §5.1 sampling lever (deterministic per query)
``CandidateStage``    §3.1 CUT per eligible attribute
``ClusteringStage``   §3.2 VI distances + agglomeration
``MergeStage``        §3.3 product / composition per cluster
``RankingStage``      §3.4 entropy ranking
====================  ==============================================

Stages communicate only through the state object and read shared
statistics from the :class:`~repro.engine.context.ExecutionContext`,
so custom stages can be swapped in (the SQL-only engine substitutes
all five with statement-issuing equivalents and reuses the same
:class:`~repro.engine.pipeline.Pipeline` driver).
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

from repro.core.candidates import candidate_attributes
from repro.core.clustering import MapClustering, cluster_maps_from_matrix
from repro.core.datamap import DataMap
from repro.core.ranking import RankedMap, rank_maps
from repro.engine.registry import MERGES
from repro.errors import MapError
from repro.query.query import ConjunctiveQuery

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.dataset.table import Table
    from repro.engine.context import ExecutionContext


@dataclasses.dataclass
class PipelineState:
    """Mutable scratchpad a query carries through the stages."""

    query: ConjunctiveQuery
    scope: "Table | None" = None
    candidates: list[DataMap] = dataclasses.field(default_factory=list)
    clustering: MapClustering | None = None
    merged: list[DataMap] = dataclasses.field(default_factory=list)
    ranked: tuple[RankedMap, ...] = ()
    n_rows_used: int = 0
    #: Free-form slot for custom stages to pass data between each other.
    meta: dict[str, object] = dataclasses.field(default_factory=dict)


@runtime_checkable
class Stage(Protocol):
    """One pluggable pipeline step."""

    #: Timing key; the five canonical names map onto
    #: :class:`~repro.engine.pipeline.StageTimings` fields, anything
    #: else lands in ``StageTimings.extra``.
    name: str

    def run(self, state: PipelineState, context: "ExecutionContext") -> None:
        """Advance ``state``; read shared statistics from ``context``."""
        ...  # pragma: no cover - protocol stub


class ScopeStage:
    """Pick the rows the run scans: full table or a deterministic sample."""

    name = "sampling"

    def run(self, state: PipelineState, context: "ExecutionContext") -> None:
        state.scope = context.scoped(state.query)
        # The backend decides how many rows actually back the answer
        # (a sketch backend measures over its bounded reservoir).
        state.n_rows_used = context.stats_for(state.scope).n_rows


def _require_scope(state: PipelineState, stage_name: str) -> "Table":
    """The scope table, or a clear error naming the missing stage."""
    if state.scope is None:
        raise MapError(
            f"stage {stage_name!r} needs a scope table but none was set; "
            "include a scope-setting stage (e.g. ScopeStage) earlier in "
            "the pipeline"
        )
    return state.scope


class CandidateStage:
    """One single-attribute CUT candidate per eligible attribute (§3.1)."""

    name = "candidates"

    def run(self, state: PipelineState, context: "ExecutionContext") -> None:
        scope = _require_scope(state, self.name)
        stats = context.stats_for(scope)
        # Attribute eligibility (role inference, distinct counts) is
        # measured on the backend's effective rows, so a sketch-fidelity
        # run never pays a full-table scan to enumerate candidates.
        state.candidates = [
            candidate
            for attribute in candidate_attributes(
                stats.effective_table, state.query
            )
            if not (
                candidate := stats.cut_map(
                    state.query, attribute, context.config
                )
            ).is_trivial
        ]


class ClusteringStage:
    """Group statistically dependent candidates by VI distance (§3.2).

    Definition 2 measures dependency over "a random tuple in this set" —
    the set the user query describes.  Restricting the estimate to those
    tuples matters on dirty data: otherwise every row that fails the
    user query escapes *all* maps at once, and that shared escape
    outcome manufactures dependency between every candidate pair
    (measured in the E13 robustness experiment).  Assignment vectors are
    computed once over the scope table (cached in the context) and
    sliced, which commutes with row selection.
    """

    name = "clustering"

    def run(self, state: PipelineState, context: "ExecutionContext") -> None:
        if not state.candidates:
            state.clustering = None
            return
        scope = _require_scope(state, self.name)
        stats = context.stats_for(scope)
        described = stats.query_mask(state.query)
        n_described = int(described.sum())
        if n_described in (0, stats.n_rows):
            row_indices, scope_key = None, None
        else:
            row_indices, scope_key = np.flatnonzero(described), state.query
        matrix = stats.distance_matrix(
            tuple(state.candidates), row_indices, scope_key
        )
        state.clustering = cluster_maps_from_matrix(
            state.candidates, matrix, context.config
        )


class MergeStage:
    """Combine each cluster with the configured merge operator (§3.3)."""

    name = "merging"

    def run(self, state: PipelineState, context: "ExecutionContext") -> None:
        if state.clustering is None:
            state.merged = []
            return
        merge = MERGES.get(context.config.merge_method)
        scope = _require_scope(state, self.name)
        # Merge operators measure covers (product) and re-CUT regions
        # (composition) over a table; handing them the backend's
        # effective rows keeps their cost bounded by the fidelity
        # budget and their estimates consistent with every other stage.
        measured = context.stats_for(scope).effective_table
        merged = [
            merge(cluster, measured, context.config)
            for cluster in state.clustering.clusters
        ]
        state.merged = [m for m in merged if not m.is_trivial]


class RankingStage:
    """Rank merged maps by cover-distribution entropy (§3.4).

    Delegates to :func:`repro.core.ranking.rank_maps` with covers read
    from the context cache, so the score formula and tie-breaking live
    in one place while the assignment vectors clustering already paid
    for are reused here.
    """

    name = "ranking"

    def run(self, state: PipelineState, context: "ExecutionContext") -> None:
        if not state.merged:
            state.ranked = ()
            return
        scope = _require_scope(state, self.name)
        stats = context.stats_for(scope)
        state.ranked = tuple(
            rank_maps(
                state.merged,
                scope,
                max_maps=context.config.max_maps,
                covers_fn=stats.covers,
            )
        )


def default_stages() -> tuple[Stage, ...]:
    """The canonical native pipeline, in framework order."""
    return (
        ScopeStage(),
        CandidateStage(),
        ClusteringStage(),
        MergeStage(),
        RankingStage(),
    )
