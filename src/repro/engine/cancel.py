"""Cooperative cancellation for pipeline runs.

The paper's quasi-real-time contract cuts both ways: a service must
answer fast, and it must *stop spending* on a request whose client has
already given up.  Preemption is off the table — stages hold shared
locks and feed shared memo caches, so killing a thread mid-stage could
poison every later request on the same context.  Instead cancellation
is cooperative and happens at stage boundaries, the one place where the
pipeline's shared state is guaranteed consistent:

* a :class:`CancelToken` carries an explicit cancel flag and/or a
  monotonic deadline;
* :meth:`~repro.engine.pipeline.Pipeline.run` checks the token *between
  stages* (never mid-stage), so a cancelled run leaves its
  :class:`~repro.engine.context.ExecutionContext` exactly as consistent
  as a completed one — everything memoized so far stays valid and
  serves the next request;
* the raised :class:`PipelineCancelled` records how many stages
  completed and which stage was about to run, so callers (and the E23
  benchmark) can *prove* the run stopped at a boundary.

Tokens are thread-safe: the requesting thread (or an HTTP frontend
noticing a dropped connection) may call :meth:`CancelToken.cancel`
while a worker thread is inside a stage; the worker observes it at the
next boundary.  Deadlines use :func:`time.monotonic`, never wall-clock
(rule R1 keeps the engine free of wall-clock reads; monotonic is the
sanctioned latency clock).
"""

from __future__ import annotations

import threading
import time

from repro.errors import AtlasError


class PipelineCancelled(AtlasError):
    """A pipeline run stopped cooperatively at a stage boundary.

    ``stages_completed`` counts fully finished stages; ``next_stage``
    names the stage that was about to run when the token fired.
    Together they prove the run never stopped *inside* a stage.
    """

    def __init__(
        self,
        message: str,
        *,
        reason: str = "cancelled",
        stages_completed: int = 0,
        next_stage: str | None = None,
    ):
        super().__init__(message)
        self.reason = reason
        self.stages_completed = stages_completed
        self.next_stage = next_stage


class CancelToken:
    """A cancel flag plus an optional monotonic deadline.

    One token belongs to one pipeline run (tokens are never shared
    across runs — an :class:`~repro.engine.context.ExecutionContext`
    *is* shared, which is exactly why the token travels separately).
    """

    def __init__(self, deadline: float | None = None):
        self._event = threading.Event()
        #: Absolute :func:`time.monotonic` deadline, or ``None``.
        self._deadline = deadline

    @classmethod
    def with_timeout(cls, seconds: float) -> "CancelToken":
        """A token that expires ``seconds`` from now (monotonic)."""
        return cls(deadline=time.monotonic() + float(seconds))

    def cancel(self) -> None:
        """Request cancellation; observed at the next stage boundary."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return self._event.is_set()

    @property
    def expired(self) -> bool:
        """True once the deadline (if any) has passed."""
        return self._deadline is not None and time.monotonic() >= self._deadline

    @property
    def deadline(self) -> float | None:
        """The absolute monotonic deadline, or ``None``."""
        return self._deadline

    def remaining(self) -> float | None:
        """Seconds until the deadline (clamped at 0), or ``None``."""
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - time.monotonic())

    def fire_reason(self) -> str | None:
        """Why the token has fired (``"cancelled"``/``"deadline"``), or
        ``None`` while the run may keep going."""
        if self._event.is_set():
            return "cancelled"
        if self.expired:
            return "deadline"
        return None

    def check(
        self, *, stages_completed: int = 0, next_stage: str | None = None
    ) -> None:
        """Raise :class:`PipelineCancelled` if the token has fired.

        Called by :meth:`Pipeline.run` between stages with the current
        stage counter, so the raised error carries boundary proof.
        """
        reason = self.fire_reason()
        if reason is None:
            return
        what = (
            "deadline expired" if reason == "deadline" else "run cancelled"
        )
        where = (
            f"before stage {next_stage!r}" if next_stage else "before any stage"
        )
        raise PipelineCancelled(
            f"{what} {where} ({stages_completed} stage(s) completed)",
            reason=reason,
            stages_completed=stages_completed,
            next_stage=next_stage,
        )
