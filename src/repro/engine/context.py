"""Execution context: shared state and memoized statistics for the engine.

The Section-3 pipeline is statistics-hungry — predicate masks, region
assignment vectors, joint contingency tables, cut points, column
entropies — and the seed implementation recomputed all of them inside
each stage on every query.  :class:`ExecutionContext` carries one
table + configuration pair through every stage *and across queries on
the same table*, backed by memoized statistics backends
(:mod:`repro.engine.backends`), so

* the clustering stage no longer recomputes the mutual-information
  inputs that ranking needs again two stages later, and
* a batch (:meth:`repro.engine.facade.Explorer.explore_many`) or an
  interactive session pays for each statistic once, which is the
  quasi-real-time lever of Sections 1/2/5.1 under repeated traffic.

Fidelity: the :attr:`~repro.core.config.AtlasConfig.fidelity` setting
decides which :class:`~repro.engine.backends.StatsBackend` the context
hands to the stages — :class:`~repro.engine.backends.ExactBackend`
(full-table scans) or :class:`~repro.engine.backends.SketchBackend`
(bounded reservoir + one-pass sketches) — so one config switch flips
every entry point between exact and approximate execution.

Determinism: sampling draws from a *per-query child generator* derived
from ``(config.seed, fingerprint(query))`` instead of a shared mutating
generator, so two identical ``explore()`` calls see the same sample and
return the same maps — in any process, in any call order.  Sketch
backends draw their reservoirs from the same family of generators,
tagged by table, so approximate answers are equally reproducible.
"""

from __future__ import annotations

import threading
import zlib

import numpy as np

from repro.core.config import AtlasConfig
from repro.dataset.table import Table
from repro.engine.backends import (  # noqa: F401 - re-exported for compat
    _MAX_SCOPE_ROWS,
    _MAX_SCOPES,
    _MAX_TABLE_STATS,
    _bounded_put,
    CacheCounters,
    ExactBackend,
    SketchBackend,
    StatsBackend,
    TableStats,
    make_backend,
    order_sensitive_key,
    query_fingerprint,
    table_fingerprint,
)
from repro.errors import MapError
from repro.query.query import ConjunctiveQuery


class ExecutionContext:
    """Everything a pipeline run needs: table, config, rng, statistics.

    One context serves many queries; the facade keeps a context alive
    across :meth:`~repro.engine.facade.Explorer.explore_many` calls and
    :class:`~repro.core.atlas.Atlas` keeps one for its lifetime, so an
    interactive drill-down session reuses masks and assignment vectors
    computed for earlier answers.

    ``table`` may be ``None`` for pipelines whose stages measure through
    an external system (the SQL-only engine); such stages never touch
    the statistics cache.

    One context may be shared by a pool of worker threads (the
    service's concurrent explores do): the scope/stats registries and
    every memo table run under one shared lock, and concurrent callers
    racing on the same scope always receive the *same* table object, so
    statistics blocks (keyed by identity) are never duplicated.
    """

    def __init__(self, table: Table | None, config: AtlasConfig | None = None):
        if table is not None and table.n_rows == 0:
            raise MapError("cannot explore an empty table")
        self._table = table
        self._config = config or AtlasConfig()
        self._lock = threading.Lock()
        #: One hit/miss counter block per backend family, so `/metrics`
        #: can report exact and sketch cache behavior separately.
        self._kind_counters: dict[str, CacheCounters] = {
            "exact": CacheCounters(),
            "sketch": CacheCounters(),
        }
        self._stats: dict[int, StatsBackend] = {}  # guarded-by: _lock
        self._transient_stats: StatsBackend | None = None  # guarded-by: _lock
        self._scopes: dict[ConjunctiveQuery, Table] = {}  # guarded-by: _lock
        # Per-thread cancellation slot: a context is shared by many
        # concurrent runs, so the active CancelToken is thread-local
        # (installed by Pipeline.run around its stage loop) rather than
        # a context-wide field.
        self._cancel_slots = threading.local()

    @property
    def table(self) -> Table:
        """The base table being explored."""
        if self._table is None:
            raise MapError("this context is not bound to an in-memory table")
        return self._table

    @property
    def config(self) -> AtlasConfig:
        """Engine configuration shared by every stage."""
        return self._config

    @property
    def version(self) -> int:
        """Streaming version of the base table (0 for table-less contexts)."""
        return self._table.version if self._table is not None else 0

    @property
    def counters(self) -> CacheCounters:
        """Aggregate hit/miss counters across every backend family.

        Read under the shared lock: the per-kind counter blocks are
        incremented by backends while holding the same lock, so the
        aggregate is a consistent snapshot even while a worker pool is
        hammering the context (the threaded counter regression test
        pins both sides of this contract).
        """
        with self._lock:
            return CacheCounters(
                hits=sum(c.hits for c in self._kind_counters.values()),
                misses=sum(c.misses for c in self._kind_counters.values()),
            )

    # ------------------------------------------------------------------ #
    # Cooperative cancellation
    # ------------------------------------------------------------------ #

    def install_cancel(self, token: "object | None") -> None:
        """Install this thread's active :class:`~repro.engine.cancel.
        CancelToken` (or ``None`` to clear it).

        Called by :meth:`~repro.engine.pipeline.Pipeline.run` around its
        stage loop; long-running cooperative code reached from a stage
        may consult :meth:`check_cancelled` through the same context.
        """
        self._cancel_slots.token = token

    @property
    def active_cancel(self) -> "object | None":
        """The calling thread's installed cancel token, if any."""
        return getattr(self._cancel_slots, "token", None)

    def check_cancelled(
        self, *, stages_completed: int = 0, next_stage: str | None = None
    ) -> None:
        """Raise :class:`~repro.engine.cancel.PipelineCancelled` if this
        thread's run has been cancelled or passed its deadline."""
        token = self.active_cancel
        if token is not None:
            token.check(
                stages_completed=stages_completed, next_stage=next_stage
            )

    # ------------------------------------------------------------------ #
    # Determinism
    # ------------------------------------------------------------------ #

    def child_rng(
        self, source: ConjunctiveQuery | str
    ) -> np.random.Generator:
        """Deterministic child generator from ``(seed, source)``.

        ``source`` is a query (per-query sampling: the §5.1 scope
        sample) or a string tag (per-table sampling: a sketch backend's
        reservoir).  Independent of call order and process, unlike the
        seed implementation's shared mutating generator — identical
        calls return identical samples, so approximate results are
        reproducible per ``(table, config, query)``.
        """
        if isinstance(source, ConjunctiveQuery):
            fingerprint = query_fingerprint(source)
        else:
            fingerprint = zlib.crc32(str(source).encode("utf-8"))
        return np.random.default_rng([self._config.seed, fingerprint])

    # ------------------------------------------------------------------ #
    # Scoping and statistics
    # ------------------------------------------------------------------ #

    def scoped(self, query: ConjunctiveQuery) -> Table:
        """The table a query's pipeline run scans (§5.1 sampling lever).

        With ``config.sample_size`` set, a uniform sample drawn with the
        per-query child generator; cached per query so a batch reuses
        one sample object (and therefore one statistics block).
        """
        table = self.table
        if (
            self._config.sample_size is None
            or self._config.sample_size >= table.n_rows
        ):
            return table  # nothing materialized, nothing to cache
        with self._lock:
            cached = self._scopes.get(query)
        if cached is not None:
            return cached
        table = table.sample(self._config.sample_size, rng=self.child_rng(query))
        if table.n_rows > _MAX_SCOPE_ROWS:
            # A single over-budget sample would flush the whole cache
            # and still violate the budget; serve it uncached instead.
            return table
        with self._lock:
            # A concurrent caller may have drawn the (identical,
            # deterministic) sample first; keep its object so the
            # identity-keyed statistics block stays unique per scope.
            existing = self._scopes.get(query)
            if existing is not None:
                return existing
            # Materialized samples are evicted FIFO under a row budget
            # so a long-lived context cannot pin unbounded sample
            # copies; the evicted table's statistics block goes with
            # it, or the pinned table copy would outlive its eviction.
            cached_rows = sum(t.n_rows for t in self._scopes.values())
            while self._scopes and (
                len(self._scopes) >= _MAX_SCOPES
                or cached_rows + table.n_rows > _MAX_SCOPE_ROWS
            ):
                evicted = self._scopes.pop(next(iter(self._scopes)))
                cached_rows -= evicted.n_rows
                self._stats.pop(id(evicted), None)
            self._scopes[query] = table
        return table

    def _new_backend(self, table: Table) -> StatsBackend:
        """Build the backend ``config.fidelity`` asks for, seeded
        deterministically per ``(seed, table)`` via :meth:`child_rng`.

        With :attr:`AtlasConfig.parallelism` sharded and a sketch
        fidelity, the *base* table's backend is built by the
        scan/merge split of :mod:`repro.engine.parallel` — per-shard
        statistics scanned concurrently and merged in shard order.  A
        ``cluster`` parallelism fans the same scans out to the
        process's attached shard servers
        (:func:`repro.cluster.active_cluster`) instead of local
        workers; with no cluster attached it degrades to the local
        split — identical answers either way, since shard layout and
        merge order (not the execution venue) determine the
        statistics.  Scope samples (already bounded) and exact
        fidelity keep the serial path.
        """
        fidelity = self._config.fidelity
        parallelism = self._config.parallelism
        if (
            fidelity.is_sketch
            and parallelism.is_parallel
            and table is self._table
        ):
            if parallelism.is_cluster:
                from repro.cluster.runtime import active_cluster

                coordinator = active_cluster()
                if coordinator is not None:
                    return coordinator.build_backend(
                        table,
                        fidelity,
                        parallelism,
                        seed=self._config.seed,
                        kernels=self._config.kernels,
                        counters=self._kind_counters["sketch"],
                        lock=self._lock,
                    )
            from repro.engine.parallel import build_sharded_backend

            return build_sharded_backend(
                table,
                fidelity,
                parallelism,
                seed=self._config.seed,
                kernels=self._config.kernels,
                counters=self._kind_counters["sketch"],
                lock=self._lock,
            )
        return make_backend(
            table,
            fidelity,
            rng=self.child_rng(f"sketch-backend:{table_fingerprint(table)}"),
            counters=self._kind_counters[
                "sketch" if fidelity.is_sketch else "exact"
            ],
            lock=self._lock,
            kernels=self._config.kernels,
        )

    def stats_for(self, table: Table) -> StatsBackend:
        """The statistics backend for ``table`` at the configured fidelity.

        Keyed by object identity — tables are immutable and the context
        holds a reference, so identity is stable for the cache lifetime.
        """
        with self._lock:
            stats = self._stats.get(id(table))
            if stats is not None:
                return stats
            over_budget = (
                self._table is not None
                and table is not self._table
                and table.n_rows > _MAX_SCOPE_ROWS
            )
        # Backend construction (a sketch backend draws its reservoir
        # here) happens outside the lock; a concurrent race at worst
        # builds one identical backend twice and the first insert wins.
        if over_budget:
            # An over-budget sample that scoped() refused to cache must
            # not get pinned through its statistics block either; keep
            # a single transient block, enough to share statistics
            # between the stages of one pipeline run.
            with self._lock:
                if (
                    self._transient_stats is not None
                    and self._transient_stats.table is table
                ):
                    return self._transient_stats
            backend = self._new_backend(table)
            with self._lock:
                if (
                    self._transient_stats is None
                    or self._transient_stats.table is not table
                ):
                    self._transient_stats = backend
                return self._transient_stats
        backend = self._new_backend(table)
        with self._lock:
            existing = self._stats.get(id(table))
            if existing is not None:
                return existing
            _bounded_put(self._stats, id(table), backend, _MAX_TABLE_STATS)
            return backend

    def stats(self) -> StatsBackend:
        """Statistics backend of the base table."""
        return self.stats_for(self.table)

    def adopt_stats(self, factory) -> StatsBackend:
        """Install an externally built backend for the *base* table.

        ``factory(table, counters, lock, kernels)`` runs outside the
        lock and must return a ready :class:`StatsBackend` over exactly
        ``table`` — the warm-start path of :mod:`repro.store.warm`
        passes a closure that decodes a persisted summary, so the first
        explore on a restarted service skips the scan/build entirely.
        The context stays free of store imports; only the seam lives
        here.  If statistics already exist for the base table the
        existing backend wins and the factory never runs.
        """
        table = self.table
        fidelity = self._config.fidelity
        with self._lock:
            existing = self._stats.get(id(table))
        if existing is not None:
            return existing
        backend = factory(
            table,
            self._kind_counters["sketch" if fidelity.is_sketch else "exact"],
            self._lock,
            self._config.kernels,
        )
        if backend.table is not table:
            raise MapError(
                "adopted backend must be built over the context's base table"
            )
        with self._lock:
            current = self._stats.get(id(table))
            if current is not None:
                return current
            _bounded_put(self._stats, id(table), backend, _MAX_TABLE_STATS)
            return backend

    # ------------------------------------------------------------------ #
    # Streaming
    # ------------------------------------------------------------------ #

    def advance(self, new_table: Table) -> StatsBackend | None:
        """Rebind the context to an appended version of its base table.

        The base table's statistics backend is *maintained*, not
        rebuilt: :meth:`ExactBackend.advance` drops its version-stale
        memo families in one shot, :meth:`SketchBackend.advance` merges
        delta sketches and tops up its reservoir, paying for the delta
        instead of the table.  Scope samples (and their statistics
        blocks) describe pre-append rows, so they are dropped; they
        rebuild lazily per query.  Returns the maintained backend, or
        ``None`` when no statistics had been built yet.

        Concurrency: an explore racing an advance keeps a consistent
        snapshot per statistic (backends stamp memo inserts with the
        version they were computed at and recompute over a captured
        table on length mismatch), so a stale statistic can never enter
        a post-append memo; the racing answer itself may reflect either
        side of the append.
        """
        table = self.table  # raises on table-less contexts
        if new_table.version <= table.version:
            raise MapError(
                f"cannot advance from version {table.version} to "
                f"{new_table.version}; versions must increase"
            )
        if new_table.column_names != table.column_names:
            raise MapError(
                "cannot advance onto a table with a different schema "
                f"({table.column_names} vs {new_table.column_names})"
            )
        if new_table.n_rows < table.n_rows:
            raise MapError(
                "streaming tables are append-only: cannot advance from "
                f"{table.n_rows} to {new_table.n_rows} rows"
            )
        with self._lock:
            backend = self._stats.pop(id(table), None)
            # Scope samples (and any statistics built over them) are
            # snapshots of the pre-append rows.
            self._scopes.clear()
            self._stats.clear()
            self._transient_stats = None
            self._table = new_table
        if backend is None:
            return None
        backend.advance(
            new_table,
            rng=self.child_rng(
                f"sketch-advance:{table_fingerprint(new_table)}"
            ),
        )
        with self._lock:
            _bounded_put(
                self._stats, id(new_table), backend, _MAX_TABLE_STATS
            )
        return backend

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #

    def backend_snapshot(self) -> dict:
        """Per-backend-family cache/usage counters (JSON-ready).

        Aggregates every live backend of this context by ``kind`` —
        the service surfaces this through ``/metrics`` so operators can
        see how much traffic each fidelity serves and how well its
        caches behave.
        """
        with self._lock:
            backends = list(self._stats.values())
            if self._transient_stats is not None:
                backends.append(self._transient_stats)
        out: dict[str, dict] = {}
        for kind, counters in self._kind_counters.items():
            from repro.engine.parallel import (
                merge_shard_info,
                new_shard_aggregate,
            )

            usage: dict[str, int] = {}
            instances = 0
            parallel = new_shard_aggregate()
            kernel_nanos: dict[str, int] = {}
            kernel_mode = ""
            for backend in backends:
                if backend.kind != kind:
                    continue
                instances += 1
                snapshot = backend.snapshot()
                for name, count in snapshot["usage"].items():
                    usage[name] = usage.get(name, 0) + count
                # Sharded backends report their scan/merge provenance;
                # aggregate it so `/metrics` can show per-shard build
                # timing next to the cache counters.
                shard_info = snapshot.get("parallel")
                if shard_info:
                    merge_shard_info(parallel, shard_info)
                # Sketch backends meter their columnar kernels
                # (:mod:`repro.engine.kernels`); fold the backend-local
                # nanoseconds so `/metrics` shows where scan time goes.
                # Sharded backends keep their build-scan nanoseconds in
                # the shard provenance (disjoint from the post-build
                # delta meters at top level), so fold both.
                for name, nanos in snapshot.get("kernel_nanos", {}).items():
                    kernel_nanos[name] = kernel_nanos.get(name, 0) + nanos
                if shard_info:
                    for name, nanos in shard_info.get(
                        "kernel_nanos", {}
                    ).items():
                        kernel_nanos[name] = kernel_nanos.get(name, 0) + nanos
                kernel_mode = snapshot.get("kernels", kernel_mode)
            with self._lock:
                hits, misses = counters.hits, counters.misses
                hit_rate = counters.hit_rate
            out[kind] = {
                "instances": instances,
                "hits": hits,
                "misses": misses,
                "hit_rate": hit_rate,
                "usage": usage,
            }
            if kernel_mode:
                out[kind]["kernels"] = kernel_mode
                out[kind]["kernel_nanos"] = kernel_nanos
            if parallel["builds"]:
                out[kind]["parallel"] = parallel
        return out
