"""Execution context: shared state and memoized statistics for the engine.

The Section-3 pipeline is statistics-hungry — predicate masks, region
assignment vectors, joint contingency tables, cut points, column
entropies — and the seed implementation recomputed all of them inside
each stage on every query.  :class:`ExecutionContext` carries one
table + configuration pair through every stage *and across queries on
the same table*, backed by :class:`TableStats` memoization, so

* the clustering stage no longer recomputes the mutual-information
  inputs that ranking needs again two stages later, and
* a batch (:meth:`repro.engine.facade.Explorer.explore_many`) or an
  interactive session pays for each statistic once, which is the
  quasi-real-time lever of Sections 1/2/5.1 under repeated traffic.

Determinism: sampling draws from a *per-query child generator* derived
from ``(config.seed, fingerprint(query))`` instead of a shared mutating
generator, so two identical ``explore()`` calls see the same sample and
return the same maps — in any process, in any call order.
"""

from __future__ import annotations

import dataclasses
import threading
import zlib

import numpy as np

from repro.core.config import AtlasConfig
from repro.core.contingency import joint_distribution_from_assignments
from repro.core.datamap import DataMap, assign_regions, covers_from_assignment
from repro.core.information import rajski_distance, variation_of_information
from repro.dataset.table import Table
from repro.errors import MapError
from repro.query.query import ConjunctiveQuery

#: Bounds on cached scope tables / per-table stat blocks; interactive
#: sessions revisit a handful of scopes, so a small FIFO is plenty.
#: Sampled scopes are materialized copies, so they are additionally
#: bounded by total cached rows (the base table is cached by reference
#: and costs nothing).
_MAX_SCOPES = 128
_MAX_SCOPE_ROWS = 4_000_000
_MAX_TABLE_STATS = 16
#: Per-memo bounds inside one TableStats block.  Row-sized arrays
#: (masks, assignments) dominate memory, so their FIFO caps come from a
#: byte budget divided by the per-entry size (clamped to [8, 256]
#: entries): on small tables the memos keep hundreds of entries, on a
#: 10M-row table an 8-byte-per-row assignment memo holds ~8 vectors.
#: Small per-region results (covers, joints, cuts) get a flat cap.
_ROW_ARRAY_BYTE_BUDGET = 512 * 1024 * 1024
_MIN_ROW_ARRAYS = 8
_MAX_ROW_ARRAYS = 256
_MAX_SMALL_ENTRIES = 4096


def _row_array_cap(n_rows: int, bytes_per_row: int) -> int:
    """FIFO entry cap for a memo of row-sized arrays."""
    per_entry = max(1, n_rows * bytes_per_row)
    return max(
        _MIN_ROW_ARRAYS,
        min(_MAX_ROW_ARRAYS, _ROW_ARRAY_BYTE_BUDGET // per_entry),
    )


def _bounded_put(memo: dict, key, value, cap: int) -> None:
    """Insert with FIFO eviction once ``cap`` entries are reached."""
    if len(memo) >= cap:
        memo.pop(next(iter(memo)))
    memo[key] = value


@dataclasses.dataclass
class CacheCounters:
    """Hit/miss counters over every memo table of a context."""

    hits: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def order_sensitive_key(query: ConjunctiveQuery) -> tuple:
    """Cache key for results that depend on user-given value order.

    :class:`ConjunctiveQuery`/:class:`SetPredicate` equality is
    order-insensitive (set semantics), but the ``user_order``
    categorical strategy lays labels out in the order the user gave
    them — so caches of cut results (and whole answers) must key on the
    ordered values as well, or two set-equal queries with different
    value orders would share one result.
    """
    parts = []
    for predicate in sorted(query.predicates, key=lambda p: p.attribute):
        ordered = getattr(predicate, "ordered_values", None)
        parts.append(
            (predicate, tuple(ordered) if ordered is not None else None)
        )
    return tuple(parts)


def query_fingerprint(query: ConjunctiveQuery) -> int:
    """Stable, process-independent fingerprint of a query.

    Predicate order is irrelevant (queries compare as predicate sets),
    and ``zlib.crc32`` avoids Python's per-process string-hash salt.
    """
    canonical = "|".join(sorted(p.describe() for p in query.predicates))
    return zlib.crc32(canonical.encode("utf-8"))


class TableStats:
    """Memoized statistics over one immutable table.

    Every method mirrors an existing computation exactly
    (:meth:`ConjunctiveQuery.mask`, :meth:`DataMap.assign`,
    :meth:`DataMap.covers`, :func:`~repro.core.distance.distance_matrix`)
    so cached and uncached paths are interchangeable; the engine tests
    assert that equivalence.  Cached arrays are frozen
    (``writeable=False``) — callers that need to mutate must copy.

    Thread safety: every memo lookup/insert (and the counters) runs
    under ``lock``; the statistic itself is computed *outside* the lock,
    so concurrent workers (the service pool) never serialize on numpy
    work — a race at worst computes one value twice and the idempotent
    insert wins.  :class:`ExecutionContext` passes one lock shared by
    all its stat blocks so nested memo calls and the shared counters
    stay consistent; a standalone ``TableStats`` gets its own.
    """

    def __init__(
        self,
        table: Table,
        counters: CacheCounters | None = None,
        lock: threading.Lock | None = None,
    ):
        self._table = table
        self._lock = lock if lock is not None else threading.Lock()
        self.counters = counters if counters is not None else CacheCounters()
        self._predicate_masks: dict[object, np.ndarray] = {}
        self._query_masks: dict[ConjunctiveQuery, np.ndarray] = {}
        self._assignments: dict[DataMap, np.ndarray] = {}
        self._covers: dict[DataMap, np.ndarray] = {}
        self._joints: dict[tuple, np.ndarray] = {}
        self._cuts: dict[tuple, DataMap] = {}
        self._mask_cap = _row_array_cap(table.n_rows, 1)
        self._row_array_cap = _row_array_cap(table.n_rows, 8)

    @property
    def table(self) -> Table:
        """The table the statistics describe."""
        return self._table

    # ------------------------------------------------------------------ #
    # Masks
    # ------------------------------------------------------------------ #

    def predicate_mask(self, predicate) -> np.ndarray:
        """Row mask of one predicate (frozen array, cached)."""
        with self._lock:
            cached = self._predicate_masks.get(predicate)
            if cached is not None:
                self.counters.hits += 1
                return cached
            self.counters.misses += 1
        mask = np.asarray(predicate.mask(self._table), dtype=bool)
        mask.flags.writeable = False
        with self._lock:
            _bounded_put(self._predicate_masks, predicate, mask, self._mask_cap)
        return mask

    def query_mask(self, query: ConjunctiveQuery) -> np.ndarray:
        """Row mask of a conjunctive query, AND of cached predicate masks."""
        with self._lock:
            cached = self._query_masks.get(query)
            if cached is not None:
                self.counters.hits += 1
                return cached
            self.counters.misses += 1
        result = np.ones(self._table.n_rows, dtype=bool)
        for predicate in query.predicates:
            np.logical_and(result, self.predicate_mask(predicate), out=result)
        result.flags.writeable = False
        with self._lock:
            _bounded_put(self._query_masks, query, result, self._mask_cap)
        return result

    # ------------------------------------------------------------------ #
    # Map statistics
    # ------------------------------------------------------------------ #

    def assignment(self, data_map: DataMap) -> np.ndarray:
        """Region index per row (Definition 2), cached per map.

        Semantics match :meth:`DataMap.assign`: first matching region
        wins, uncovered rows get :data:`~repro.core.datamap.ESCAPE`.
        """
        with self._lock:
            cached = self._assignments.get(data_map.regions)
            if cached is not None:
                self.counters.hits += 1
                return cached
            self.counters.misses += 1
        assignment = assign_regions(
            data_map.regions, self._table.n_rows, self.query_mask
        )
        assignment.flags.writeable = False
        with self._lock:
            _bounded_put(
                self._assignments, data_map.regions, assignment,
                self._row_array_cap,
            )
        return assignment

    def covers(self, data_map: DataMap) -> np.ndarray:
        """Cover of each region (matches :meth:`DataMap.covers`), cached."""
        with self._lock:
            cached = self._covers.get(data_map.regions)
            if cached is not None:
                self.counters.hits += 1
                return cached
            self.counters.misses += 1
        result = covers_from_assignment(
            self.assignment(data_map), data_map.n_regions
        )
        result.flags.writeable = False
        with self._lock:
            _bounded_put(
                self._covers, data_map.regions, result, _MAX_SMALL_ENTRIES
            )
        return result

    def joint(
        self,
        map_a: DataMap,
        map_b: DataMap,
        row_indices: np.ndarray | None = None,
        scope_key: object = None,
    ) -> np.ndarray:
        """Joint distribution of two maps' underlying variables, cached.

        ``row_indices`` restricts the estimate to a subset of rows (the
        clustering stage scores dependency over the tuples the user
        query describes); ``scope_key`` names that subset in the cache
        key.  A restricted estimate without a ``scope_key`` is computed
        but never cached — caching it under the full-table key would
        poison later unrestricted lookups.  Assignment vectors are
        computed once over the *full* table and sliced — region
        membership is row-wise, so slicing commutes with selection.
        """
        assign_a = self.assignment(map_a)
        assign_b = self.assignment(map_b)
        if row_indices is not None:
            assign_a = assign_a[row_indices]
            assign_b = assign_b[row_indices]
        return self._joint_from(
            map_a, map_b, assign_a, assign_b,
            scope_key, cacheable=row_indices is None or scope_key is not None,
        )

    def _joint_from(
        self,
        map_a: DataMap,
        map_b: DataMap,
        assign_a: np.ndarray,
        assign_b: np.ndarray,
        scope_key: object,
        cacheable: bool,
    ) -> np.ndarray:
        """Cache-aware joint distribution from prepared assignments."""
        if cacheable:
            key = (map_a.regions, map_b.regions, scope_key)
            with self._lock:
                cached = self._joints.get(key)
                if cached is not None:
                    self.counters.hits += 1
                    return cached
                transposed = self._joints.get(
                    (map_b.regions, map_a.regions, scope_key)
                )
                if transposed is not None:
                    self.counters.hits += 1
                    return transposed.T
                self.counters.misses += 1
        else:
            with self._lock:
                self.counters.misses += 1
        joint = joint_distribution_from_assignments(
            assign_a, assign_b, map_a.n_regions, map_b.n_regions
        )
        if cacheable:
            joint.flags.writeable = False
            with self._lock:
                _bounded_put(self._joints, key, joint, _MAX_SMALL_ENTRIES)
        return joint

    def distance_matrix(
        self,
        maps: tuple[DataMap, ...],
        row_indices: np.ndarray | None = None,
        scope_key: object = None,
    ):
        """Pairwise VI / Rajski distances with memoized joints.

        Equivalent to :func:`repro.core.distance.distance_matrix` over
        ``table[row_indices]``, but every joint distribution is cached
        so repeated queries on the same table skip the quadratic
        recomputation.
        """
        from repro.core.distance import MapDistanceMatrix

        if not maps:
            raise MapError("need at least one map")
        n = len(maps)
        # Slice each assignment once up front — per-pair slicing would
        # copy every assignment O(n) times.
        if row_indices is None:
            assignments = [self.assignment(m) for m in maps]
        else:
            assignments = [self.assignment(m)[row_indices] for m in maps]
        cacheable = row_indices is None or scope_key is not None
        raw = np.zeros((n, n), dtype=np.float64)
        scaled = np.zeros((n, n), dtype=np.float64)
        for i in range(n):
            for j in range(i + 1, n):
                joint = self._joint_from(
                    maps[i], maps[j], assignments[i], assignments[j],
                    scope_key, cacheable,
                )
                raw[i, j] = raw[j, i] = variation_of_information(joint)
                scaled[i, j] = scaled[j, i] = rajski_distance(joint)
        return MapDistanceMatrix(maps=maps, distances=raw, normalized=scaled)

    # ------------------------------------------------------------------ #
    # Cuts and column statistics
    # ------------------------------------------------------------------ #

    def cut_map(
        self, query: ConjunctiveQuery, attribute: str, config: AtlasConfig
    ) -> DataMap:
        """``CUT_attribute(query)`` with cut points memoized per scope.

        The cache key covers the config fields the built-in cuts
        depend on plus the *resolved* strategy callables, so one
        :class:`TableStats` can serve contexts with different
        configurations and a strategy re-registered with
        ``overwrite=True`` is never served stale results.  (A custom
        strategy reading further config fields should be registered
        under a name that encodes them.)
        """
        from repro.engine.registry import CATEGORICAL_ORDERS, NUMERIC_CUTS

        key = (
            order_sensitive_key(query),
            attribute,
            config.n_splits,
            NUMERIC_CUTS.get(config.numeric_strategy),
            CATEGORICAL_ORDERS.get(config.categorical_strategy),
            config.sketch_epsilon,
        )
        with self._lock:
            cached = self._cuts.get(key)
            if cached is not None:
                self.counters.hits += 1
                return cached
            self.counters.misses += 1
        from repro.core.cut import cut

        result = cut(
            self._table,
            query,
            attribute,
            config,
            region_mask=self.query_mask(query),
        )
        with self._lock:
            _bounded_put(self._cuts, key, result, _MAX_SMALL_ENTRIES)
        return result


class ExecutionContext:
    """Everything a pipeline run needs: table, config, rng, statistics.

    One context serves many queries; the facade keeps a context alive
    across :meth:`~repro.engine.facade.Explorer.explore_many` calls and
    :class:`~repro.core.atlas.Atlas` keeps one for its lifetime, so an
    interactive drill-down session reuses masks and assignment vectors
    computed for earlier answers.

    ``table`` may be ``None`` for pipelines whose stages measure through
    an external system (the SQL-only engine); such stages never touch
    the statistics cache.

    One context may be shared by a pool of worker threads (the
    service's concurrent explores do): the scope/stats registries and
    every memo table run under one shared lock, and concurrent callers
    racing on the same scope always receive the *same* table object, so
    statistics blocks (keyed by identity) are never duplicated.
    """

    def __init__(self, table: Table | None, config: AtlasConfig | None = None):
        if table is not None and table.n_rows == 0:
            raise MapError("cannot explore an empty table")
        self._table = table
        self._config = config or AtlasConfig()
        self._lock = threading.Lock()
        self.counters = CacheCounters()
        self._stats: dict[int, TableStats] = {}
        self._transient_stats: TableStats | None = None
        self._scopes: dict[ConjunctiveQuery, Table] = {}

    @property
    def table(self) -> Table:
        """The base table being explored."""
        if self._table is None:
            raise MapError("this context is not bound to an in-memory table")
        return self._table

    @property
    def config(self) -> AtlasConfig:
        """Engine configuration shared by every stage."""
        return self._config

    # ------------------------------------------------------------------ #
    # Determinism
    # ------------------------------------------------------------------ #

    def child_rng(self, query: ConjunctiveQuery) -> np.random.Generator:
        """Deterministic per-call generator from ``(seed, query)``.

        Independent of call order and process, unlike the seed
        implementation's shared mutating generator — identical calls
        now return identical maps.
        """
        return np.random.default_rng(
            [self._config.seed, query_fingerprint(query)]
        )

    # ------------------------------------------------------------------ #
    # Scoping and statistics
    # ------------------------------------------------------------------ #

    def scoped(self, query: ConjunctiveQuery) -> Table:
        """The table a query's pipeline run scans (§5.1 sampling lever).

        With ``config.sample_size`` set, a uniform sample drawn with the
        per-query child generator; cached per query so a batch reuses
        one sample object (and therefore one statistics block).
        """
        table = self.table
        if (
            self._config.sample_size is None
            or self._config.sample_size >= table.n_rows
        ):
            return table  # nothing materialized, nothing to cache
        with self._lock:
            cached = self._scopes.get(query)
        if cached is not None:
            return cached
        table = table.sample(self._config.sample_size, rng=self.child_rng(query))
        if table.n_rows > _MAX_SCOPE_ROWS:
            # A single over-budget sample would flush the whole cache
            # and still violate the budget; serve it uncached instead.
            return table
        with self._lock:
            # A concurrent caller may have drawn the (identical,
            # deterministic) sample first; keep its object so the
            # identity-keyed statistics block stays unique per scope.
            existing = self._scopes.get(query)
            if existing is not None:
                return existing
            # Materialized samples are evicted FIFO under a row budget
            # so a long-lived context cannot pin unbounded sample
            # copies; the evicted table's statistics block goes with
            # it, or the pinned table copy would outlive its eviction.
            cached_rows = sum(t.n_rows for t in self._scopes.values())
            while self._scopes and (
                len(self._scopes) >= _MAX_SCOPES
                or cached_rows + table.n_rows > _MAX_SCOPE_ROWS
            ):
                evicted = self._scopes.pop(next(iter(self._scopes)))
                cached_rows -= evicted.n_rows
                self._stats.pop(id(evicted), None)
            self._scopes[query] = table
        return table

    def stats_for(self, table: Table) -> TableStats:
        """The memoized statistics block for ``table``.

        Keyed by object identity — tables are immutable and the context
        holds a reference, so identity is stable for the cache lifetime.
        """
        with self._lock:
            stats = self._stats.get(id(table))
            if stats is not None:
                return stats
            if (
                self._table is not None
                and table is not self._table
                and table.n_rows > _MAX_SCOPE_ROWS
            ):
                # An over-budget sample that scoped() refused to cache
                # must not get pinned through its statistics block
                # either; keep a single transient block, enough to
                # share statistics between the stages of one pipeline
                # run.
                if (
                    self._transient_stats is None
                    or self._transient_stats.table is not table
                ):
                    self._transient_stats = TableStats(
                        table, counters=self.counters, lock=self._lock
                    )
                return self._transient_stats
            stats = TableStats(table, counters=self.counters, lock=self._lock)
            _bounded_put(self._stats, id(table), stats, _MAX_TABLE_STATS)
            return stats

    def stats(self) -> TableStats:
        """Statistics block of the base table."""
        return self.stats_for(self.table)
