"""SQL emission: the ODBC/JDBC escape hatch of Section 4.

The paper notes that a generic Atlas would talk standard SQL to any DBMS.
This module renders conjunctive queries as SQL so the engine's decisions
remain executable against a real database, and so tests can assert the
exact text a driver would receive.
"""

from __future__ import annotations

import math

from repro.errors import QueryError
from repro.query.predicate import (
    AnyPredicate,
    ContainsPredicate,
    MatchPredicate,
    Predicate,
    RangePredicate,
    SetPredicate,
)
from repro.query.query import ConjunctiveQuery


def quote_identifier(name: str) -> str:
    """Double-quote an identifier, doubling embedded quotes."""
    return '"' + name.replace('"', '""') + '"'


def quote_literal(value: str) -> str:
    """Single-quote a string literal, doubling embedded quotes."""
    return "'" + value.replace("'", "''") + "'"


def _number(value: float) -> str:
    if math.isinf(value):
        raise QueryError("SQL cannot express an infinite range bound; drop it")
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def predicate_to_sql(predicate: Predicate) -> str:
    """Render one predicate as a SQL boolean expression."""
    ident = quote_identifier(predicate.attribute)
    if isinstance(predicate, AnyPredicate):
        return "TRUE"
    if isinstance(predicate, RangePredicate):
        clauses = []
        if not math.isinf(predicate.low):
            op = ">=" if predicate.closed_low else ">"
            clauses.append(f"{ident} {op} {_number(predicate.low)}")
        if not math.isinf(predicate.high):
            op = "<=" if predicate.closed_high else "<"
            clauses.append(f"{ident} {op} {_number(predicate.high)}")
        if not clauses:
            return "TRUE"
        if (
            predicate.closed_low
            and predicate.closed_high
            and not math.isinf(predicate.low)
            and not math.isinf(predicate.high)
        ):
            return (
                f"{ident} BETWEEN {_number(predicate.low)} "
                f"AND {_number(predicate.high)}"
            )
        return " AND ".join(clauses)
    if isinstance(predicate, SetPredicate):
        values = ", ".join(quote_literal(v) for v in sorted(predicate.values))
        return f"{ident} IN ({values})"
    if isinstance(predicate, ContainsPredicate):
        # CONTAINS / MATCH are the dialect's FTS conditions (like
        # QUALIFY, a DuckDB/Snowflake-style extension): parsed by
        # repro.db and executed with exactly the mask semantics of the
        # corresponding predicates, so pushdown counts agree with
        # in-memory evaluation bit for bit.
        return f"{ident} CONTAINS {quote_literal(predicate.needle)}"
    if isinstance(predicate, MatchPredicate):
        return f"{ident} MATCH {quote_literal(' '.join(predicate.terms))}"
    raise QueryError(f"cannot render predicate type {type(predicate).__name__}")


def query_to_sql(query: ConjunctiveQuery, table_name: str) -> str:
    """Render ``SELECT * FROM table WHERE ...`` for a conjunctive query."""
    where = " AND ".join(
        predicate_to_sql(p) for p in query.predicates if p.is_restrictive
    )
    base = f"SELECT * FROM {quote_identifier(table_name)}"
    return f"{base} WHERE {where}" if where else base


def count_to_sql(query: ConjunctiveQuery, table_name: str) -> str:
    """Render the COUNT(*) query the engine uses to measure covers."""
    where = " AND ".join(
        predicate_to_sql(p) for p in query.predicates if p.is_restrictive
    )
    base = f"SELECT COUNT(*) FROM {quote_identifier(table_name)}"
    return f"{base} WHERE {where}" if where else base
