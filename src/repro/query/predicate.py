"""Predicates of the conjunctive query language.

The paper restricts queries to conjunctions of per-attribute predicates
``P_k : att_k ∈ S_k`` (Section 3).  Three predicate shapes cover the
examples in the paper:

* :class:`RangePredicate` — ``Age: [17, 90]`` (ordinal attributes),
* :class:`SetPredicate` — ``Sex: {'Male'}`` (categorical attributes),
* :class:`AnyPredicate` — ``Salary: any`` (no restriction; it carries the
  attribute so CUT knows which columns the user cares about).

Every predicate evaluates to a boolean row mask against a table.  Missing
values never satisfy a restricting predicate, matching SQL three-valued
logic collapsed to "unknown is false".
"""

from __future__ import annotations

import abc
import math
from collections.abc import Iterable

import numpy as np

from repro.dataset.table import Table
from repro.errors import PredicateError


class Predicate(abc.ABC):
    """One per-attribute predicate ``att ∈ S``."""

    __slots__ = ("_attribute",)

    def __init__(self, attribute: str):
        if not attribute:
            raise PredicateError("predicate needs a non-empty attribute name")
        self._attribute = attribute

    @property
    def attribute(self) -> str:
        """Name of the attribute the predicate restricts."""
        return self._attribute

    @property
    def is_restrictive(self) -> bool:
        """False for ``any`` predicates, True otherwise."""
        return True

    @abc.abstractmethod
    def mask(self, table: Table) -> np.ndarray:
        """Boolean mask of rows in ``table`` satisfying the predicate."""

    @abc.abstractmethod
    def describe(self) -> str:
        """Render the predicate in the paper's textual syntax."""

    @abc.abstractmethod
    def intersect(self, other: "Predicate") -> "Predicate | None":
        """Predicate equivalent to ``self AND other`` on the same attribute.

        Returns ``None`` when the conjunction is unsatisfiable.  Raises
        :class:`PredicateError` when the attributes differ or shapes are
        incompatible (range vs set).
        """

    @abc.abstractmethod
    def to_dict(self) -> dict:
        """Plain-JSON form tagged with a ``kind`` discriminator.

        The inverse of :meth:`Predicate.from_dict`; the wire shape of
        the service protocol (:mod:`repro.service.protocol`), mirroring
        :meth:`repro.core.config.AtlasConfig.to_dict`.
        """

    @staticmethod
    def from_dict(data: dict) -> "Predicate":
        """Rebuild any predicate from :meth:`to_dict` output."""
        if not isinstance(data, dict):
            raise PredicateError(
                f"expected a predicate dict, got {type(data).__name__}"
            )
        kind = data.get("kind")
        builder = _PREDICATE_KINDS.get(kind)
        if builder is None:
            known = ", ".join(sorted(_PREDICATE_KINDS))
            raise PredicateError(
                f"unknown predicate kind {kind!r}; known kinds: {known}"
            )
        try:
            return builder(data)
        except KeyError as exc:
            raise PredicateError(
                f"predicate dict of kind {kind!r} is missing field {exc}"
            ) from None
        except PredicateError:
            raise
        except (TypeError, ValueError) as exc:
            # A malformed field value is the sender's fault, so it must
            # surface as a typed (bad-request) error, not an internal one.
            raise PredicateError(
                f"malformed predicate dict of kind {kind!r}: {exc}"
            ) from exc

    @abc.abstractmethod
    def _key(self) -> tuple:
        """Hashable identity used for __eq__/__hash__."""

    def _check_same_attribute(self, other: "Predicate") -> None:
        if self._attribute != other._attribute:
            raise PredicateError(
                f"cannot intersect predicates on different attributes: "
                f"{self._attribute!r} vs {other._attribute!r}"
            )

    def __eq__(self, other: object) -> bool:
        if type(self) is not type(other):
            return False
        return self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.describe()}>"


class AnyPredicate(Predicate):
    """No restriction: ``att: any``.  Matches every row, even missing."""

    __slots__ = ()

    @property
    def is_restrictive(self) -> bool:
        return False

    def mask(self, table: Table) -> np.ndarray:
        table.column(self._attribute)  # validate the attribute exists
        return np.ones(table.n_rows, dtype=bool)

    def describe(self) -> str:
        return f"{self._attribute}: any"

    def intersect(self, other: Predicate) -> Predicate:
        self._check_same_attribute(other)
        return other

    def to_dict(self) -> dict:
        return {"kind": "any", "attribute": self._attribute}

    def _key(self) -> tuple:
        return (self._attribute,)


class RangePredicate(Predicate):
    """Interval restriction on a numeric attribute: ``att ∈ [low, high]``.

    Bounds may individually be open or closed; infinite bounds express
    one-sided ranges.  The paper's examples use closed intervals.
    """

    __slots__ = ("_low", "_high", "_closed_low", "_closed_high")

    def __init__(
        self,
        attribute: str,
        low: float,
        high: float,
        closed_low: bool = True,
        closed_high: bool = True,
    ):
        super().__init__(attribute)
        low = float(low)
        high = float(high)
        if math.isnan(low) or math.isnan(high):
            raise PredicateError(f"range bounds on {attribute!r} may not be NaN")
        if low > high:
            raise PredicateError(
                f"inverted range on {attribute!r}: [{low}, {high}]"
            )
        if low == high and not (closed_low and closed_high):
            raise PredicateError(
                f"degenerate open range on {attribute!r} at {low} is empty"
            )
        self._low = low
        self._high = high
        self._closed_low = bool(closed_low)
        self._closed_high = bool(closed_high)

    @property
    def low(self) -> float:
        """Lower bound."""
        return self._low

    @property
    def high(self) -> float:
        """Upper bound."""
        return self._high

    @property
    def closed_low(self) -> bool:
        """True if the lower bound is included."""
        return self._closed_low

    @property
    def closed_high(self) -> bool:
        """True if the upper bound is included."""
        return self._closed_high

    @property
    def width(self) -> float:
        """Interval width (``high - low``)."""
        return self._high - self._low

    def mask(self, table: Table) -> np.ndarray:
        data = table.numeric(self._attribute).data
        lower = data >= self._low if self._closed_low else data > self._low
        upper = data <= self._high if self._closed_high else data < self._high
        result = lower & upper
        result[np.isnan(data)] = False
        return result

    def describe(self) -> str:
        lo = "[" if self._closed_low else "("
        hi = "]" if self._closed_high else ")"
        return f"{self._attribute}: {lo}{_fmt(self._low)}, {_fmt(self._high)}{hi}"

    def intersect(self, other: Predicate) -> Predicate | None:
        self._check_same_attribute(other)
        if isinstance(other, AnyPredicate):
            return self
        if not isinstance(other, RangePredicate):
            raise PredicateError(
                f"cannot intersect a range with a {type(other).__name__} "
                f"on {self._attribute!r}"
            )
        if self._low > other._low:
            low, closed_low = self._low, self._closed_low
        elif self._low < other._low:
            low, closed_low = other._low, other._closed_low
        else:
            low, closed_low = self._low, self._closed_low and other._closed_low
        if self._high < other._high:
            high, closed_high = self._high, self._closed_high
        elif self._high > other._high:
            high, closed_high = other._high, other._closed_high
        else:
            high, closed_high = self._high, self._closed_high and other._closed_high
        if low > high or (low == high and not (closed_low and closed_high)):
            return None
        return RangePredicate(self._attribute, low, high, closed_low, closed_high)

    def to_dict(self) -> dict:
        # Infinite bounds travel as strings — IEEE infinities are not
        # valid JSON numbers, and the service protocol must stay
        # parseable by strict decoders.
        return {
            "kind": "range",
            "attribute": self._attribute,
            "low": _bound_to_json(self._low),
            "high": _bound_to_json(self._high),
            "closed_low": self._closed_low,
            "closed_high": self._closed_high,
        }

    def _key(self) -> tuple:
        return (self._attribute, self._low, self._high,
                self._closed_low, self._closed_high)


class SetPredicate(Predicate):
    """Membership restriction on a categorical attribute: ``att ∈ {v1, ...}``.

    The order in which the caller lists the values is preserved in
    :attr:`ordered_values`: Section 3.1 of the paper suggests cutting
    categorical attributes "in the order in which the user gives them".
    """

    __slots__ = ("_values", "_ordered")

    def __init__(self, attribute: str, values: Iterable[str]):
        super().__init__(attribute)
        ordered: list[str] = []
        seen: set[str] = set()
        for v in values:
            label = str(v)
            if label not in seen:
                seen.add(label)
                ordered.append(label)
        if not ordered:
            raise PredicateError(f"empty set predicate on {attribute!r}")
        self._ordered = tuple(ordered)
        self._values = frozenset(ordered)

    @property
    def values(self) -> frozenset[str]:
        """The admitted labels."""
        return self._values

    @property
    def ordered_values(self) -> tuple[str, ...]:
        """The admitted labels in user-given order (duplicates removed)."""
        return self._ordered

    def mask(self, table: Table) -> np.ndarray:
        col = table.categorical(self._attribute)
        wanted_codes = {
            code for code, cat in enumerate(col.categories) if cat in self._values
        }
        if not wanted_codes:
            return np.zeros(table.n_rows, dtype=bool)
        return np.isin(col.codes, np.fromiter(wanted_codes, dtype=np.int32))

    def describe(self) -> str:
        inner = ", ".join(f"'{v}'" for v in sorted(self._values))
        return f"{self._attribute}: {{{inner}}}"

    def intersect(self, other: Predicate) -> Predicate | None:
        self._check_same_attribute(other)
        if isinstance(other, AnyPredicate):
            return self
        if not isinstance(other, SetPredicate):
            raise PredicateError(
                f"cannot intersect a set with a {type(other).__name__} "
                f"on {self._attribute!r}"
            )
        common = self._values & other._values
        if not common:
            return None
        # Keep this predicate's user order for the surviving labels.
        return SetPredicate(
            self._attribute, [v for v in self._ordered if v in common]
        )

    def to_dict(self) -> dict:
        # User-given order is semantic (the ``user_order`` categorical
        # strategy follows it), so it is preserved on the wire.
        return {
            "kind": "set",
            "attribute": self._attribute,
            "values": list(self._ordered),
        }

    def _key(self) -> tuple:
        return (self._attribute, self._values)


def _bound_to_json(value: float) -> float | str:
    """A range bound as a JSON-safe scalar (infinities as strings)."""
    if math.isinf(value):
        return "-inf" if value < 0 else "inf"
    return value


#: ``kind`` discriminator → constructor from a wire dict.
_PREDICATE_KINDS = {
    "any": lambda d: AnyPredicate(d["attribute"]),
    "range": lambda d: RangePredicate(
        d["attribute"],
        float(d["low"]),
        float(d["high"]),
        bool(d.get("closed_low", True)),
        bool(d.get("closed_high", True)),
    ),
    "set": lambda d: SetPredicate(d["attribute"], d["values"]),
}


def _fmt(value: float) -> str:
    """Format a bound compactly: integers without decimals, inf as symbol.

    Non-integer bounds use ``repr`` (the shortest digits that parse
    back to the same float) — ``%g``'s 6-significant-digit rounding
    broke the describe → parse round trip on bounds like ``-999999.5``.
    """
    if math.isinf(value):
        return "-inf" if value < 0 else "inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))
