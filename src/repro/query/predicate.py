"""Predicates of the conjunctive query language.

The paper restricts queries to conjunctions of per-attribute predicates
``P_k : att_k ∈ S_k`` (Section 3).  Three predicate shapes cover the
examples in the paper:

* :class:`RangePredicate` — ``Age: [17, 90]`` (ordinal attributes),
* :class:`SetPredicate` — ``Sex: {'Male'}`` (categorical attributes),
* :class:`AnyPredicate` — ``Salary: any`` (no restriction; it carries the
  attribute so CUT knows which columns the user cares about).

The text scenario (ROADMAP item: mixed numeric/categorical/text tables)
adds two predicate shapes over free-text columns:

* :class:`ContainsPredicate` — ``Title: contains 'disk'``
  (case-insensitive substring),
* :class:`MatchPredicate` — ``Body: match 'error timeout'`` (FTS-style
  conjunctive token match under :func:`tokenize_text`).

Every predicate evaluates to a boolean row mask against a table.  Missing
values never satisfy a restricting predicate, matching SQL three-valued
logic collapsed to "unknown is false".

New wire kinds are registered through :func:`register_predicate_kind`
(the public registry mirroring :mod:`repro.engine.registry`); the
built-in kinds — including ``contains`` and ``match`` — land through the
same call.
"""

from __future__ import annotations

import abc
import math
import re
from bisect import bisect_right
from collections.abc import Callable, Iterable

import numpy as np

from repro.dataset.table import Table
from repro.errors import ConfigError, PredicateError

#: One FTS token: a maximal run of ASCII alphanumerics, lowercased.
_TOKEN_RE = re.compile(r"[0-9a-z]+")


def tokenize_text(text: str) -> tuple[str, ...]:
    """The FTS tokenizer: lowercased alphanumeric runs, in order.

    Shared by :class:`MatchPredicate`, the sketch backend's
    token-frequency summaries, and the SQL executor's ``MATCH``
    condition, so every layer agrees on what a "token" is.
    """
    return tuple(_TOKEN_RE.findall(str(text).lower()))


class Predicate(abc.ABC):
    """One per-attribute predicate ``att ∈ S``."""

    __slots__ = ("_attribute",)

    def __init__(self, attribute: str):
        if not attribute:
            raise PredicateError("predicate needs a non-empty attribute name")
        self._attribute = attribute

    @property
    def attribute(self) -> str:
        """Name of the attribute the predicate restricts."""
        return self._attribute

    @property
    def is_restrictive(self) -> bool:
        """False for ``any`` predicates, True otherwise."""
        return True

    @abc.abstractmethod
    def mask(self, table: Table) -> np.ndarray:
        """Boolean mask of rows in ``table`` satisfying the predicate."""

    @abc.abstractmethod
    def describe(self) -> str:
        """Render the predicate in the paper's textual syntax."""

    @abc.abstractmethod
    def intersect(self, other: "Predicate") -> "Predicate | None":
        """Predicate equivalent to ``self AND other`` on the same attribute.

        Returns ``None`` when the conjunction is unsatisfiable.  Raises
        :class:`PredicateError` when the attributes differ or shapes are
        incompatible (range vs set).
        """

    @abc.abstractmethod
    def to_dict(self) -> dict:
        """Plain-JSON form tagged with a ``kind`` discriminator.

        The inverse of :meth:`Predicate.from_dict`; the wire shape of
        the service protocol (:mod:`repro.service.protocol`), mirroring
        :meth:`repro.core.config.AtlasConfig.to_dict`.
        """

    @staticmethod
    def from_dict(data: dict) -> "Predicate":
        """Rebuild any predicate from :meth:`to_dict` output."""
        if not isinstance(data, dict):
            raise PredicateError(
                f"expected a predicate dict, got {type(data).__name__}"
            )
        kind = data.get("kind")
        builder = _PREDICATE_KINDS.get(kind)
        if builder is None:
            known = ", ".join(sorted(_PREDICATE_KINDS))
            raise PredicateError(
                f"unknown predicate kind {kind!r}; known kinds: {known}"
            )
        try:
            return builder(data)
        except KeyError as exc:
            raise PredicateError(
                f"predicate dict of kind {kind!r} is missing field {exc}"
            ) from None
        except PredicateError:
            raise
        except (TypeError, ValueError) as exc:
            # A malformed field value is the sender's fault, so it must
            # surface as a typed (bad-request) error, not an internal one.
            raise PredicateError(
                f"malformed predicate dict of kind {kind!r}: {exc}"
            ) from exc

    @abc.abstractmethod
    def _key(self) -> tuple:
        """Hashable identity used for __eq__/__hash__."""

    def _check_same_attribute(self, other: "Predicate") -> None:
        if self._attribute != other._attribute:
            raise PredicateError(
                f"cannot intersect predicates on different attributes: "
                f"{self._attribute!r} vs {other._attribute!r}"
            )

    def __eq__(self, other: object) -> bool:
        if type(self) is not type(other):
            return False
        return self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.describe()}>"


class AnyPredicate(Predicate):
    """No restriction: ``att: any``.  Matches every row, even missing."""

    __slots__ = ()

    @property
    def is_restrictive(self) -> bool:
        return False

    def mask(self, table: Table) -> np.ndarray:
        table.column(self._attribute)  # validate the attribute exists
        return np.ones(table.n_rows, dtype=bool)

    def describe(self) -> str:
        return f"{self._attribute}: any"

    def intersect(self, other: Predicate) -> Predicate:
        self._check_same_attribute(other)
        return other

    def to_dict(self) -> dict:
        return {"kind": "any", "attribute": self._attribute}

    def _key(self) -> tuple:
        return (self._attribute,)


class RangePredicate(Predicate):
    """Interval restriction on a numeric attribute: ``att ∈ [low, high]``.

    Bounds may individually be open or closed; infinite bounds express
    one-sided ranges.  The paper's examples use closed intervals.
    """

    __slots__ = ("_low", "_high", "_closed_low", "_closed_high")

    def __init__(
        self,
        attribute: str,
        low: float,
        high: float,
        closed_low: bool = True,
        closed_high: bool = True,
    ):
        super().__init__(attribute)
        low = float(low)
        high = float(high)
        if math.isnan(low) or math.isnan(high):
            raise PredicateError(f"range bounds on {attribute!r} may not be NaN")
        if low > high:
            raise PredicateError(
                f"inverted range on {attribute!r}: [{low}, {high}]"
            )
        if low == high and not (closed_low and closed_high):
            raise PredicateError(
                f"degenerate open range on {attribute!r} at {low} is empty"
            )
        self._low = low
        self._high = high
        self._closed_low = bool(closed_low)
        self._closed_high = bool(closed_high)

    @property
    def low(self) -> float:
        """Lower bound."""
        return self._low

    @property
    def high(self) -> float:
        """Upper bound."""
        return self._high

    @property
    def closed_low(self) -> bool:
        """True if the lower bound is included."""
        return self._closed_low

    @property
    def closed_high(self) -> bool:
        """True if the upper bound is included."""
        return self._closed_high

    @property
    def width(self) -> float:
        """Interval width (``high - low``)."""
        return self._high - self._low

    def mask(self, table: Table) -> np.ndarray:
        data = table.numeric(self._attribute).data
        lower = data >= self._low if self._closed_low else data > self._low
        upper = data <= self._high if self._closed_high else data < self._high
        result = lower & upper
        result[np.isnan(data)] = False
        return result

    def describe(self) -> str:
        lo = "[" if self._closed_low else "("
        hi = "]" if self._closed_high else ")"
        return f"{self._attribute}: {lo}{_fmt(self._low)}, {_fmt(self._high)}{hi}"

    def intersect(self, other: Predicate) -> Predicate | None:
        self._check_same_attribute(other)
        if isinstance(other, AnyPredicate):
            return self
        if not isinstance(other, RangePredicate):
            raise PredicateError(
                f"cannot intersect a range with a {type(other).__name__} "
                f"on {self._attribute!r}"
            )
        if self._low > other._low:
            low, closed_low = self._low, self._closed_low
        elif self._low < other._low:
            low, closed_low = other._low, other._closed_low
        else:
            low, closed_low = self._low, self._closed_low and other._closed_low
        if self._high < other._high:
            high, closed_high = self._high, self._closed_high
        elif self._high > other._high:
            high, closed_high = other._high, other._closed_high
        else:
            high, closed_high = self._high, self._closed_high and other._closed_high
        if low > high or (low == high and not (closed_low and closed_high)):
            return None
        return RangePredicate(self._attribute, low, high, closed_low, closed_high)

    def to_dict(self) -> dict:
        # Infinite bounds travel as strings — IEEE infinities are not
        # valid JSON numbers, and the service protocol must stay
        # parseable by strict decoders.
        return {
            "kind": "range",
            "attribute": self._attribute,
            "low": _bound_to_json(self._low),
            "high": _bound_to_json(self._high),
            "closed_low": self._closed_low,
            "closed_high": self._closed_high,
        }

    def _key(self) -> tuple:
        return (self._attribute, self._low, self._high,
                self._closed_low, self._closed_high)


class SetPredicate(Predicate):
    """Membership restriction on a categorical attribute: ``att ∈ {v1, ...}``.

    The order in which the caller lists the values is preserved in
    :attr:`ordered_values`: Section 3.1 of the paper suggests cutting
    categorical attributes "in the order in which the user gives them".
    """

    __slots__ = ("_values", "_ordered")

    def __init__(self, attribute: str, values: Iterable[str]):
        super().__init__(attribute)
        ordered: list[str] = []
        seen: set[str] = set()
        for v in values:
            label = str(v)
            if label not in seen:
                seen.add(label)
                ordered.append(label)
        if not ordered:
            raise PredicateError(f"empty set predicate on {attribute!r}")
        self._ordered = tuple(ordered)
        self._values = frozenset(ordered)

    @property
    def values(self) -> frozenset[str]:
        """The admitted labels."""
        return self._values

    @property
    def ordered_values(self) -> tuple[str, ...]:
        """The admitted labels in user-given order (duplicates removed)."""
        return self._ordered

    def mask(self, table: Table) -> np.ndarray:
        col = table.categorical(self._attribute)
        wanted_codes = {
            code for code, cat in enumerate(col.categories) if cat in self._values
        }
        if not wanted_codes:
            return np.zeros(table.n_rows, dtype=bool)
        return np.isin(col.codes, np.fromiter(wanted_codes, dtype=np.int32))

    def describe(self) -> str:
        inner = ", ".join(f"'{v}'" for v in sorted(self._values))
        return f"{self._attribute}: {{{inner}}}"

    def intersect(self, other: Predicate) -> Predicate | None:
        self._check_same_attribute(other)
        if isinstance(other, AnyPredicate):
            return self
        if isinstance(other, (ContainsPredicate, MatchPredicate)):
            # A text restriction over an explicit label set is just the
            # labels that pass the text test (the engine hits this when
            # it cuts an attribute a text predicate already restricts).
            kept = [v for v in self._ordered if other.admits_label(v)]
            if not kept:
                return None
            return SetPredicate(self._attribute, kept)
        if not isinstance(other, SetPredicate):
            raise PredicateError(
                f"cannot intersect a set with a {type(other).__name__} "
                f"on {self._attribute!r}"
            )
        common = self._values & other._values
        if not common:
            return None
        # Keep this predicate's user order for the surviving labels.
        return SetPredicate(
            self._attribute, [v for v in self._ordered if v in common]
        )

    def to_dict(self) -> dict:
        # User-given order is semantic (the ``user_order`` categorical
        # strategy follows it), so it is preserved on the wire.
        return {
            "kind": "set",
            "attribute": self._attribute,
            "values": list(self._ordered),
        }

    def _key(self) -> tuple:
        return (self._attribute, self._values)


#: The token alphabet of :func:`tokenize_text`, as a set for O(1)
#: boundary checks during joined-string scanning.
_ALNUM = frozenset("0123456789abcdefghijklmnopqrstuvwxyz")

#: ``categories`` tuple → ``(joined, starts)`` scan index.  Bounded so
#: a long-lived service over many tables cannot pin every dictionary it
#: ever served; dict get/set are atomic under the GIL, and a racing
#: rebuild only wastes work (the entries are pure functions of the key).
_SCAN_INDEX_CACHE: dict[tuple, tuple[str, list]] = {}
_SCAN_INDEX_LIMIT = 8


def _scan_index(categories: tuple) -> tuple[str, list]:
    """The lowered labels joined with ``"\\n"`` plus label start offsets.

    Built once per dictionary (label tuples are immutable and shared by
    every derived column, so the cache keys on the tuple itself) — on
    document columns with 10^5+ distinct labels the lowering pass alone
    is worth memoizing across predicates and queries.
    """
    cached = _SCAN_INDEX_CACHE.get(categories)
    if cached is not None:
        return cached
    lowered = list(map(str.lower, categories))
    n = len(lowered)
    starts = np.zeros(n, dtype=np.int64)
    if n > 1:
        lengths = np.fromiter(map(len, lowered), dtype=np.int64, count=n)
        np.cumsum(lengths[:-1] + 1, out=starts[1:])  # +1: the separator
    entry = ("\n".join(lowered), starts.tolist())
    if len(_SCAN_INDEX_CACHE) >= _SCAN_INDEX_LIMIT:
        _SCAN_INDEX_CACHE.pop(next(iter(_SCAN_INDEX_CACHE)))
    _SCAN_INDEX_CACHE[categories] = entry
    return entry


def _scan_labels(categories: tuple, needles) -> np.ndarray:
    """Which dictionary labels pass every ``(needle, token_bounded)`` test.

    One C-speed :meth:`str.find` sweep per needle over the joined
    lowered labels, mapping hit offsets back to label indices by
    bisection.  ``token_bounded`` needles additionally require no
    alphanumeric neighbour on either side — exactly the maximal-run
    rule of :func:`tokenize_text` (the ``"\\n"`` separator is outside
    the token alphabet, and needles never contain it, so a hit cannot
    span two labels).  A confirmed hit skips straight to the next
    label, so the sweep is bounded by failed boundary checks plus
    matching labels — milliseconds instead of seconds on document
    dictionaries with 10^5+ distinct labels.
    """
    n = len(categories)
    joined, starts = _scan_index(categories)
    end = len(joined)
    admitted = np.ones(n, dtype=bool)
    for needle, token_bounded in needles:
        hits = np.zeros(n, dtype=bool)
        width = len(needle)
        pos = joined.find(needle)
        while pos != -1:
            if token_bounded and not (
                (pos == 0 or joined[pos - 1] not in _ALNUM)
                and (pos + width == end or joined[pos + width] not in _ALNUM)
            ):
                pos = joined.find(needle, pos + 1)
                continue
            label = bisect_right(starts, pos) - 1
            hits[label] = True
            if label + 1 >= n:
                break
            pos = joined.find(needle, starts[label + 1])
        admitted &= hits
        if not admitted.any():
            break
    return admitted


def _rows_with_labels(col, admitted: np.ndarray, n_rows: int) -> np.ndarray:
    """Row mask selecting the rows whose dictionary code is admitted."""
    wanted = np.flatnonzero(admitted)
    if wanted.size == 0:
        return np.zeros(n_rows, dtype=bool)
    return np.isin(col.codes, wanted.astype(np.int32))


class ContainsPredicate(Predicate):
    """Case-insensitive substring restriction on a text attribute.

    ``Title: contains 'disk'`` keeps the rows whose label contains the
    needle anywhere, ignoring case.  Evaluation tests each dictionary
    *label* once and selects rows by code, so the cost is
    ``O(categories + rows)`` — the dictionary encoding does the heavy
    lifting exactly as for :class:`SetPredicate`.
    """

    __slots__ = ("_needle",)

    def __init__(self, attribute: str, needle: str):
        super().__init__(attribute)
        needle = str(needle)
        if not needle:
            raise PredicateError(
                f"empty contains predicate on {attribute!r}"
            )
        self._needle = needle

    @property
    def needle(self) -> str:
        """The substring to look for (matched case-insensitively)."""
        return self._needle

    def mask(self, table: Table) -> np.ndarray:
        col = table.categorical(self._attribute)
        lowered = self._needle.lower()
        if "\n" in lowered:
            # The needle could span the joined-scan separator; test
            # each label directly (rare: multi-line search strings).
            admitted = np.fromiter(
                (lowered in cat.lower() for cat in col.categories),
                dtype=bool,
                count=len(col.categories),
            )
        else:
            admitted = _scan_labels(col.categories, [(lowered, False)])
        return _rows_with_labels(col, admitted, table.n_rows)

    def admits_label(self, label: str) -> bool:
        """True when a dictionary label passes this text test."""
        return self._needle.lower() in label.lower()

    def describe(self) -> str:
        return f"{self._attribute}: contains '{self._needle}'"

    def intersect(self, other: Predicate) -> "Predicate | None":
        self._check_same_attribute(other)
        if isinstance(other, AnyPredicate):
            return self
        if isinstance(other, SetPredicate):
            # Explicit labels beat the text test: keep the ones passing.
            return other.intersect(self)
        if isinstance(other, ContainsPredicate):
            # Substring containment makes one predicate imply the other;
            # anything else has no single-contains equivalent.
            if self._needle.lower() in other._needle.lower():
                return other
            if other._needle.lower() in self._needle.lower():
                return self
            raise PredicateError(
                f"cannot express contains {self._needle!r} AND contains "
                f"{other._needle!r} on {self._attribute!r} as one "
                "predicate; use a match predicate for multi-term search"
            )
        raise PredicateError(
            f"cannot intersect a contains with a {type(other).__name__} "
            f"on {self._attribute!r}"
        )

    def to_dict(self) -> dict:
        return {
            "kind": "contains",
            "attribute": self._attribute,
            "needle": self._needle,
        }

    def _key(self) -> tuple:
        return (self._attribute, self._needle.lower())


class MatchPredicate(Predicate):
    """FTS-style conjunctive token match on a text attribute.

    ``Body: match 'error timeout'`` keeps the rows whose label contains
    *every* query token under :func:`tokenize_text` — the AND semantics
    of an FTS5 ``MATCH`` query.  Like :class:`ContainsPredicate`, the
    labels are tested once and rows selected by dictionary code.
    """

    __slots__ = ("_terms",)

    def __init__(self, attribute: str, terms: str | Iterable[str]):
        super().__init__(attribute)
        if isinstance(terms, str):
            raw: Iterable[str] = (terms,)
        else:
            raw = terms
        ordered: list[str] = []
        seen: set[str] = set()
        for chunk in raw:
            for token in tokenize_text(str(chunk)):
                if token not in seen:
                    seen.add(token)
                    ordered.append(token)
        if not ordered:
            raise PredicateError(
                f"match predicate on {attribute!r} has no searchable "
                "tokens"
            )
        self._terms = tuple(ordered)

    @property
    def terms(self) -> tuple[str, ...]:
        """The required tokens, first-seen order (duplicates removed)."""
        return self._terms

    def mask(self, table: Table) -> np.ndarray:
        col = table.categorical(self._attribute)
        admitted = _scan_labels(
            col.categories, [(term, True) for term in self._terms]
        )
        return _rows_with_labels(col, admitted, table.n_rows)

    def admits_label(self, label: str) -> bool:
        """True when a dictionary label contains every required token."""
        return set(self._terms) <= set(tokenize_text(label))

    def describe(self) -> str:
        return f"{self._attribute}: match '{' '.join(self._terms)}'"

    def intersect(self, other: Predicate) -> "Predicate | None":
        self._check_same_attribute(other)
        if isinstance(other, AnyPredicate):
            return self
        if isinstance(other, SetPredicate):
            return other.intersect(self)
        if isinstance(other, MatchPredicate):
            # AND of two conjunctive token matches is the token union.
            return MatchPredicate(
                self._attribute, self._terms + other._terms
            )
        raise PredicateError(
            f"cannot intersect a match with a {type(other).__name__} "
            f"on {self._attribute!r}"
        )

    def to_dict(self) -> dict:
        return {
            "kind": "match",
            "attribute": self._attribute,
            "terms": list(self._terms),
        }

    def _key(self) -> tuple:
        return (self._attribute, frozenset(self._terms))


def _bound_to_json(value: float) -> float | str:
    """A range bound as a JSON-safe scalar (infinities as strings)."""
    if math.isinf(value):
        return "-inf" if value < 0 else "inf"
    return value


#: ``kind`` discriminator → constructor from a wire dict.  Mutated only
#: through :func:`register_predicate_kind` (import-time registration; no
#: runtime lock needed — registries are frozen before threads start,
#: matching :mod:`repro.engine.registry`).
_PREDICATE_KINDS: dict[str, Callable[[dict], Predicate]] = {}


def register_predicate_kind(
    kind: str,
    builder: Callable[[dict], Predicate],
    *,
    overwrite: bool = False,
) -> None:
    """Register a wire ``kind`` discriminator for :meth:`Predicate.from_dict`.

    ``builder`` receives the wire dict and returns the predicate; field
    errors it raises (``KeyError``/``TypeError``/``ValueError``) are
    translated to typed :class:`PredicateError`\\ s by ``from_dict``.
    Registering a ``kind`` that already exists raises
    :class:`~repro.errors.ConfigError` unless ``overwrite=True`` —
    the same duplicate discipline as the strategy registries of
    :mod:`repro.engine.registry`.
    """
    if not kind or not isinstance(kind, str):
        raise ConfigError(
            f"predicate kind must be a non-empty string, got {kind!r}"
        )
    if not callable(builder):
        raise ConfigError(
            f"predicate builder for {kind!r} must be callable, "
            f"got {type(builder).__name__}"
        )
    if kind in _PREDICATE_KINDS and not overwrite:
        raise ConfigError(
            f"predicate kind {kind!r} is already registered; pass "
            "overwrite=True to replace it"
        )
    _PREDICATE_KINDS[kind] = builder


def registered_predicate_kinds() -> tuple[str, ...]:
    """Every wire ``kind`` currently registered, sorted."""
    return tuple(sorted(_PREDICATE_KINDS))


# The built-in kinds land through the public call, exactly like the
# built-in cutting strategies seed repro.engine.registry.
register_predicate_kind("any", lambda d: AnyPredicate(d["attribute"]))
register_predicate_kind(
    "range",
    lambda d: RangePredicate(
        d["attribute"],
        float(d["low"]),
        float(d["high"]),
        bool(d.get("closed_low", True)),
        bool(d.get("closed_high", True)),
    ),
)
register_predicate_kind(
    "set", lambda d: SetPredicate(d["attribute"], d["values"])
)
register_predicate_kind(
    "contains", lambda d: ContainsPredicate(d["attribute"], d["needle"])
)
register_predicate_kind(
    "match", lambda d: MatchPredicate(d["attribute"], d["terms"])
)


def _fmt(value: float) -> str:
    """Format a bound compactly: integers without decimals, inf as symbol.

    Non-integer bounds use ``repr`` (the shortest digits that parse
    back to the same float) — ``%g``'s 6-significant-digit rounding
    broke the describe → parse round trip on bounds like ``-999999.5``.
    """
    if math.isinf(value):
        return "-inf" if value < 0 else "inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))
