"""Parser for the paper's textual query syntax (Figure 2 / Section 1).

Accepted per-line forms, one predicate per line::

    Age: [17, 90]            closed numeric range
    Age: (17, 90]            half-open numeric range
    Age: [17, inf)           one-sided range
    Sex: {'Male'}            set of labels
    Eye color: {'Blue', 'Green', 'Brown'}
    Education: 'MSc'         single-label shorthand for {'MSc'}
    Salary: any              unrestricted attribute
    Title: contains 'disk'   case-insensitive substring (text columns)
    Body: match 'error timeout'   FTS-style all-tokens match

Attribute names may contain spaces (everything before the first colon).
Blank lines and ``#`` comments are ignored.
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.query.predicate import (
    AnyPredicate,
    ContainsPredicate,
    MatchPredicate,
    Predicate,
    RangePredicate,
    SetPredicate,
)
from repro.query.query import ConjunctiveQuery

_RANGE_RE = re.compile(
    r"""^(?P<lo_bracket>[\[(])\s*
        (?P<low>[^,\s]+)\s*,\s*
        (?P<high>[^,\s\])]+)\s*
        (?P<hi_bracket>[\])])$""",
    re.VERBOSE,
)

_SET_RE = re.compile(r"^\{(?P<body>.*)\}$", re.DOTALL)

_QUOTED_RE = re.compile(r"'(?P<single>[^']*)'|\"(?P<double>[^\"]*)\"")

_TEXT_RE = re.compile(
    r"""^(?P<op>contains|match)\s+
        (?:'(?P<single>[^']*)'|"(?P<double>[^"]*)")$""",
    re.IGNORECASE | re.VERBOSE,
)


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse a multi-line query in the paper's syntax.

    Several lines restricting the same attribute are conjoined (their
    intersection); a contradictory pair is a :class:`ParseError`.
    """
    merged: dict[str, Predicate] = {}
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        predicate = _parse_line(line, line_number)
        existing = merged.get(predicate.attribute)
        if existing is None:
            merged[predicate.attribute] = predicate
            continue
        try:
            both = existing.intersect(predicate)
        except Exception as exc:
            raise ParseError(f"line {line_number}: {exc}") from exc
        if both is None:
            raise ParseError(
                f"line {line_number}: predicate on "
                f"{predicate.attribute!r} contradicts an earlier line"
            )
        merged[predicate.attribute] = both
    return ConjunctiveQuery(merged.values())


def parse_predicate(line: str) -> Predicate:
    """Parse one predicate line."""
    return _parse_line(line.strip(), line_number=1)


def _parse_line(line: str, line_number: int) -> Predicate:
    if ":" not in line:
        raise ParseError(
            f"line {line_number}: expected 'attribute: predicate', got {line!r}"
        )
    attribute, _, body = line.partition(":")
    attribute = attribute.strip()
    body = body.strip()
    if not attribute:
        raise ParseError(f"line {line_number}: empty attribute name in {line!r}")
    if not body:
        raise ParseError(f"line {line_number}: empty predicate body in {line!r}")

    if body.lower() == "any":
        return AnyPredicate(attribute)

    range_match = _RANGE_RE.match(body)
    if range_match:
        return _build_range(attribute, range_match, line_number)

    set_match = _SET_RE.match(body)
    if set_match:
        return _build_set(attribute, set_match.group("body"), line_number)

    text_match = _TEXT_RE.match(body)
    if text_match:
        return _build_text(attribute, text_match, line_number)

    quoted = _QUOTED_RE.fullmatch(body)
    if quoted:
        value = quoted.group("single")
        if value is None:
            value = quoted.group("double")
        return SetPredicate(attribute, [value])

    raise ParseError(
        f"line {line_number}: cannot parse predicate body {body!r} "
        "(expected a range [a, b], a set {'v', ...}, a quoted value, "
        "contains '...', match '...', or 'any')"
    )


def _build_text(
    attribute: str, match: re.Match, line_number: int
) -> Predicate:
    value = match.group("single")
    if value is None:
        value = match.group("double")
    operator = match.group("op").lower()
    try:
        if operator == "contains":
            return ContainsPredicate(attribute, value)
        return MatchPredicate(attribute, value)
    except Exception as exc:
        raise ParseError(f"line {line_number}: {exc}") from exc


def _parse_bound(token: str, line_number: int) -> float:
    token = token.strip()
    lowered = token.lower()
    if lowered in {"inf", "+inf", "infinity"}:
        return float("inf")
    if lowered in {"-inf", "-infinity"}:
        return float("-inf")
    try:
        return float(token)
    except ValueError:
        raise ParseError(
            f"line {line_number}: range bound {token!r} is not numeric"
        ) from None


def _build_range(attribute: str, match: re.Match, line_number: int) -> RangePredicate:
    low = _parse_bound(match.group("low"), line_number)
    high = _parse_bound(match.group("high"), line_number)
    closed_low = match.group("lo_bracket") == "["
    closed_high = match.group("hi_bracket") == "]"
    try:
        return RangePredicate(attribute, low, high, closed_low, closed_high)
    except Exception as exc:
        raise ParseError(f"line {line_number}: {exc}") from exc


def _build_set(attribute: str, body: str, line_number: int) -> SetPredicate:
    body = body.strip()
    if not body:
        raise ParseError(f"line {line_number}: empty set for {attribute!r}")
    values: list[str] = []
    matched_span_end = 0
    for match in _QUOTED_RE.finditer(body):
        between = body[matched_span_end:match.start()].strip()
        if between not in {"", ","}:
            raise ParseError(
                f"line {line_number}: unexpected token {between!r} in set"
            )
        value = match.group("single")
        if value is None:
            value = match.group("double")
        values.append(value)
        matched_span_end = match.end()
    tail = body[matched_span_end:].strip()
    if values:
        if tail not in {"", ","}:
            raise ParseError(f"line {line_number}: unexpected trailing {tail!r}")
        return SetPredicate(attribute, values)
    # Unquoted fallback: comma-separated bare words.
    bare = [token.strip() for token in body.split(",")]
    if any(not token for token in bare):
        raise ParseError(f"line {line_number}: malformed set body {body!r}")
    return SetPredicate(attribute, bare)
