"""Conjunctive query language: the paper's "Charles" dialect stand-in.

Provides predicates (range / set / any, plus contains / match over text
columns), immutable conjunctive queries with cover evaluation, a parser
for the paper's textual syntax, a SQL emitter, the public wire-kind
registry (:func:`register_predicate_kind`), and the algebra used to
verify the CUT partition contract.
"""

from repro.query.algebra import (
    predicate_contains,
    predicates_disjoint,
    queries_disjoint_on,
    query_contains,
    regions_partition,
)
from repro.query.parser import parse_predicate, parse_query
from repro.query.predicate import (
    AnyPredicate,
    ContainsPredicate,
    MatchPredicate,
    Predicate,
    RangePredicate,
    SetPredicate,
    register_predicate_kind,
    registered_predicate_kinds,
    tokenize_text,
)
from repro.query.query import ConjunctiveQuery
from repro.query.sql import count_to_sql, predicate_to_sql, query_to_sql

__all__ = [
    "AnyPredicate",
    "ConjunctiveQuery",
    "ContainsPredicate",
    "MatchPredicate",
    "Predicate",
    "RangePredicate",
    "SetPredicate",
    "register_predicate_kind",
    "registered_predicate_kinds",
    "tokenize_text",
    "count_to_sql",
    "parse_predicate",
    "parse_query",
    "predicate_contains",
    "predicate_to_sql",
    "predicates_disjoint",
    "queries_disjoint_on",
    "query_contains",
    "query_to_sql",
    "regions_partition",
]
