"""Query algebra helpers: containment, disjointness, coverage checks.

These are the semantic tools the tests and the map engine use to verify
the CUT contract of Definition 1: the sub-ranges ``S^j_k`` must be
pairwise disjoint and their union must give back ``S_k``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.dataset.table import Table
from repro.query.predicate import (
    AnyPredicate,
    ContainsPredicate,
    MatchPredicate,
    Predicate,
    RangePredicate,
    SetPredicate,
)
from repro.query.query import ConjunctiveQuery

_TEXT_KINDS = (ContainsPredicate, MatchPredicate)


def predicates_disjoint(a: Predicate, b: Predicate) -> bool:
    """True when no value can satisfy both predicates (same attribute)."""
    if isinstance(a, AnyPredicate) or isinstance(b, AnyPredicate):
        return False
    if isinstance(a, _TEXT_KINDS) or isinstance(b, _TEXT_KINDS):
        # Text predicates are never *provably* value-disjoint: any two
        # needles / term sets can co-occur inside one label.
        return False
    return a.intersect(b) is None


def predicate_contains(outer: Predicate, inner: Predicate) -> bool:
    """True when every value satisfying ``inner`` satisfies ``outer``."""
    if isinstance(outer, AnyPredicate):
        return True
    if isinstance(inner, AnyPredicate):
        return False
    if isinstance(outer, RangePredicate) and isinstance(inner, RangePredicate):
        low_ok = outer.low < inner.low or (
            outer.low == inner.low and (outer.closed_low or not inner.closed_low)
        )
        high_ok = outer.high > inner.high or (
            outer.high == inner.high and (outer.closed_high or not inner.closed_high)
        )
        return low_ok and high_ok
    if isinstance(outer, SetPredicate) and isinstance(inner, SetPredicate):
        return inner.values <= outer.values
    if isinstance(outer, ContainsPredicate) and isinstance(
        inner, ContainsPredicate
    ):
        # Matching a superstring implies matching every substring of it.
        return outer.needle.lower() in inner.needle.lower()
    if isinstance(outer, MatchPredicate) and isinstance(inner, MatchPredicate):
        return set(outer.terms) <= set(inner.terms)
    return False


def query_contains(outer: ConjunctiveQuery, inner: ConjunctiveQuery) -> bool:
    """Syntactic containment: ``inner ⊆ outer`` region-wise.

    Every restrictive predicate of ``outer`` must be implied by some
    predicate of ``inner`` on the same attribute.
    """
    for pred in outer.predicates:
        if not pred.is_restrictive:
            continue
        inner_pred = inner.predicate_on(pred.attribute)
        if inner_pred is None or not predicate_contains(pred, inner_pred):
            return False
    return True


def queries_disjoint_on(
    a: ConjunctiveQuery, b: ConjunctiveQuery, table: Table
) -> bool:
    """Empirical disjointness: no row of ``table`` satisfies both."""
    return not bool((a.mask(table) & b.mask(table)).any())


def regions_partition(
    regions: Sequence[ConjunctiveQuery],
    parent: ConjunctiveQuery,
    table: Table,
) -> bool:
    """Check the CUT contract empirically over a table.

    True when the regions are pairwise disjoint on the rows of ``table``
    and together cover exactly the rows the parent query describes.
    """
    parent_mask = parent.mask(table)
    union = np.zeros(table.n_rows, dtype=bool)
    for region in regions:
        region_mask = region.mask(table)
        if bool((union & region_mask).any()):
            return False
        union |= region_mask
    return bool(np.array_equal(union, parent_mask))
