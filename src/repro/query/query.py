"""Conjunctive queries: ``Q = P_1 ∧ ... ∧ P_N`` (paper Section 3).

A :class:`ConjunctiveQuery` holds at most one predicate per attribute, in a
stable order.  It evaluates to a boolean row mask, measures its *cover*
``C(Q)`` (fraction of tuples it describes — Definition in Section 3), and
supports the conjunction used by the product operator (Definition 3).
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.dataset.table import Table
from repro.errors import QueryError
from repro.query.predicate import AnyPredicate, Predicate


class ConjunctiveQuery:
    """An immutable conjunction of per-attribute predicates."""

    __slots__ = ("_predicates",)

    def __init__(self, predicates: Iterable[Predicate] = ()):
        ordered: dict[str, Predicate] = {}
        for pred in predicates:
            if pred.attribute in ordered:
                raise QueryError(
                    f"two predicates on attribute {pred.attribute!r}; "
                    "conjoin them with Predicate.intersect first"
                )
            ordered[pred.attribute] = pred
        self._predicates = ordered

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def attributes(self) -> tuple[str, ...]:
        """Attributes mentioned by the query, in declaration order."""
        return tuple(self._predicates)

    @property
    def predicates(self) -> tuple[Predicate, ...]:
        """All predicates in declaration order."""
        return tuple(self._predicates.values())

    @property
    def restrictive_predicates(self) -> tuple[Predicate, ...]:
        """Predicates other than ``any`` — what counts toward complexity.

        The paper's convenience constraint ("queries should be simple, with
        very few predicates") counts these.
        """
        return tuple(p for p in self._predicates.values() if p.is_restrictive)

    @property
    def n_predicates(self) -> int:
        """Number of restrictive predicates."""
        return len(self.restrictive_predicates)

    def predicate_on(self, attribute: str) -> Predicate | None:
        """The predicate restricting ``attribute``, or None."""
        return self._predicates.get(attribute)

    def __len__(self) -> int:
        return len(self._predicates)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return set(self.predicates) == set(other.predicates)

    def __hash__(self) -> int:
        return hash(frozenset(self.predicates))

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #

    def mask(self, table: Table) -> np.ndarray:
        """Boolean mask of the rows of ``table`` the query describes."""
        result = np.ones(table.n_rows, dtype=bool)
        for pred in self._predicates.values():
            result &= pred.mask(table)
        return result

    def count(self, table: Table) -> int:
        """Number of rows described."""
        return int(self.mask(table).sum())

    def cover(self, table: Table) -> float:
        """``C(Q)``: described rows divided by total rows (Section 3)."""
        if table.n_rows == 0:
            return 0.0
        return self.count(table) / table.n_rows

    def evaluate(self, table: Table) -> Table:
        """The described sub-table (what the DBMS would return)."""
        return self.select_into(table, name=f"{table.name}_region")

    def select_into(self, table: Table, name: str) -> Table:
        """Like :meth:`evaluate` but with an explicit result name."""
        return table.select(self.mask(table), name=name)

    # ------------------------------------------------------------------ #
    # Composition
    # ------------------------------------------------------------------ #

    def with_predicate(self, predicate: Predicate) -> "ConjunctiveQuery":
        """Replace/add the predicate on ``predicate.attribute``."""
        updated = dict(self._predicates)
        updated[predicate.attribute] = predicate
        return ConjunctiveQuery(updated.values())

    def conjoin(self, other: "ConjunctiveQuery") -> "ConjunctiveQuery | None":
        """``self AND other`` with per-attribute intersection.

        Returns ``None`` when the two queries contradict each other on some
        attribute (the product operator drops such empty regions).
        """
        merged = dict(self._predicates)
        for attr, pred in other._predicates.items():
            mine = merged.get(attr)
            if mine is None:
                merged[attr] = pred
                continue
            both = mine.intersect(pred)
            if both is None:
                return None
            merged[attr] = both
        return ConjunctiveQuery(merged.values())

    def without_attribute(self, attribute: str) -> "ConjunctiveQuery":
        """Drop the predicate on ``attribute`` (no-op if absent)."""
        return ConjunctiveQuery(
            p for a, p in self._predicates.items() if a != attribute
        )

    def relax(self) -> "ConjunctiveQuery":
        """Replace every predicate with ``any`` (keeps the attribute list)."""
        return ConjunctiveQuery(
            AnyPredicate(attr) for attr in self._predicates
        )

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        """Plain-JSON form; the inverse of :meth:`from_dict`.

        Predicates keep their declaration order, so a round trip
        preserves display order as well as set semantics.
        """
        return {"predicates": [p.to_dict() for p in self._predicates.values()]}

    @classmethod
    def from_dict(cls, data: dict) -> "ConjunctiveQuery":
        """Rebuild a query from :meth:`to_dict` output."""
        if not isinstance(data, dict) or "predicates" not in data:
            raise QueryError(
                "expected a query dict with a 'predicates' list, "
                f"got {data!r}"
            )
        from repro.query.predicate import Predicate as _Predicate

        try:
            return cls(_Predicate.from_dict(p) for p in data["predicates"])
        except QueryError:
            raise
        except TypeError as exc:
            raise QueryError(f"malformed query dict: {exc}") from exc

    # ------------------------------------------------------------------ #
    # Display
    # ------------------------------------------------------------------ #

    def describe(self) -> str:
        """Multi-line rendering in the paper's Figure-2 syntax."""
        if not self._predicates:
            return "(true)"
        return "\n".join(p.describe() for p in self._predicates.values())

    def describe_inline(self) -> str:
        """Single-line rendering, predicates joined by `` ∧ ``."""
        if not self._predicates:
            return "(true)"
        return " ∧ ".join(p.describe() for p in self._predicates.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Query {self.describe_inline()}>"
